"""Unit tests for the CoCa client and server protocol pieces."""

import numpy as np
import pytest

from repro.core.client import CoCaClient
from repro.core.config import CoCaConfig
from repro.core.server import CoCaServer, GlobalCacheTable
from repro.data.stream import StreamGenerator


@pytest.fixture
def config():
    return CoCaConfig(theta=0.04, frames_per_round=60)


@pytest.fixture
def server(tiny_model, config, rng):
    server = CoCaServer(tiny_model, config, freq_prior=10.0)
    server.initialize_from_shared_dataset(rng, calibration_samples=150)
    return server


def _client(tiny_model, config, client_id=0, seed=5, budget=None):
    rng = np.random.default_rng(seed)
    stream = StreamGenerator(
        class_distribution=np.full(8, 1 / 8),
        mean_run_length=6.0,
        rng=rng,
        base_difficulty=0.3,
    )
    return CoCaClient(
        client_id=client_id,
        model=tiny_model,
        stream=stream,
        config=config,
        rng=rng,
        cache_budget_bytes=budget,
    )


class TestGlobalCacheTable:
    def test_install_normalizes(self):
        table = GlobalCacheTable(4, 3, 8)
        table.install(1, 2, np.full(8, 2.0))
        assert np.linalg.norm(table.entries[1, 2]) == pytest.approx(1.0)
        assert table.filled[1, 2]

    def test_install_rejects_zero(self):
        table = GlobalCacheTable(4, 3, 8)
        with pytest.raises(ValueError):
            table.install(0, 0, np.zeros(8))

    def test_eq4_weighted_merge(self):
        """E = gamma * Phi/(Phi+phi) * E + phi/(Phi+phi) * U, normalized."""
        table = GlobalCacheTable(2, 1, 4)
        table.class_freq[:] = 30.0
        old = np.array([1.0, 0.0, 0.0, 0.0])
        new = np.array([0.0, 1.0, 0.0, 0.0])
        table.install(0, 0, old)
        table.merge_update(0, 0, new, local_freq=10.0, gamma=0.99)
        expected = 0.99 * (30 / 40) * old + (10 / 40) * new
        expected /= np.linalg.norm(expected)
        assert np.allclose(table.entries[0, 0], expected)

    def test_merge_with_zero_frequency_is_noop(self):
        table = GlobalCacheTable(2, 1, 4)
        table.install(0, 0, np.eye(4)[0])
        before = table.entries[0, 0].copy()
        table.merge_update(0, 0, np.eye(4)[1], local_freq=0.0, gamma=0.99)
        assert np.allclose(table.entries[0, 0], before)

    def test_merge_into_unfilled_installs(self):
        table = GlobalCacheTable(2, 1, 4)
        table.merge_update(1, 0, np.eye(4)[2], local_freq=5.0, gamma=0.99)
        assert table.filled[1, 0]

    def test_eq5_frequency_accumulation(self):
        table = GlobalCacheTable(3, 1, 4)
        table.add_frequencies(np.array([1.0, 2.0, 0.0]))
        table.add_frequencies(np.array([0.5, 0.0, 1.0]))
        assert np.allclose(table.class_freq, [1.5, 2.0, 1.0])

    def test_frequency_validation(self):
        table = GlobalCacheTable(3, 1, 4)
        with pytest.raises(ValueError):
            table.add_frequencies(np.array([1.0, -1.0, 0.0]))
        with pytest.raises(ValueError):
            table.add_frequencies(np.ones(2))

    def test_subtable_skips_unfilled(self):
        table = GlobalCacheTable(4, 2, 4)
        table.install(0, 0, np.eye(4)[0])
        table.install(1, 0, np.eye(4)[1])
        sub = table.subtable({0: np.array([0, 1, 3]), 1: np.array([0])})
        assert list(sub[0][0]) == [0, 1]
        assert 1 not in sub  # nothing filled at layer 1


class TestServer:
    def test_initialization_fills_table(self, server, tiny_model):
        assert server.table.filled.all()
        # Entries equal ideal centroids.
        assert np.allclose(
            server.table.entries[:, 2, :], tiny_model.ideal_centroids(2)
        )

    def test_reference_statistics_shapes(self, server, tiny_model):
        L = tiny_model.num_cache_layers
        assert server.reference_hit_ratio.shape == (L,)
        assert server.reference_hit_accuracy.shape == (L,)
        assert server.reference_exit_loss.shape == (L,)
        assert np.all(server.reference_hit_ratio >= 0)
        assert np.all(server.reference_hit_ratio <= 1)

    def test_hit_ratio_grows_with_depth_overall(self, server):
        ratios = server.reference_hit_ratio
        assert ratios[-1] > ratios[0]

    def test_eligible_layers_subset(self, server, tiny_model):
        eligible = server.eligible_layers()
        assert np.all((eligible >= 0) & (eligible < tiny_model.num_cache_layers))
        # A zero budget leaves nothing eligible.
        assert server.eligible_layers(accuracy_loss_budget=-1.0).size == 0

    def test_allocate_respects_budget(self, server, tiny_model):
        budget = 200
        cache, result = server.allocate(
            timestamps=np.zeros(8),
            hit_ratio=server.reference_hit_ratio,
            budget_bytes=budget,
        )
        assert result.size_bytes <= budget
        assert cache.size_bytes(tiny_model.profile.entry_size_bytes) <= budget

    def test_apply_client_update_moves_entry(self, server, tiny_model):
        layer = tiny_model.num_cache_layers - 1
        before = server.table.entries[0, layer].copy()
        new_vec = -before  # maximally different
        server.apply_client_update(
            {(0, layer): new_vec}, local_freq=np.array([30.0] + [0.0] * 7)
        )
        after = server.table.entries[0, layer]
        assert not np.allclose(after, before)
        assert float(server.table.class_freq[0]) == pytest.approx(40.0)

    def test_cache_size_limit_fraction(self, server, tiny_model):
        full = 8 * sum(
            tiny_model.profile.entry_size_bytes(j)
            for j in range(tiny_model.num_cache_layers)
        )
        assert server.cache_size_limit_bytes(0.5) == int(0.5 * full)


class TestClient:
    def test_status_reports_budget_and_vectors(self, tiny_model, config):
        client = _client(tiny_model, config, budget=500)
        status = client.status()
        assert status.cache_budget_bytes == 500
        assert status.timestamps.shape == (8,)
        assert status.frequencies.shape == (8,)
        assert status.hit_ratio.shape == (tiny_model.num_cache_layers,)

    def test_default_budget_uses_fraction(self, tiny_model, config):
        client = _client(tiny_model, config)
        full = 8 * sum(
            tiny_model.profile.entry_size_bytes(j)
            for j in range(tiny_model.num_cache_layers)
        )
        assert client.cache_budget_bytes == int(config.cache_budget_fraction * full)

    def test_round_without_cache_runs_full_model(self, tiny_model, config):
        client = _client(tiny_model, config)
        report = client.run_round(30)
        assert len(report.records) == 30
        assert all(r.hit_layer is None for r in report.records)
        lat = np.mean([r.latency_ms for r in report.records])
        assert lat == pytest.approx(tiny_model.total_compute_ms)

    def test_timestamps_track_recency(self, tiny_model, config):
        client = _client(tiny_model, config)
        report = client.run_round(20)
        last = report.records[-1].predicted_class
        assert client.timestamps[last] == 0.0
        # Total counts: every inference increments all, then zeroes one.
        assert client.timestamps.max() <= 20

    def test_frequencies_sum_to_round_length(self, tiny_model, config):
        client = _client(tiny_model, config)
        report = client.run_round(25)
        assert report.frequencies.sum() == pytest.approx(25.0)
        assert np.allclose(client.last_frequencies, report.frequencies)

    def test_update_entries_are_unit_norm(self, tiny_model, config, server):
        client = _client(tiny_model, config)
        cache, _ = server.allocate(
            np.zeros(8), server.reference_hit_ratio, client.cache_budget_bytes
        )
        client.install_cache(cache)
        report = client.run_round(80)
        for vec in report.update_entries.values():
            assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_collection_respects_thresholds(self, tiny_model, server):
        """With impossibly strict Gamma/Delta nothing is collected."""
        strict = CoCaConfig(
            theta=0.04, frames_per_round=60, collect_gamma=10.0, collect_delta=10.0
        )
        client = _client(tiny_model, strict)
        cache, _ = server.allocate(
            np.zeros(8), server.reference_hit_ratio, client.cache_budget_bytes
        )
        client.install_cache(cache)
        report = client.run_round(60)
        assert report.update_entries == {}
        assert report.absorbed_hits == 0
        assert report.absorbed_misses == 0

    def test_hit_ratio_seeding_validates_shape(self, tiny_model, config):
        client = _client(tiny_model, config)
        with pytest.raises(ValueError):
            client.seed_hit_ratio(np.zeros(3))

    def test_invalid_round_length(self, tiny_model, config):
        client = _client(tiny_model, config)
        with pytest.raises(ValueError):
            client.run_round(0)

    def test_invalid_budget(self, tiny_model, config):
        with pytest.raises(ValueError):
            _client(tiny_model, config, budget=0)
