"""Unit tests for metric aggregation."""

import pytest

import numpy as np

from repro.sim.metrics import (
    InferenceRecord,
    MetricsCollector,
    merge_summaries,
    summarize_latencies,
)


def _rec(true=0, pred=0, lat=10.0, hit_layer=None, client=0):
    return InferenceRecord(
        true_class=true,
        predicted_class=pred,
        latency_ms=lat,
        hit_layer=hit_layer,
        client_id=client,
    )


class TestInferenceRecord:
    def test_correct_flag(self):
        assert _rec(true=3, pred=3).correct
        assert not _rec(true=3, pred=4).correct

    def test_hit_flag(self):
        assert _rec(hit_layer=2).hit
        assert not _rec(hit_layer=None).hit


class TestMetricsCollector:
    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().summary()

    def test_basic_aggregation(self):
        m = MetricsCollector()
        m.record(_rec(true=0, pred=0, lat=10.0, hit_layer=1))
        m.record(_rec(true=0, pred=1, lat=20.0))
        s = m.summary()
        assert s.num_samples == 2
        assert s.avg_latency_ms == pytest.approx(15.0)
        assert s.accuracy == pytest.approx(0.5)
        assert s.hit_ratio == pytest.approx(0.5)
        assert s.hit_accuracy == pytest.approx(1.0)
        assert s.miss_accuracy == pytest.approx(0.0)

    def test_per_layer_histograms(self):
        m = MetricsCollector()
        m.record(_rec(true=0, pred=0, hit_layer=2))
        m.record(_rec(true=0, pred=1, hit_layer=2))
        m.record(_rec(true=0, pred=0, hit_layer=5))
        s = m.summary()
        assert s.per_layer_hits == {2: 2, 5: 1}
        assert s.per_layer_hit_accuracy[2] == pytest.approx(0.5)
        assert s.per_layer_hit_accuracy[5] == pytest.approx(1.0)

    def test_no_hits_gives_zero_hit_accuracy(self):
        m = MetricsCollector()
        m.record(_rec())
        s = m.summary()
        assert s.hit_ratio == 0.0
        assert s.hit_accuracy == 0.0

    def test_extend_and_len(self):
        m = MetricsCollector()
        m.extend([_rec(), _rec()])
        assert len(m) == 2

    def test_summary_for_client(self):
        m = MetricsCollector()
        m.record(_rec(client=0, lat=10.0))
        m.record(_rec(client=1, lat=30.0))
        s = m.summary_for_client(1)
        assert s.num_samples == 1
        assert s.avg_latency_ms == pytest.approx(30.0)

    def test_as_row_is_rounded(self):
        m = MetricsCollector()
        m.record(_rec(lat=10.123456))
        row = m.summary().as_row()
        assert row["latency_ms"] == pytest.approx(10.12)
        assert row["samples"] == 1


class TestMergeSummaries:
    def test_merge_weighted_by_samples(self):
        a = MetricsCollector()
        a.extend([_rec(lat=10.0)] * 3)
        b = MetricsCollector()
        b.extend([_rec(lat=40.0)])
        merged = merge_summaries([a.summary(), b.summary()])
        assert merged.num_samples == 4
        assert merged.avg_latency_ms == pytest.approx((3 * 10 + 40) / 4)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_summaries([])

    def test_merge_hit_accuracy_weighted_by_hits(self):
        a = MetricsCollector()
        a.record(_rec(true=0, pred=0, hit_layer=1))  # 1 hit, correct
        a.record(_rec(true=0, pred=0))
        b = MetricsCollector()
        b.record(_rec(true=0, pred=1, hit_layer=1))  # 1 hit, wrong
        merged = merge_summaries([a.summary(), b.summary()])
        assert merged.hit_accuracy == pytest.approx(0.5)


class TestLatencySummary:
    """The shared percentile helper used by ``profile-round`` and the
    serve load generator."""

    def test_known_distribution(self):
        values = list(range(1, 101))  # 1..100 ms
        s = summarize_latencies(values)
        assert s.count == 100
        assert s.mean_ms == pytest.approx(50.5)
        assert s.max_ms == pytest.approx(100.0)
        # np.percentile linear interpolation on 1..100.
        assert s.p50_ms == pytest.approx(np.percentile(values, 50))
        assert s.p95_ms == pytest.approx(np.percentile(values, 95))
        assert s.p99_ms == pytest.approx(np.percentile(values, 99))
        assert s.p50_ms <= s.p95_ms <= s.p99_ms <= s.max_ms

    def test_single_sample_collapses(self):
        s = summarize_latencies([42.0])
        assert s.count == 1
        assert s.mean_ms == s.p50_ms == s.p99_ms == s.max_ms == 42.0

    def test_empty_raises_like_collector_summary(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_accepts_ndarray(self):
        s = summarize_latencies(np.array([5.0, 15.0]))
        assert s.mean_ms == pytest.approx(10.0)

    def test_as_row_is_rounded(self):
        row = summarize_latencies([1.23456, 2.34567]).as_row()
        assert row["mean_ms"] == pytest.approx(1.79, abs=1e-9)
        assert row["count"] == 2

    def test_format_is_one_line(self):
        text = summarize_latencies([10.0, 20.0]).format()
        assert "\n" not in text
        assert "p95" in text and "n=2" in text
