"""Unit + property tests for the A-LSH index and H-kNN voting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.alsh import AdaptiveLSH
from repro.lsh.hknn import homogenized_knn


def _unit_rows(rng, n, d):
    mat = rng.standard_normal((n, d))
    return mat / np.linalg.norm(mat, axis=1, keepdims=True)


class TestAdaptiveLSH:
    def test_insert_and_query_same_vector(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        vec = _unit_rows(rng, 1, 8)[0]
        item = index.insert(vec)
        assert item in index.query(vec)

    def test_similar_vectors_share_bucket(self, rng):
        index = AdaptiveLSH(dim=16, rng=rng, base_bits=4)
        base = _unit_rows(rng, 1, 16)[0]
        ids = [index.insert(base + 0.01 * rng.standard_normal(16)) for _ in range(5)]
        found = index.query(base)
        assert set(ids).issubset(set(found))

    def test_len_counts_live_entries(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        a = index.insert(_unit_rows(rng, 1, 8)[0])
        index.insert(_unit_rows(rng, 1, 8)[0])
        assert len(index) == 2
        index.delete(a)
        assert len(index) == 1

    def test_deleted_entries_not_returned(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        vec = _unit_rows(rng, 1, 8)[0]
        item = index.insert(vec)
        index.delete(item)
        assert item not in index.query(vec)

    def test_delete_unknown_id_rejected(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        with pytest.raises(KeyError):
            index.delete(3)

    def test_buckets_split_under_density(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng, base_bits=2, max_bucket_size=4)
        cluster = _unit_rows(rng, 1, 8)[0]
        for _ in range(40):
            index.insert(cluster + 0.3 * rng.standard_normal(8))
        # With max bucket size 4 and 40 clustered points, splits happened.
        assert index.num_buckets > 4

    def test_query_cost_bounded_by_split(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng, base_bits=2, max_bucket_size=8, max_bits=12)
        vectors = _unit_rows(rng, 200, 8)
        for vec in vectors:
            index.insert(vec)
        sizes = [len(index.query(vec)) for vec in vectors[:50]]
        assert np.mean(sizes) < 80  # far below scanning all 200

    def test_dimension_checked(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        with pytest.raises(ValueError):
            index.insert(np.ones(5))
        with pytest.raises(ValueError):
            index.query(np.ones(5))

    def test_constructor_validation(self, rng):
        with pytest.raises(ValueError):
            AdaptiveLSH(dim=0, rng=rng)
        with pytest.raises(ValueError):
            AdaptiveLSH(dim=8, rng=rng, base_bits=10, max_bits=5)
        with pytest.raises(ValueError):
            AdaptiveLSH(dim=8, rng=rng, max_bucket_size=0)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_all_live_entries_findable(self, seed):
        rng = np.random.default_rng(seed)
        index = AdaptiveLSH(dim=8, rng=rng, base_bits=3, max_bucket_size=6)
        vectors = _unit_rows(rng, 60, 8)
        ids = [index.insert(v) for v in vectors]
        for item, vec in zip(ids, vectors):
            assert item in index.query(vec)


class TestHomogenizedKnn:
    def test_unanimous_neighbourhood_hits(self, rng):
        center = _unit_rows(rng, 1, 8)[0]
        vectors = center + 0.05 * rng.standard_normal((8, 8))
        labels = np.full(8, 3)
        vote = homogenized_knn(center, vectors, labels, k=8, threshold=0.9)
        assert vote.hit
        assert vote.label == 3
        assert vote.homogeneity == pytest.approx(1.0)

    def test_mixed_neighbourhood_misses(self, rng):
        center = _unit_rows(rng, 1, 8)[0]
        vectors = center + 0.05 * rng.standard_normal((8, 8))
        labels = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        vote = homogenized_knn(center, vectors, labels, k=8, threshold=0.9)
        assert not vote.hit

    def test_insufficient_candidates_miss(self, rng):
        center = _unit_rows(rng, 1, 8)[0]
        vectors = np.stack([center, center])
        vote = homogenized_knn(center, vectors, np.array([1, 1]), k=8)
        assert not vote.hit
        assert vote.num_candidates == 2

    def test_empty_candidates_miss(self):
        vote = homogenized_knn(np.ones(4), np.zeros((0, 4)), np.zeros(0), k=3)
        assert not vote.hit
        assert vote.label == -1

    def test_min_similarity_filters_far_neighbours(self, rng):
        """A homogeneous but *distant* neighbourhood must not vote."""
        center = np.eye(8)[0]
        far = np.tile(np.eye(8)[1], (8, 1)) + 0.01 * rng.standard_normal((8, 8))
        labels = np.full(8, 2)
        loose = homogenized_knn(center, far, labels, k=8, threshold=0.8)
        strict = homogenized_knn(
            center, far, labels, k=8, threshold=0.8, min_similarity=0.7
        )
        assert loose.hit  # without the distance criterion it would reuse
        assert not strict.hit

    def test_centering_recovers_structure(self, rng):
        """With a large common component, centering separates classes."""
        common = 5.0 * np.ones(8) / np.sqrt(8)
        a_center = common + np.eye(8)[0]
        b_center = common + np.eye(8)[1]
        vectors = np.vstack(
            [
                a_center + 0.05 * rng.standard_normal((6, 8)),
                b_center + 0.05 * rng.standard_normal((6, 8)),
            ]
        )
        labels = np.array([0] * 6 + [1] * 6)
        query = a_center
        centered = homogenized_knn(
            query, vectors, labels, k=6, threshold=0.9, center=vectors.mean(axis=0)
        )
        assert centered.hit
        assert centered.label == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            homogenized_knn(np.ones(4), np.ones((2, 4)), np.ones(3), k=2)
        with pytest.raises(ValueError):
            homogenized_knn(np.ones(4), np.ones((2, 4)), np.ones(2), k=0)
        with pytest.raises(ValueError):
            homogenized_knn(np.ones(4), np.ones((2, 4)), np.ones(2), threshold=0.0)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_homogeneity_bounded(self, seed):
        rng = np.random.default_rng(seed)
        vectors = _unit_rows(rng, 12, 6)
        labels = rng.integers(0, 3, 12)
        vote = homogenized_knn(_unit_rows(rng, 1, 6)[0], vectors, labels, k=5)
        assert 0.0 <= vote.homogeneity <= 1.0


class TestStorageReclamation:
    def test_rebuild_purges_dead_rows(self, rng):
        """`delete` leaks no storage past the next rebuild: the backing
        matrix shrinks to exactly the new content."""
        index = AdaptiveLSH(dim=8, rng=rng)
        for vec in _unit_rows(rng, 30, 8):
            index.insert(vec)
        for item in range(0, 30, 2):
            index.delete(item)
        assert index.storage_rows >= 30  # dead rows still held
        fresh = _unit_rows(rng, 6, 8)
        ids = index.rebuild(fresh)
        assert index.storage_rows == 6
        assert len(index) == 6
        assert list(ids) == list(range(6))
        for item, vec in zip(ids, fresh):
            assert item in index.query(vec)

    def test_heavy_deletion_compacts_automatically(self, rng):
        """Once dead rows outnumber live ones, storage compacts without
        an explicit rebuild — and surviving ids stay valid."""
        index = AdaptiveLSH(dim=8, rng=rng, base_bits=3, max_bucket_size=8)
        vectors = _unit_rows(rng, 120, 8)
        ids = [index.insert(vec) for vec in vectors]
        peak = index.storage_rows
        for item in ids[:100]:
            index.delete(item)
        assert index.storage_rows < peak
        assert len(index) == 20
        for item, vec in zip(ids[100:], vectors[100:]):
            assert item in index.query(vec)
            assert np.allclose(index.vector(item), vec)

    def test_delete_is_idempotent(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        item = index.insert(_unit_rows(rng, 1, 8)[0])
        index.delete(item)
        index.delete(item)  # no-op, no error
        assert len(index) == 0

    def test_rebuild_reuses_hyperplanes(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        planes_before = index._planes.copy()
        index.rebuild(_unit_rows(rng, 10, 8))
        assert np.array_equal(index._planes, planes_before)

    def test_insert_many_matches_sequential_inserts(self, rng):
        vectors = _unit_rows(rng, 50, 10)
        bulk = AdaptiveLSH(dim=10, rng=np.random.default_rng(3), base_bits=3,
                           max_bucket_size=6)
        one = AdaptiveLSH(dim=10, rng=np.random.default_rng(3), base_bits=3,
                          max_bucket_size=6)
        bulk.insert_many(vectors)
        for vec in vectors:
            one.insert(vec)
        for vec in vectors:
            assert sorted(bulk.query(vec)) == sorted(one.query(vec))


class TestMultiProbe:
    def test_query_matches_query_batch(self, rng):
        index = AdaptiveLSH(dim=12, rng=rng, base_bits=5, max_bucket_size=6,
                            multi_probe=2)
        vectors = _unit_rows(rng, 80, 12)
        index.insert_many(vectors)
        queries = np.vstack([vectors[:10], _unit_rows(rng, 10, 12)])
        batched = index.query_batch(queries)
        singles = [index.query(q) for q in queries]
        assert batched == singles

    def test_multi_probe_supersets_single_probe(self, rng):
        vectors = _unit_rows(rng, 100, 10)
        plain = AdaptiveLSH(dim=10, rng=np.random.default_rng(1), base_bits=5,
                            max_bucket_size=8)
        multi = AdaptiveLSH(dim=10, rng=np.random.default_rng(1), base_bits=5,
                            max_bucket_size=8, multi_probe=2)
        plain.insert_many(vectors)
        multi.insert_many(vectors)
        for query in _unit_rows(rng, 20, 10):
            assert set(plain.query(query)) <= set(multi.query(query))

    def test_multi_probe_improves_recall(self, rng):
        """Flipping low-margin bits recovers near neighbours that the
        single bucket misses."""
        base = _unit_rows(rng, 200, 16)
        plain = AdaptiveLSH(dim=16, rng=np.random.default_rng(2), base_bits=6,
                            max_bucket_size=8)
        multi = AdaptiveLSH(dim=16, rng=np.random.default_rng(2), base_bits=6,
                            max_bucket_size=8, multi_probe=3)
        plain.insert_many(base)
        multi.insert_many(base)
        queries = base + 0.15 * rng.standard_normal(base.shape)
        hits_plain = sum(i in plain.query(q) for i, q in enumerate(queries))
        hits_multi = sum(i in multi.query(q) for i, q in enumerate(queries))
        assert hits_multi > hits_plain

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            AdaptiveLSH(dim=8, rng=rng, base_bits=4, multi_probe=5)
        with pytest.raises(ValueError):
            AdaptiveLSH(dim=8, rng=rng, multi_probe=-1)


class TestShortlist:
    def test_union_of_query_batch(self, rng):
        index = AdaptiveLSH(dim=10, rng=rng, base_bits=4, max_bucket_size=6,
                            multi_probe=2)
        vectors = _unit_rows(rng, 60, 10)
        index.insert_many(vectors)
        queries = _unit_rows(rng, 15, 10)
        shortlist = index.shortlist(queries)
        expected = sorted({i for b in index.query_batch(queries) for i in b})
        assert list(shortlist) == expected

    def test_empty_inputs(self, rng):
        index = AdaptiveLSH(dim=6, rng=rng)
        assert index.shortlist(np.zeros((0, 6))).size == 0

    def test_centering_separates_offset_clusters(self, rng):
        """With a large common component, origin-anchored planes lump
        everything into one bucket; centred planes split the structure."""
        common = 8.0 * _unit_rows(rng, 1, 12)[0]
        cluster = common + 0.4 * rng.standard_normal((120, 12))
        plain = AdaptiveLSH(dim=12, rng=np.random.default_rng(4), base_bits=5,
                            max_bits=5, max_bucket_size=4)
        centred = AdaptiveLSH(dim=12, rng=np.random.default_rng(4), base_bits=5,
                              max_bits=5, max_bucket_size=4,
                              center=cluster.mean(axis=0))
        plain.insert_many(cluster)
        centred.insert_many(cluster)
        assert centred.num_buckets > plain.num_buckets


class TestQueryBatch:
    def test_matches_per_vector_query(self, rng):
        index = AdaptiveLSH(dim=12, rng=rng, base_bits=4, max_bucket_size=6)
        vectors = _unit_rows(rng, 80, 12)
        for vec in vectors:
            index.insert(vec)
        queries = np.vstack([vectors[:10], _unit_rows(rng, 10, 12)])
        batched = index.query_batch(queries)
        singles = [index.query(q) for q in queries]
        assert batched == singles

    def test_matches_after_deletes(self, rng):
        index = AdaptiveLSH(dim=10, rng=rng, base_bits=3, max_bucket_size=4)
        vectors = _unit_rows(rng, 60, 10)
        ids = [index.insert(vec) for vec in vectors]
        for item in ids[::3]:
            index.delete(item)
        batched = index.query_batch(vectors)
        singles = [index.query(vec) for vec in vectors]
        assert batched == singles
        deleted = set(ids[::3])
        for bucket in batched:
            assert not deleted & set(bucket)

    def test_purges_dead_entries(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        vec = _unit_rows(rng, 1, 8)[0]
        item = index.insert(vec)
        index.delete(item)
        assert index.query_batch(vec[None, :]) == [[]]

    def test_empty_batch(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        assert index.query_batch(np.zeros((0, 8))) == []

    def test_rejects_bad_shape(self, rng):
        index = AdaptiveLSH(dim=8, rng=rng)
        with pytest.raises(ValueError):
            index.query_batch(np.zeros(8))
        with pytest.raises(ValueError):
            index.query_batch(np.zeros((3, 5)))
