"""Unit tests for t-SNE and clustering metrics."""

import numpy as np
import pytest

from repro.analysis.clustering import centroid_alignment, cosine_silhouette
from repro.analysis.tsne import kl_divergence, tsne_embed


def _two_clusters(rng, n_per=15, dim=10, separation=4.0):
    a = rng.standard_normal((n_per, dim)) + separation
    b = rng.standard_normal((n_per, dim)) - separation
    points = np.vstack([a, b])
    labels = np.array([0] * n_per + [1] * n_per)
    return points, labels


class TestTsne:
    def test_output_shape(self, rng):
        points, _ = _two_clusters(rng)
        emb = tsne_embed(points, perplexity=8.0, num_iters=120)
        assert emb.shape == (30, 2)
        assert np.isfinite(emb).all()

    def test_separated_clusters_stay_separated(self, rng):
        points, labels = _two_clusters(rng, separation=6.0)
        emb = tsne_embed(points, perplexity=8.0, num_iters=250, seed=1)
        center_a = emb[labels == 0].mean(axis=0)
        center_b = emb[labels == 1].mean(axis=0)
        # Every point must sit closer to its own cluster's center.
        for point, label in zip(emb, labels):
            own = center_a if label == 0 else center_b
            other = center_b if label == 0 else center_a
            assert np.linalg.norm(point - own) < np.linalg.norm(point - other)

    def test_deterministic_given_seed(self, rng):
        points, _ = _two_clusters(rng)
        a = tsne_embed(points, perplexity=8.0, num_iters=60, seed=5)
        b = tsne_embed(points, perplexity=8.0, num_iters=60, seed=5)
        assert np.allclose(a, b)

    def test_kl_divergence_nonnegative(self, rng):
        points, _ = _two_clusters(rng)
        emb = tsne_embed(points, perplexity=8.0, num_iters=120)
        assert kl_divergence(points, emb, perplexity=8.0) >= 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            tsne_embed(np.ones((3, 4)), perplexity=5.0)  # too few points
        with pytest.raises(ValueError):
            tsne_embed(np.ones((10, 4)), perplexity=10.0)  # perplexity >= n
        with pytest.raises(ValueError):
            tsne_embed(np.ones(10))  # not 2-D


class TestClusteringMetrics:
    def test_alignment_perfect_when_entry_is_mean(self, rng):
        samples = rng.standard_normal((20, 6)) + 3.0
        labels = np.zeros(20, dtype=int)
        entries = samples.mean(axis=0, keepdims=True)
        assert centroid_alignment(entries, samples, labels) == pytest.approx(1.0)

    def test_alignment_penalizes_offset_entries(self, rng):
        samples = rng.standard_normal((20, 6)) + 3.0
        labels = np.zeros(20, dtype=int)
        good = samples.mean(axis=0, keepdims=True)
        bad = -good
        assert centroid_alignment(good, samples, labels) > centroid_alignment(
            bad, samples, labels
        )

    def test_alignment_requires_samples(self, rng):
        with pytest.raises(ValueError):
            centroid_alignment(np.ones((1, 4)), np.ones((0, 4)), np.array([]))

    def test_silhouette_high_for_tight_clusters(self, rng):
        points, labels = _two_clusters(rng, separation=8.0)
        assert cosine_silhouette(points, labels) > 0.5

    def test_silhouette_low_for_mixed_labels(self, rng):
        points, _ = _two_clusters(rng, separation=8.0)
        shuffled = rng.permutation(np.array([0] * 15 + [1] * 15))
        assert cosine_silhouette(points, shuffled) < 0.2

    def test_silhouette_needs_two_clusters(self, rng):
        points, _ = _two_clusters(rng)
        with pytest.raises(ValueError):
            cosine_silhouette(points, np.zeros(30, dtype=int))

    def test_silhouette_shape_mismatch(self, rng):
        points, _ = _two_clusters(rng)
        with pytest.raises(ValueError):
            cosine_silhouette(points, np.zeros(5, dtype=int))
