"""Unit + property tests for the synthetic semantic feature space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stream import Frame
from repro.models.feature import FeatureSpaceConfig, SemanticFeatureSpace


def _space(num_classes=8, num_layers=6, num_clients=3, seed=7, **overrides):
    config = FeatureSpaceConfig(dim=16, cluster_size=4, **overrides)
    return SemanticFeatureSpace(
        num_classes=num_classes,
        num_layers=num_layers,
        num_clients=num_clients,
        config=config,
        rng=np.random.default_rng(seed),
    )


def _frame(class_id=0, difficulty=0.3):
    return Frame(class_id=class_id, difficulty=difficulty, run_position=5, stream_index=0)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        FeatureSpaceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 2},
            {"class_energy_min": 0.0},
            {"class_energy_min": 0.9, "class_energy_max": 0.5},
            {"iso_noise_min": 0.5, "iso_noise_max": 0.2},
            {"conf_sharp": 0.0},
            {"conf_primary_share": 0.3},
            {"w_cap": 0.2},
            {"cluster_cos": 1.0},
            {"drift_shared_frac": 1.5},
            {"temperature": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FeatureSpaceConfig(**kwargs)


class TestGeometry:
    def test_centroids_are_unit_norm(self):
        space = _space()
        for layer in range(space.num_layers + 1):
            norms = np.linalg.norm(space.centroid_matrix(layer), axis=1)
            assert np.allclose(norms, 1.0)

    def test_class_energy_grows_with_depth(self):
        space = _space()
        energies = [space.class_energy(j) for j in range(space.num_layers)]
        assert energies == sorted(energies)

    def test_noise_shrinks_with_depth(self):
        space = _space()
        noises = [space.noise_scale(j) for j in range(space.num_layers)]
        assert noises == sorted(noises, reverse=True)

    def test_deeper_layers_are_more_discriminative(self):
        """Between-class centroid cosine falls with depth (more class
        energy => more separation)."""
        space = _space()

        def mean_offdiag_cos(layer):
            M = space.centroid_matrix(layer)
            gram = M @ M.T
            return (gram.sum() - np.trace(gram)) / (gram.size - gram.shape[0])

        assert mean_offdiag_cos(space.num_layers - 1) < mean_offdiag_cos(0)

    def test_siblings_share_cluster(self):
        space = _space()
        assert space.cluster_of(0) == space.cluster_of(1)
        assert space.cluster_of(0) != space.cluster_of(4)
        assert 0 not in space.siblings_of(0)
        assert set(space.siblings_of(0)) == {1, 2, 3}

    def test_sibling_directions_more_similar_than_strangers(self):
        space = _space(cluster_cos=0.6)
        M = space.centroid_matrix(space.num_layers)  # final layer
        sibling_cos = M[0] @ M[1]
        stranger_cos = M[0] @ M[5]
        assert sibling_cos > stranger_cos

    def test_client_centroid_differs_under_drift(self):
        space = _space(client_drift_scale=0.2)
        base = space.centroid(0, 3)
        drifted = space.client_centroid(1, 0, 3)
        assert not np.allclose(base, drifted)
        assert np.linalg.norm(drifted) == pytest.approx(1.0)

    def test_no_drift_means_client_centroid_equals_global(self):
        space = _space(client_drift_scale=0.0)
        assert np.allclose(space.centroid(2, 1), space.client_centroid(0, 2, 1))

    def test_shared_drift_correlates_clients(self):
        shared = _space(client_drift_scale=0.3, drift_shared_frac=0.95, seed=3)
        indep = _space(client_drift_scale=0.3, drift_shared_frac=0.0, seed=3)

        def client_center_cos(space):
            a = space.client_centroid(0, 0, 5)
            b = space.client_centroid(1, 0, 5)
            return float(a @ b)

        assert client_center_cos(shared) > client_center_cos(indep)

    def test_constructor_validation(self):
        config = FeatureSpaceConfig(dim=16)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SemanticFeatureSpace(1, 5, 1, config, rng)
        with pytest.raises(ValueError):
            SemanticFeatureSpace(5, 0, 1, config, rng)
        with pytest.raises(ValueError):
            SemanticFeatureSpace(5, 5, 0, config, rng)


class TestSampling:
    def test_vectors_unit_norm_at_all_layers(self, rng):
        space = _space()
        sample = space.draw_sample(_frame(), 0, rng)
        for layer in range(space.num_layers + 1):
            assert np.linalg.norm(sample.vector(layer)) == pytest.approx(1.0)

    def test_layer_bounds_checked(self, rng):
        space = _space()
        sample = space.draw_sample(_frame(), 0, rng)
        with pytest.raises(ValueError):
            sample.vector(space.num_layers + 1)
        with pytest.raises(ValueError):
            sample.vector(-1)

    def test_easy_sample_close_to_own_centroid(self, rng):
        space = _space()
        deep = space.num_layers - 1
        sims = []
        for _ in range(50):
            sample = space.draw_sample(_frame(difficulty=0.05), 0, rng)
            sims.append(float(sample.vector(deep) @ space.centroid(0, deep)))
        assert np.mean(sims) > 0.9

    def test_confusion_target_is_sibling(self, rng):
        space = _space()
        for _ in range(20):
            sample = space.draw_sample(_frame(class_id=2), 0, rng)
            assert sample.confusion_target in set(space.siblings_of(2))

    def test_hard_samples_get_higher_confusion(self):
        space = _space()
        rng = np.random.default_rng(0)
        easy = [space.confusion_weight(0.1, rng) for _ in range(300)]
        hard = [space.confusion_weight(0.95, rng) for _ in range(300)]
        assert np.mean(hard) > np.mean(easy) + 0.3

    def test_probabilities_are_normalized(self, rng):
        space = _space()
        sample = space.draw_sample(_frame(), 1, rng)
        probs = sample.probabilities()
        assert probs.shape == (space.num_classes,)
        assert probs.sum() == pytest.approx(1.0)
        assert sample.model_prediction() == int(np.argmax(probs))

    def test_easy_samples_classified_correctly(self, rng):
        space = _space()
        correct = 0
        for i in range(100):
            sample = space.draw_sample(_frame(class_id=i % 8, difficulty=0.05), 0, rng)
            correct += int(sample.model_prediction() == i % 8)
        assert correct >= 95

    def test_model_errors_land_on_siblings(self, rng):
        space = _space()
        wrong_targets = []
        for i in range(400):
            sample = space.draw_sample(_frame(class_id=0, difficulty=0.95), 0, rng)
            pred = sample.model_prediction()
            if pred != 0:
                wrong_targets.append(pred)
        assert wrong_targets, "expected some errors at difficulty 0.95"
        sibling_set = set(space.siblings_of(0))
        sibling_share = np.mean([t in sibling_set for t in wrong_targets])
        assert sibling_share > 0.9

    def test_sample_validation(self, rng):
        space = _space()
        with pytest.raises(ValueError):
            space.draw_sample(_frame(class_id=99), 0, rng)
        with pytest.raises(ValueError):
            space.draw_sample(_frame(), 99, rng)


class TestFeatureProperties:
    @given(
        difficulty=st.floats(min_value=0.0, max_value=0.999),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_confusion_weight_bounded(self, difficulty, seed):
        space = _space()
        w = space.confusion_weight(difficulty, np.random.default_rng(seed))
        assert 0.0 <= w <= space.config.w_cap

    @given(
        class_id=st.integers(min_value=0, max_value=7),
        client_id=st.integers(min_value=0, max_value=2),
        difficulty=st.floats(min_value=0.0, max_value=0.99),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_samples_always_unit_norm(self, class_id, client_id, difficulty, seed):
        space = _space()
        sample = space.draw_sample(
            _frame(class_id=class_id, difficulty=difficulty),
            client_id,
            np.random.default_rng(seed),
        )
        for layer in (0, space.num_layers // 2, space.num_layers):
            assert np.linalg.norm(sample.vector(layer)) == pytest.approx(1.0)


class TestDrawSamples:
    """Batched draw: invariants plus distributional match to draw_sample."""

    def _block(self, space, count, seed=0, difficulty=0.3):
        from repro.data.stream import FrameBlock

        rng = np.random.default_rng(seed)
        return FrameBlock(
            class_ids=rng.integers(0, space.num_classes, count),
            difficulties=np.full(count, difficulty),
            run_positions=np.zeros(count, dtype=np.int64),
            stream_indices=np.arange(count),
        )

    def test_shapes_and_unit_norms(self):
        space = _space()
        block = self._block(space, 40)
        batch = space.draw_samples(block, 0, np.random.default_rng(1))
        assert len(batch) == 40
        assert batch.vectors.shape == (40, space.num_layers + 1, space.config.dim)
        norms = np.linalg.norm(batch.vectors, axis=-1)
        assert np.allclose(norms, 1.0)
        assert batch.confusion_targets.shape == (40,)
        assert batch.confusion_weights.shape == (40,)
        assert np.all(batch.confusion_weights >= 0.0)
        assert np.all(batch.confusion_weights <= space.config.w_cap)

    def test_confusion_targets_are_distinct_siblings(self):
        space = _space()
        block = self._block(space, 200)
        batch = space.draw_samples(block, 0, np.random.default_rng(2))
        for class_id, target in zip(block.class_ids, batch.confusion_targets):
            assert target in space.siblings_of(int(class_id))
            assert target != class_id

    def test_accepts_frame_list(self):
        space = _space()
        frames = [_frame(class_id=c % space.num_classes) for c in range(10)]
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        from repro.data.stream import FrameBlock

        batch_list = space.draw_samples(frames, 0, rng_a)
        batch_block = space.draw_samples(FrameBlock.from_frames(frames), 0, rng_b)
        assert np.array_equal(batch_list.vectors, batch_block.vectors)

    def test_empty_batch(self):
        space = _space()
        batch = space.draw_samples([], 0, np.random.default_rng(0))
        assert len(batch) == 0
        assert batch.vectors.shape == (0, space.num_layers + 1, space.config.dim)

    def test_validation(self):
        space = _space()
        block = self._block(space, 5)
        with pytest.raises(ValueError):
            space.draw_samples(block, space.num_clients, np.random.default_rng(0))
        bad = self._block(space, 5)
        object.__setattr__(bad, "class_ids", np.array([0, 1, 2, 3, 99]))
        with pytest.raises(ValueError):
            space.draw_samples(bad, 0, np.random.default_rng(0))

    def test_sample_view_shares_vectors(self):
        space = _space()
        block = self._block(space, 8)
        batch = space.draw_samples(block, 1, np.random.default_rng(5))
        sample = batch.sample(3)
        assert sample.client_id == 1
        assert sample.frame.class_id == int(block.class_ids[3])
        assert np.shares_memory(sample.vector_matrix(), batch.vectors)
        for layer in range(space.num_layers + 1):
            assert np.array_equal(sample.vector(layer), batch.vectors[3, layer])

    def test_classification_consistent_with_scalar_view(self):
        space = _space()
        block = self._block(space, 30)
        batch = space.draw_samples(block, 0, np.random.default_rng(6))
        predictions, gaps = space.classify_vectors(batch.final_vectors())
        for i in range(30):
            sample = batch.sample(i)
            assert sample.model_prediction() == predictions[i]
            probs = np.sort(sample.probabilities())
            assert gaps[i] == pytest.approx(probs[-1] - probs[-2], rel=1e-9)

    def test_distribution_matches_scalar_draw(self):
        """Batched and scalar draws follow the same generative process:
        compare own-centroid cosine distributions at the deepest layer."""
        space = _space()
        count = 1500
        block = self._block(space, count, seed=8, difficulty=0.3)
        batch = space.draw_samples(block, 0, np.random.default_rng(11))
        rng = np.random.default_rng(12)
        scalar = [
            space.draw_sample(block.frame(i), 0, rng) for i in range(count)
        ]
        layer = space.num_layers  # final representation
        own = space.centroid_matrix(layer)[block.class_ids]
        batch_cos = np.einsum("bd,bd->b", batch.vectors[:, layer, :], own)
        scalar_cos = np.array(
            [s.vector(layer) @ own[i] for i, s in enumerate(scalar)]
        )
        assert abs(batch_cos.mean() - scalar_cos.mean()) < 0.02
        assert abs(np.quantile(batch_cos, 0.25) - np.quantile(scalar_cos, 0.25)) < 0.03
        assert abs(np.quantile(batch_cos, 0.75) - np.quantile(scalar_cos, 0.75)) < 0.03
        # The two-mode weight draw: hard fraction matches.
        batch_hard = np.mean(batch.confusion_weights > 0.4)
        scalar_hard = np.mean([s.confusion_weight > 0.4 for s in scalar])
        assert abs(batch_hard - scalar_hard) < 0.05

    def test_drift_moves_batch_toward_client_centroid(self):
        space = _space(client_drift_scale=0.35)
        count = 400
        block = self._block(space, count, seed=4)
        batch = space.draw_samples(block, 1, np.random.default_rng(3))
        layer = space.num_layers - 1
        client_cos = np.mean(
            [
                batch.vectors[i, layer] @ space.client_centroid(1, int(c), layer)
                for i, c in enumerate(block.class_ids)
            ]
        )
        global_cos = np.mean(
            [
                batch.vectors[i, layer] @ space.centroid(int(c), layer)
                for i, c in enumerate(block.class_ids)
            ]
        )
        assert client_cos > global_cos
