"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import Stopwatch, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now_ms == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.5).now_ms == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(3.0)
        clock.advance(4.5)
        assert clock.now_ms == pytest.approx(7.5)

    def test_advance_returns_new_time(self):
        clock = VirtualClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_advance_zero_is_allowed(self):
        clock = VirtualClock(2.0)
        clock.advance(0.0)
        assert clock.now_ms == pytest.approx(2.0)

    def test_cannot_advance_backwards(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_moves_forward(self):
        clock = VirtualClock(2.0)
        assert clock.advance_to(7.5) == pytest.approx(7.5)
        assert clock.now_ms == pytest.approx(7.5)

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(10.0)
        assert clock.advance_to(4.0) == pytest.approx(10.0)
        assert clock.now_ms == pytest.approx(10.0)

    def test_elapsed_since(self):
        clock = VirtualClock()
        t0 = clock.now_ms
        clock.advance(10.0)
        assert clock.elapsed_since(t0) == pytest.approx(10.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(9.0)
        clock.reset()
        assert clock.now_ms == 0.0

    def test_reset_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().reset(-2.0)


class TestStopwatch:
    def test_measures_span(self):
        clock = VirtualClock()
        with Stopwatch(clock) as sw:
            clock.advance(4.0)
            clock.advance(1.0)
        assert sw.elapsed_ms == pytest.approx(5.0)

    def test_zero_span(self):
        clock = VirtualClock()
        with Stopwatch(clock) as sw:
            pass
        assert sw.elapsed_ms == 0.0

    def test_measures_even_on_exception(self):
        clock = VirtualClock()
        sw = Stopwatch(clock)
        with pytest.raises(RuntimeError):
            with sw:
                clock.advance(2.0)
                raise RuntimeError("boom")
        assert sw.elapsed_ms == pytest.approx(2.0)
