"""Unit tests for dataset specs."""

import pytest

from repro.data.datasets import ESC50, IMAGENET100, UCF101, DatasetSpec, get_dataset


class TestDatasetSpec:
    def test_paper_class_counts(self):
        assert UCF101.num_classes == 101
        assert IMAGENET100.num_classes == 100
        assert ESC50.num_classes == 50

    def test_subset_reduces_classes(self):
        sub = UCF101.subset(50)
        assert sub.num_classes == 50
        assert sub.name == "ucf101-50"
        assert sub.mean_run_length == UCF101.mean_run_length

    def test_subset_bounds(self):
        with pytest.raises(ValueError):
            UCF101.subset(1)
        with pytest.raises(ValueError):
            UCF101.subset(102)

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", num_classes=1, mean_run_length=5, difficulty=0.2)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", num_classes=5, mean_run_length=0.5, difficulty=0.2)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", num_classes=5, mean_run_length=5, difficulty=1.0)

    def test_video_has_strongest_locality(self):
        assert UCF101.mean_run_length > IMAGENET100.mean_run_length
        assert IMAGENET100.mean_run_length > ESC50.mean_run_length


class TestGetDataset:
    def test_lookup_by_name(self):
        assert get_dataset("ucf101") is UCF101
        assert get_dataset("imagenet100") is IMAGENET100
        assert get_dataset("esc50") is ESC50

    def test_lookup_normalizes_punctuation(self):
        assert get_dataset("UCF-101") is UCF101
        assert get_dataset("esc_50") is ESC50

    def test_lookup_with_subset(self):
        spec = get_dataset("ucf101", 20)
        assert spec.num_classes == 20

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_dataset("cifar10")
