"""Unit tests for the server-load (response latency) model."""

import math

import pytest

from repro.sim.network import ServerLoadModel


class TestServerLoadModel:
    def test_latency_grows_with_clients(self):
        model = ServerLoadModel()
        lats = [model.response_latency_ms(n) for n in (60, 100, 160)]
        assert lats[0] < lats[1] < lats[2]

    def test_calibration_matches_paper_anchors(self):
        """Fig. 10b: ~56.7 ms at 60 clients, ~60.9 ms at 160 (+-1 ms)."""
        model = ServerLoadModel()
        assert model.response_latency_ms(60) == pytest.approx(56.7, abs=1.0)
        assert model.response_latency_ms(160) == pytest.approx(60.93, abs=1.0)

    def test_growth_is_modest(self):
        """The paper reports only ~7.5% growth from 60 to 160 clients."""
        model = ServerLoadModel()
        growth = model.response_latency_ms(160) / model.response_latency_ms(60) - 1
        assert 0.03 < growth < 0.15

    def test_utilization_scales_linearly(self):
        model = ServerLoadModel()
        assert model.utilization(100) == pytest.approx(2 * model.utilization(50))

    def test_negative_clients_rejected(self):
        with pytest.raises(ValueError):
            ServerLoadModel().utilization(-1)

    def test_mean_wait_stays_strict_at_saturation(self):
        model = ServerLoadModel(service_time_ms=100.0, round_duration_ms=100.0)
        with pytest.raises(ValueError):
            model.mean_wait_ms(10)

    def test_saturated_response_is_inf_with_warning(self):
        model = ServerLoadModel(service_time_ms=100.0, round_duration_ms=100.0)
        with pytest.warns(RuntimeWarning, match="saturated"):
            assert model.response_latency_ms(10) == math.inf

    def test_saturated_sweep_not_poisoned(self):
        """One saturated count must not abort the whole Fig. 10b series."""
        model = ServerLoadModel(service_time_ms=10.0, round_duration_ms=100.0)
        with pytest.warns(RuntimeWarning):
            sweep = model.sweep([2, 5, 20])
        assert sweep[2] < sweep[5]  # pre-saturation points still finite
        assert math.isfinite(sweep[5])
        assert sweep[20] == math.inf

    def test_zero_clients(self):
        model = ServerLoadModel()
        assert model.mean_wait_ms(0) == 0.0
        assert model.utilization(0) == 0.0
        assert model.response_latency_ms(0) == pytest.approx(
            model.base_latency_ms + model.service_time_ms
        )

    def test_near_saturation_large_but_finite(self):
        # rho = 0.999 -> huge but finite M/D/1 wait.
        model = ServerLoadModel(service_time_ms=9.99, round_duration_ms=100.0)
        latency = model.response_latency_ms(10)
        assert math.isfinite(latency)
        assert latency > 10 * model.response_latency_ms(1)

    def test_sweep_returns_all_counts(self):
        model = ServerLoadModel()
        sweep = model.sweep([60, 80])
        assert set(sweep) == {60, 80}
        assert sweep[60] < sweep[80]
