"""Fixture: a properly paired and tested reference implementation.

``rowsum`` / ``rowsum_reference`` live in one module and the fake tests
directory names both, so ``reference-parity`` stays quiet.
"""

import numpy as np


def rowsum_reference(x: np.ndarray) -> np.ndarray:
    out = np.zeros(x.shape[0], dtype=np.float64)
    for i in range(x.shape[0]):
        for j in range(x.shape[1]):
            out[i] += x[i, j]
    return out


def rowsum(x: np.ndarray) -> np.ndarray:
    return x.sum(axis=1)
