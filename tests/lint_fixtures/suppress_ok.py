"""Fixture: a justified suppression — the violation is acknowledged.

The ``np.random.shuffle`` call below is a genuine ``no-global-rng``
violation, but the justified inline suppression moves it to the
*suppressed* bucket instead of failing the run.
"""

import numpy as np


def shuffled_copy(items: list) -> list:
    out = list(items)
    # repro-lint: disable=no-global-rng -- fixture exercising suppression
    np.random.shuffle(out)
    return out
