"""Fixture: an orphaned reference implementation.

``lonely_reference`` has no vectorized ``lonely`` counterpart in this
module, and ``untested_reference`` / ``untested`` exist as a pair but no
test names them — both trip ``reference-parity``.
"""

import numpy as np


def lonely_reference(x: np.ndarray) -> float:
    total = 0.0
    for value in x:
        total += float(value)
    return total


def untested_reference(x: np.ndarray) -> float:
    best = float("-inf")
    for value in x:
        best = max(best, float(value))
    return best


def untested(x: np.ndarray) -> float:
    return float(np.max(x))
