"""Fixture: virtual-time-only code — ``no-wallclock-in-sim`` stays quiet."""


class TinyClock:
    def __init__(self) -> None:
        self.now_ms = 0.0

    def advance(self, delta_ms: float) -> float:
        self.now_ms += delta_ms
        return self.now_ms


def measure(clock: TinyClock) -> float:
    t0 = clock.now_ms
    clock.advance(12.5)
    return clock.now_ms - t0
