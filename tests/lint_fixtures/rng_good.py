"""Fixture: seeded-generator randomness — ``no-global-rng`` stays quiet."""

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed))


def draw_some(rng: np.random.Generator) -> object:
    return rng.normal(size=4), rng.integers(10)
