"""Fixture: allocations inside a marked kernel trip ``zero-alloc-kernel``."""

import numpy as np


# repro-lint: kernel
def probe_scores(vectors: np.ndarray, table: np.ndarray) -> np.ndarray:
    sim = np.empty((vectors.shape[0], table.shape[0]))  # allocates per probe
    np.matmul(vectors, table.T, out=sim)
    both = np.concatenate([sim, sim], axis=1)  # no out= form exists
    return both


def plain_helper(n: int) -> np.ndarray:
    # Unregistered function: allocation here is fine.
    return np.zeros(n, dtype=np.float32)
