"""Fixture: explicit dtypes and no-op casts — ``dtype-discipline`` quiet."""

import numpy as np


def tidy_buffers(batch: int) -> object:
    scores = np.zeros(batch, dtype=np.float32)
    scratch = np.empty((batch, 4), dtype=np.float64)
    return scores, scratch


def tidy_cast(vectors: np.ndarray) -> np.ndarray:
    return vectors.astype(np.float32, copy=False)


def tidy_quantize(mat: np.ndarray, scales: np.ndarray) -> object:
    codes = np.clip(np.rint(mat / scales[:, None]), -127, 127).astype(
        np.int8, copy=False
    )
    staged = np.empty(mat.shape, dtype=np.float32)
    np.multiply(codes, scales[:, None], out=staged)
    return codes, staged
