"""Fixture: explicit dtypes and no-op casts — ``dtype-discipline`` quiet."""

import numpy as np


def tidy_buffers(batch: int) -> object:
    scores = np.zeros(batch, dtype=np.float32)
    scratch = np.empty((batch, 4), dtype=np.float64)
    return scores, scratch


def tidy_cast(vectors: np.ndarray) -> np.ndarray:
    return vectors.astype(np.float32, copy=False)
