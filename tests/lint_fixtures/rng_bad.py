"""Fixture: every call here must trip ``no-global-rng``.

Spellings vary deliberately — the rule matches the resolved canonical
name, not the surface syntax.
"""

import numpy
import numpy as np
from numpy import random as nprand


def seed_the_world() -> None:
    np.random.seed(0)  # global legacy RNG mutation


def draw_some() -> object:
    a = np.random.normal(size=4)
    b = numpy.random.uniform(0.0, 1.0)
    c = nprand.randint(10)
    return a, b, c
