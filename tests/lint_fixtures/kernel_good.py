"""Fixture: a marked kernel writing through preallocated buffers — quiet."""

import numpy as np


# repro-lint: kernel
def probe_scores(
    vectors: np.ndarray, table: np.ndarray, sim: np.ndarray
) -> np.ndarray:
    np.matmul(vectors, table.T, out=sim)
    np.maximum(sim, 0.0, out=sim)
    return sim
