"""Fixture: hygiene-clean code — none of the hygiene rules fire."""

import numpy as np


def accumulate(value: float, acc: list | None = None) -> list:
    if acc is None:
        acc = []
    acc.append(value)
    return acc


def make_table(n: int, d: int) -> np.ndarray:
    return np.zeros((n, d), dtype=np.float32)  # (n, d)
