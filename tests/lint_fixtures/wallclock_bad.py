"""Fixture: host-clock reads — trips ``no-wallclock-in-sim`` when this
directory is configured as a virtual-time dir."""

import time
from datetime import datetime
from time import perf_counter


def measure() -> float:
    start = perf_counter()
    time.sleep(0.001)
    stamp = datetime.now()
    return time.time() - start + stamp.microsecond
