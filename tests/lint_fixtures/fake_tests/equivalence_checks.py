"""Stand-in tests directory content for the ``reference-parity`` fixture.

Names ``rowsum`` and ``rowsum_reference`` so the *good* parity fixture
counts as exercised; deliberately names nothing from the bad fixture.
"""

import numpy as np

from tests.lint_fixtures.parity_good import rowsum, rowsum_reference


def check_rowsum_equivalence() -> None:
    x = np.arange(12, dtype=np.float64).reshape(3, 4)
    assert np.allclose(rowsum(x), rowsum_reference(x))
