"""Fixture: dtype-implicit allocations and copying casts.

Trips ``dtype-discipline`` three times when this file is configured as a
hot-path module: two dtype-less constructors and one plain ``astype``.
"""

import numpy as np


def sloppy_buffers(batch: int) -> object:
    scores = np.zeros(batch)  # implicit float64
    scratch = np.empty((batch, 4))  # implicit float64
    return scores, scratch


def sloppy_cast(vectors: np.ndarray) -> np.ndarray:
    return vectors.astype(np.float32)  # copies even when already float32
