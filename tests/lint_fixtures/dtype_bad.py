"""Fixture: dtype-implicit allocations and copying casts.

Trips ``dtype-discipline`` five times when this file is configured as a
hot-path module: two dtype-less constructors and three plain ``astype``
calls (one float cast, two quantized-buffer casts).
"""

import numpy as np


def sloppy_buffers(batch: int) -> object:
    scores = np.zeros(batch)  # implicit float64
    scratch = np.empty((batch, 4))  # implicit float64
    return scores, scratch


def sloppy_cast(vectors: np.ndarray) -> np.ndarray:
    return vectors.astype(np.float32)  # copies even when already float32


def sloppy_quantize(mat: np.ndarray, scales: np.ndarray) -> np.ndarray:
    # Quantized buffers carry the same obligation: both casts copy.
    codes = np.clip(np.rint(mat / scales[:, None]), -127, 127).astype(np.int8)
    return codes.astype(np.float32) * scales.astype(np.float32, copy=False)[:, None]
