"""Fixture: mutable defaults, a lying shape comment, a bare suppression.

Trips ``mutable-default`` (twice), ``shape-comment-drift`` (once) and
``suppression-justification`` (once) — and because the suppression below
carries no justification it is NOT honoured, so the dtype finding it
tries to hide would still be reported were this file a hot path.
"""

import numpy as np


def accumulate(value: float, acc=[]) -> list:
    acc.append(value)
    return acc


def tally(key: str, *, counts={}) -> dict:
    counts[key] = counts.get(key, 0) + 1
    return counts


def make_table(n: int, d: int) -> np.ndarray:
    return np.zeros((n, d), dtype=np.float32)  # (n, d, extra)


def hidden_debt(batch: int) -> np.ndarray:
    return np.zeros(batch)  # repro-lint: disable=dtype-discipline
