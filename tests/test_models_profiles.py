"""Unit tests for latency profiles and memory accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.profiles import (
    LatencyProfile,
    LookupCostModel,
    ResNetStagePlan,
    build_profile,
)


def _profile(total=10.0, layers=4, channels=None, weights=None):
    channels = channels if channels is not None else [8] * layers
    return build_profile(
        total_compute_ms=total,
        num_cache_layers=layers,
        channels_per_layer=channels,
        block_weights=weights,
    )


class TestLatencyProfile:
    def test_total_compute_matches_budget(self):
        profile = _profile(total=25.0)
        assert profile.total_compute_ms == pytest.approx(25.0)

    def test_block_count(self):
        profile = _profile(layers=6)
        assert profile.num_blocks == 7
        assert profile.num_cache_layers == 6

    def test_prefix_plus_saved_equals_total(self):
        profile = _profile(total=30.0, layers=5)
        for layer in range(5):
            total = profile.compute_up_to_layer_ms(layer) + profile.saved_if_hit_at(layer)
            assert total == pytest.approx(30.0)

    def test_saved_time_decreases_with_depth(self):
        profile = _profile(layers=8)
        saved = [profile.saved_if_hit_at(j) for j in range(8)]
        assert saved == sorted(saved, reverse=True)

    def test_lookup_cost_affine_in_entries(self):
        profile = _profile()
        base = profile.lookup_cost_ms(1)
        assert profile.lookup_cost_ms(11) == pytest.approx(
            base + 10 * profile.lookup_per_entry_ms
        )

    def test_lookup_cost_zero_entries(self):
        assert _profile().lookup_cost_ms(0) == 0.0

    def test_lookup_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            _profile().lookup_cost_ms(-1)


class TestLookupCostModel:
    def test_profile_and_model_agree(self):
        profile = _profile()
        model = profile.lookup_cost_model
        for n in (0, 1, 7, 500):
            assert model.cost_ms(n) == pytest.approx(profile.lookup_cost_ms(n))

    def test_is_callable(self):
        model = LookupCostModel(base_ms=1.0, per_entry_ms=0.5)
        assert model(4) == pytest.approx(3.0)

    def test_zero_entries_cost_nothing(self):
        assert LookupCostModel().cost_ms(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupCostModel(base_ms=-1.0)
        with pytest.raises(ValueError):
            LookupCostModel(per_entry_ms=-0.1)
        with pytest.raises(ValueError):
            LookupCostModel().cost_ms(-1)

    def test_entry_sizes_follow_channels(self):
        profile = _profile(channels=[8, 16, 32, 64])
        assert profile.entry_size_bytes(0) == 32
        assert profile.entry_size_bytes(3) == 256

    def test_cache_size_accounting(self):
        profile = _profile(channels=[8, 16, 32, 64])
        size = profile.cache_size_bytes({0: 2, 3: 1})
        assert size == 2 * 32 + 1 * 256

    def test_cache_size_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            _profile().cache_size_bytes({0: -1})

    def test_layer_bounds(self):
        profile = _profile(layers=3)
        with pytest.raises(ValueError):
            profile.compute_up_to_layer_ms(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyProfile(
                block_times_ms=(1.0,),
                lookup_base_ms=0.1,
                lookup_per_entry_ms=0.01,
                entry_sizes_bytes=(),
            )
        with pytest.raises(ValueError):
            LatencyProfile(
                block_times_ms=(1.0, 2.0),
                lookup_base_ms=-0.1,
                lookup_per_entry_ms=0.01,
                entry_sizes_bytes=(4,),
            )
        with pytest.raises(ValueError):
            LatencyProfile(
                block_times_ms=(1.0, 2.0),
                lookup_base_ms=0.1,
                lookup_per_entry_ms=0.01,
                entry_sizes_bytes=(4, 4),  # must have exactly 1
            )


class TestBuildProfile:
    def test_weights_shape_checked(self):
        with pytest.raises(ValueError):
            _profile(layers=3, weights=[1.0, 1.0])  # needs 4

    def test_weights_shape_compute_split(self):
        profile = _profile(total=10.0, layers=1, channels=[8], weights=[3.0, 1.0])
        assert profile.block_time_ms(0) == pytest.approx(7.5)
        assert profile.block_time_ms(1) == pytest.approx(2.5)

    def test_channels_length_checked(self):
        with pytest.raises(ValueError):
            _profile(layers=3, channels=[8, 8])

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            _profile(total=0.0)

    @given(
        total=st.floats(min_value=1.0, max_value=200.0),
        layers=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_times_always_sum_to_total(self, total, layers):
        profile = _profile(total=total, layers=layers, channels=[8] * layers)
        assert profile.total_compute_ms == pytest.approx(total)


class TestResNetStagePlan:
    def test_resnet101_has_34_cache_layers(self):
        plan = ResNetStagePlan(blocks_per_stage=(3, 4, 23, 3))
        assert plan.num_cache_layers == 34

    def test_channels_follow_stages(self):
        plan = ResNetStagePlan(blocks_per_stage=(1, 1, 1, 1))
        assert plan.channels() == [64, 256, 512, 1024, 2048]

    def test_weights_cover_all_blocks(self):
        plan = ResNetStagePlan(blocks_per_stage=(3, 4, 6, 3))
        # stem + 16 blocks + head
        assert len(plan.weights()) == plan.num_cache_layers + 1
