"""Scalar/batch equivalence suite.

The batched inference subsystem must be a pure performance optimization:
for any cache configuration, :class:`BatchedInferenceEngine.infer_batch`
must reproduce ``CachedInferenceEngine.infer`` outcome for outcome —
predictions, hit layers, latencies, and per-layer probe records.

Caches here are built in the float64 exact mode: scalar probes run
through BLAS gemv and batched probes through gemm, whose float32
rounding differs in the last ulp — the documented single-precision
tolerance.  The float32-vs-float64 *decision* parity has its own suite
(``tests/test_dtype_parity.py``); this one pins the exact path.
"""

import numpy as np
import pytest

from repro.core.cache import BatchedLookupSession, SemanticCache
from repro.core.engine import BatchedInferenceEngine, CachedInferenceEngine
from repro.data.stream import StreamGenerator


def _draw_samples(model, seed, count, client_id=0):
    rng = np.random.default_rng(seed)
    stream = StreamGenerator(
        class_distribution=np.full(model.num_classes, 1.0 / model.num_classes),
        mean_run_length=model.dataset.mean_run_length,
        rng=rng,
        base_difficulty=model.dataset.difficulty,
    )
    return [model.draw_sample(frame, client_id, rng) for frame in stream.take(count)]


def _build_cache(model, variant):
    num_classes = model.num_classes
    all_ids = np.arange(num_classes)
    if variant == "all_layers":
        cache = SemanticCache(num_classes, theta=0.05, dtype=np.float64)
        for layer in range(model.num_cache_layers):
            cache.set_layer_entries(layer, all_ids, model.ideal_centroids(layer))
    elif variant == "floored":
        cache = SemanticCache(num_classes, theta=0.02, dtype=np.float64)
        for layer in range(model.num_cache_layers):
            cache.set_layer_entries(layer, all_ids, model.ideal_centroids(layer))
            cache.set_similarity_floor(layer, 0.85)
    elif variant == "partial":
        cache = SemanticCache(num_classes, theta=0.02, alpha=0.7, dtype=np.float64)
        cache.set_layer_entries(1, all_ids[:5], model.ideal_centroids(1)[:5])
        cache.set_layer_entries(3, all_ids, model.ideal_centroids(3))
    elif variant == "single_entry":
        cache = SemanticCache(num_classes, theta=0.0, dtype=np.float64)
        cache.set_layer_entries(0, all_ids[2:3], model.ideal_centroids(0)[2:3])
        cache.set_layer_entries(4, all_ids, model.ideal_centroids(4))
    elif variant == "impossible":
        cache = SemanticCache(num_classes, theta=np.inf, dtype=np.float64)
        for layer in range(model.num_cache_layers):
            cache.set_layer_entries(layer, all_ids, model.ideal_centroids(layer))
    else:  # pragma: no cover - guard against typos in parametrize
        raise ValueError(variant)
    return cache


def _assert_outcomes_match(scalar, batched):
    assert len(scalar) == len(batched)
    for a, b in zip(scalar, batched):
        assert b.predicted_class == a.predicted_class
        assert b.hit_layer == a.hit_layer
        assert b.latency_ms == pytest.approx(a.latency_ms, rel=1e-12, abs=1e-12)
        assert len(b.probes) == len(a.probes)
        for pa, pb in zip(a.probes, b.probes):
            assert pb.layer == pa.layer
            assert pb.top_class == pa.top_class
            assert pb.second_class == pa.second_class
            assert pb.hit == pa.hit
            assert pb.score == pytest.approx(pa.score, rel=1e-9, abs=1e-12)
        if a.hit_score is None:
            assert b.hit_score is None
        else:
            assert b.hit_score == pytest.approx(a.hit_score, rel=1e-9, abs=1e-12)
        if a.top2_prob_gap is None:
            assert b.top2_prob_gap is None
        else:
            assert b.top2_prob_gap == pytest.approx(
                a.top2_prob_gap, rel=1e-9, abs=1e-12
            )


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    @pytest.mark.parametrize(
        "variant", ["all_layers", "floored", "partial", "single_entry", "impossible"]
    )
    def test_batch_matches_scalar(self, tiny_model, seed, variant):
        cache = _build_cache(tiny_model, variant)
        samples = _draw_samples(tiny_model, seed, 50)
        scalar_engine = CachedInferenceEngine(tiny_model, cache)
        batch_engine = BatchedInferenceEngine(tiny_model, cache)
        scalar = [scalar_engine.infer(s) for s in samples]
        batched = batch_engine.infer_batch(samples)
        _assert_outcomes_match(scalar, batched)

    def test_no_cache_matches_scalar(self, tiny_model):
        samples = _draw_samples(tiny_model, 5, 20)
        scalar_engine = CachedInferenceEngine(tiny_model, cache=None)
        batch_engine = BatchedInferenceEngine(tiny_model, cache=None)
        _assert_outcomes_match(
            [scalar_engine.infer(s) for s in samples],
            batch_engine.infer_batch(samples),
        )

    def test_empty_cache_matches_scalar(self, tiny_model):
        cache = SemanticCache(tiny_model.num_classes, dtype=np.float64)
        samples = _draw_samples(tiny_model, 5, 10)
        scalar_engine = CachedInferenceEngine(tiny_model, cache)
        batch_engine = BatchedInferenceEngine(tiny_model, cache)
        _assert_outcomes_match(
            [scalar_engine.infer(s) for s in samples],
            batch_engine.infer_batch(samples),
        )

    def test_empty_batch(self, tiny_model):
        engine = BatchedInferenceEngine(tiny_model, _build_cache(tiny_model, "all_layers"))
        assert engine.infer_batch([]) == []

    def test_set_cache_swaps(self, tiny_model):
        engine = BatchedInferenceEngine(tiny_model, cache=None)
        engine.set_cache(_build_cache(tiny_model, "all_layers"))
        samples = _draw_samples(tiny_model, 1, 3)
        assert all(o.probes for o in engine.infer_batch(samples))

    def test_sample_batch_input_matches_loose_samples(self, tiny_model):
        """A SampleBatch feeds the engine directly (no re-stacking) with
        outcomes identical to the equivalent list of scalar samples."""
        rng = np.random.default_rng(31)
        stream = StreamGenerator(
            class_distribution=np.full(
                tiny_model.num_classes, 1.0 / tiny_model.num_classes
            ),
            mean_run_length=tiny_model.dataset.mean_run_length,
            rng=rng,
            base_difficulty=tiny_model.dataset.difficulty,
        )
        batch = tiny_model.draw_samples(stream.take_block(40), 0, rng)
        engine = BatchedInferenceEngine(tiny_model, _build_cache(tiny_model, "all_layers"))
        _assert_outcomes_match(
            engine.infer_batch(batch.samples()), engine.infer_batch(batch)
        )


class TestBatchedLookupSession:
    def test_matches_scalar_session_accumulation(self, tiny_model):
        cache = _build_cache(tiny_model, "all_layers")
        samples = _draw_samples(tiny_model, 9, 8)
        batch = cache.start_batch_session(len(samples))
        scalars = [cache.start_session() for _ in samples]
        for layer in cache.active_layers:
            vectors = np.stack([s.vector(layer) for s in samples])
            result = batch.probe(layer, vectors)
            for i, (sample, session) in enumerate(zip(samples, scalars)):
                probe = session.probe(layer, sample.vector(layer))
                assert result.top_class[i] == probe.top_class
                assert result.second_class[i] == probe.second_class
                assert bool(result.hit[i]) == probe.hit
                assert result.score[i] == pytest.approx(probe.score, rel=1e-9)
        for i, session in enumerate(scalars):
            for class_id in range(tiny_model.num_classes):
                assert batch.accumulated_score(i, class_id) == pytest.approx(
                    session.accumulated_score(class_id), rel=1e-9, abs=1e-12
                )

    def test_rejects_unknown_layer(self, tiny_model):
        cache = _build_cache(tiny_model, "partial")
        session = cache.start_batch_session(2)
        with pytest.raises(KeyError):
            session.probe(0, np.zeros((2, tiny_model.feature_space.config.dim)))

    def test_rejects_shape_mismatch(self, tiny_model):
        cache = _build_cache(tiny_model, "all_layers")
        session = cache.start_batch_session(2)
        with pytest.raises(ValueError):
            session.probe(0, np.zeros((3, tiny_model.feature_space.config.dim)))

    def test_rejects_empty_batch(self, tiny_model):
        cache = _build_cache(tiny_model, "all_layers")
        with pytest.raises(ValueError):
            BatchedLookupSession(cache, 0)


class TestClientRoundUsesBatchPath:
    def test_round_report_matches_scalar_replay(self, tiny_model):
        """A full client round through the batch engine must match a
        frame-by-frame scalar replay of the same stream (status vectors,
        frequencies, records, and collected update entries)."""
        from repro.core.client import CoCaClient
        from repro.core.config import CoCaConfig

        config = CoCaConfig(frames_per_round=80)
        cache = _build_cache(tiny_model, "all_layers")

        def build_client(seed):
            rng = np.random.default_rng(seed)
            stream = StreamGenerator(
                class_distribution=np.full(
                    tiny_model.num_classes, 1.0 / tiny_model.num_classes
                ),
                mean_run_length=tiny_model.dataset.mean_run_length,
                rng=np.random.default_rng(seed + 1),
                base_difficulty=tiny_model.dataset.difficulty,
            )
            client = CoCaClient(
                client_id=0,
                model=tiny_model,
                stream=stream,
                config=config,
                rng=rng,
            )
            client.install_cache(cache)
            return client

        client = build_client(42)
        report = client.run_round()

        # Scalar replay of the identical block/batch draw: consuming the
        # stream and feature rngs at the same (block) granularity yields
        # the identical sample sequence, which is then replayed frame by
        # frame on the scalar engine.
        replay = build_client(42)
        block = replay.stream.take_block(config.frames_per_round)
        batch = replay.model.draw_samples(block, 0, replay._rng)
        samples = batch.samples()
        timestamps = np.zeros(tiny_model.num_classes)
        phi = np.zeros(tiny_model.num_classes)
        outcomes = [replay.engine.infer(s) for s in samples]
        for outcome in outcomes:
            timestamps += 1.0
            timestamps[outcome.predicted_class] = 0.0
            phi[outcome.predicted_class] += 1.0

        assert np.array_equal(client.timestamps, timestamps)
        assert np.array_equal(report.frequencies, phi)
        assert len(report.records) == config.frames_per_round
        for record, sample, outcome in zip(report.records, samples, outcomes):
            assert record.true_class == sample.true_class
            assert record.predicted_class == outcome.predicted_class
            assert record.hit_layer == outcome.hit_layer
            assert record.latency_ms == pytest.approx(outcome.latency_ms, rel=1e-12)
