"""Unit tests for the Table II SLO-selection logic."""

import pytest

from repro.data.datasets import get_dataset
from repro.experiments import Scenario, run_slo_experiment
from repro.experiments.slo import SloRow, format_slo_table


@pytest.fixture(scope="module")
def results():
    scenario = Scenario(
        dataset=get_dataset("ucf101", 15),
        model_name="resnet50",
        num_clients=2,
        non_iid_level=1.0,
        seed=91,
    )
    return run_slo_experiment(
        scenario,
        accuracy_loss_budgets=(0.03, 0.30),
        methods=("SMTM", "CoCa"),
        rounds=1,
        warmup=1,
        grids={"SMTM": [0.03, 0.08], "CoCa": [0.03, 0.08]},
    )


class TestSloSelection:
    def test_edge_only_row_is_reference(self, results):
        for rows in results.values():
            edge = rows[0]
            assert edge.method == "Edge-Only"
            assert edge.met_constraint
            assert edge.latency_ms == pytest.approx(30.50, abs=0.01)

    def test_loose_budget_admits_faster_configs(self, results):
        """A looser accuracy budget can only lower (or keep) the chosen
        latency for each method."""
        tight = {r.method: r for r in results[0.03]}
        loose = {r.method: r for r in results[0.30]}
        for method in ("SMTM", "CoCa"):
            if tight[method].met_constraint:
                assert loose[method].latency_ms <= tight[method].latency_ms + 1e-9

    def test_selected_threshold_comes_from_grid(self, results):
        for rows in results.values():
            for row in rows[1:]:
                assert row.threshold in (0.03, 0.08)

    def test_formatting_includes_all_methods(self, results):
        table = format_slo_table(results, "t")
        for name in ("Edge-Only", "SMTM", "CoCa"):
            assert name in table

    def test_rows_are_slorow_instances(self, results):
        assert all(
            isinstance(row, SloRow) for rows in results.values() for row in rows
        )

    def test_unmet_constraint_flagged(self):
        """An impossible budget (loss < -1, i.e. accuracy must *exceed*
        Edge-Only by 100pt) can never be met; the row is flagged."""
        scenario = Scenario(
            dataset=get_dataset("ucf101", 15),
            model_name="resnet50",
            num_clients=2,
            non_iid_level=1.0,
            seed=91,
        )
        results = run_slo_experiment(
            scenario,
            accuracy_loss_budgets=(-1.0,),
            methods=("CoCa",),
            rounds=1,
            warmup=0,
            grids={"CoCa": [0.05]},
        )
        coca = results[-1.0][1]
        assert not coca.met_constraint
