"""Serving-precision parity: float32 probe path vs the float64 exact mode.

The dtype policy's contract (see ``repro.core.cache``): storing centroids
and running probe math in single precision must not change any observable
*decision*.  Scores carry ~1e-6 relative rounding, but hit thresholds and
top-2 margins sit orders of magnitude above it, so a full framework run on
the preset cache must produce identical hit/miss decisions, predictions,
and per-class hit rates in both precisions — and, since collection is
decision-driven and update vectors stay float64, bit-identical merged
global tables.

The LSH-pruned kernel has the complementary contract: with the shortlist
threshold disabled (``prune_threshold=None`` or above the layer size),
probes run the dense kernel bit for bit; and when the shortlist covers
every cached class, the pruned kernel's outputs equal the dense kernel's
exactly (it *is* the dense kernel on the full column set).
"""

import numpy as np
import pytest

from repro.core.cache import LookupWorkspace, SemanticCache
from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.data.datasets import get_dataset
from repro.sim.metrics import per_class_hit_rates


def _framework(
    lookup_dtype: str,
    quantize_threshold: int | None = None,
    probe_threads: int = 1,
) -> CoCaFramework:
    return CoCaFramework(
        dataset=get_dataset("ucf101", 30),
        model_name="resnet101",
        num_clients=4,
        seed=11,
        enable_dca=False,  # the preset cache: every class at every layer
        config=CoCaConfig(
            frames_per_round=150,
            lookup_dtype=lookup_dtype,
            quantize_threshold=quantize_threshold,
            # A 30-class cache is the worst case for cross-layer rank
            # drift (every class is near the top-2 of *some* layer), so
            # the parity tiers run the conservative margin; the coarse
            # pass still pins a strict candidate subset in almost every
            # session at this setting.
            coarse_margin=0.15,
            probe_threads=probe_threads,
        ),
    )


def _run_collecting(framework: CoCaFramework, rounds: int = 3) -> list:
    records: list = []
    for r in range(rounds):
        for report in framework.run_round(r):
            records.extend(report.records)
    return records


class TestFrameworkPrecisionParity:
    def test_full_run_decisions_identical(self):
        fast = _framework("float32")
        exact = _framework("float64")
        records32: list = []
        records64: list = []
        for r in range(3):
            for report in fast.run_round(r):
                records32.extend(report.records)
            for report in exact.run_round(r):
                records64.extend(report.records)
        assert len(records32) == len(records64) == 4 * 150 * 3
        for a, b in zip(records32, records64):
            assert a.predicted_class == b.predicted_class
            assert a.hit_layer == b.hit_layer
            assert a.true_class == b.true_class
        # Identical decisions -> identical per-class hit rates...
        rates32 = per_class_hit_rates(records32, fast.model.num_classes)
        rates64 = per_class_hit_rates(records64, exact.model.num_classes)
        assert np.array_equal(rates32, rates64)
        # ...and identical collection, hence bit-identical merged tables
        # (update vectors are drawn and folded in float64 either way).
        assert np.array_equal(
            fast.server.table.entries, exact.server.table.entries
        )
        assert np.array_equal(
            fast.server.table.class_freq, exact.server.table.class_freq
        )

    def test_int8_shortlist_reproduces_float32_run(self):
        """The two-tier kernel's parity contract: int8 coarse shortlist +
        exact float32 re-score must reproduce the plain float32 run —
        identical decisions, hence bit-identical merged tables (the
        quantized codes only choose *which* columns the exact kernel
        scores, never the scores themselves)."""
        plain = _framework("float32")
        twotier = _framework("float32", quantize_threshold=2)
        records_p = _run_collecting(plain)
        records_q = _run_collecting(twotier)
        served = twotier.clients[0].engine.cache
        assert served is not None and served.quantized_layers()
        assert len(records_p) == len(records_q) == 4 * 150 * 3
        for a, b in zip(records_p, records_q):
            assert a.predicted_class == b.predicted_class
            assert a.hit_layer == b.hit_layer
        assert np.array_equal(
            plain.server.table.entries, twotier.server.table.entries
        )
        assert np.array_equal(
            plain.server.table.class_freq, twotier.server.table.class_freq
        )

    def test_probe_threads_reproduce_single_thread_run(self):
        """Thread-blocked probes split rows into disjoint blocks of
        independent row math: a multithreaded full framework run must be
        indistinguishable from the single-threaded one."""
        single = _framework("float32", quantize_threshold=2)
        threaded = _framework("float32", quantize_threshold=2, probe_threads=4)
        records_s = _run_collecting(single, rounds=2)
        records_t = _run_collecting(threaded, rounds=2)
        assert len(records_s) == len(records_t) == 4 * 150 * 2
        for a, b in zip(records_s, records_t):
            assert a.predicted_class == b.predicted_class
            assert a.hit_layer == b.hit_layer
        assert np.array_equal(
            single.server.table.entries, threaded.server.table.entries
        )

    def test_float32_is_the_serving_default(self):
        assert CoCaConfig().lookup_dtype == "float32"
        assert CoCaConfig().cache_dtype == np.dtype(np.float32)
        assert SemanticCache(4).dtype == np.dtype(np.float32)

    def test_served_caches_follow_config_dtype(self):
        fast = _framework("float32")
        exact = _framework("float64")
        for framework, dtype in ((fast, np.float32), (exact, np.float64)):
            framework.run_round(0)
            cache = framework.clients[0].engine.cache
            assert cache is not None
            assert cache.dtype == np.dtype(dtype)
            for layer in cache.active_layers:
                _, mat = cache.entries_at(layer)
                assert mat.dtype == np.dtype(dtype)
                assert mat.flags.c_contiguous


def _populate(cache: SemanticCache, rng: np.random.Generator, layers=3, dim=24):
    num = cache.num_classes
    for layer in range(layers):
        mats = rng.standard_normal((num, dim))
        cache.set_layer_entries(layer, np.arange(num), mats)


class TestPrunedDenseEquivalence:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_disabled_threshold_is_bitwise_dense(self, dtype):
        """A threshold above the layer size builds no index: probes are
        the dense kernel, bit for bit."""
        rng = np.random.default_rng(5)
        dense = SemanticCache(40, theta=0.03, dtype=dtype)
        disabled = SemanticCache(40, theta=0.03, dtype=dtype, prune_threshold=1000)
        for cache in (dense, disabled):
            _populate(cache, np.random.default_rng(7))
        assert disabled.pruned_layers() == []
        workspace = LookupWorkspace()
        queries = rng.standard_normal((16, 3, 24))
        s_dense = dense.start_batch_session(16, workspace=workspace)
        s_off = disabled.start_batch_session(16, workspace=workspace)
        for layer in range(3):
            vecs = np.ascontiguousarray(queries[:, layer, :], dtype=dtype)
            a = s_dense.probe(layer, vecs)
            b = s_off.probe(layer, vecs)
            assert np.array_equal(a.top_class, b.top_class)
            assert np.array_equal(a.second_class, b.second_class)
            assert np.array_equal(a.score, b.score)
            assert np.array_equal(a.hit, b.hit)

    def test_full_shortlist_equals_dense_exactly(self):
        """When the session shortlist covers every cached class, the
        pruned kernel is the dense kernel on the full column set."""
        rng = np.random.default_rng(9)
        dense = SemanticCache(30, theta=0.03, dtype=np.float64)
        pruned = SemanticCache(30, theta=0.03, dtype=np.float64, prune_threshold=2)
        for cache in (dense, pruned):
            _populate(cache, np.random.default_rng(3))
        assert pruned.pruned_layers() == [0, 1, 2]
        workspace = LookupWorkspace()
        queries = rng.standard_normal((12, 3, 24))
        s_dense = dense.start_batch_session(12, workspace=workspace)
        s_pruned = pruned.start_batch_session(12, workspace=workspace)
        # Force the full shortlist: every class is a candidate.
        s_pruned._shortlist = np.arange(30)
        for layer in range(3):
            vecs = np.ascontiguousarray(queries[:, layer, :])
            a = s_dense.probe(layer, vecs)
            b = s_pruned.probe(layer, vecs)
            assert np.array_equal(a.top_class, b.top_class)
            assert np.array_equal(a.second_class, b.second_class)
            assert np.array_equal(a.score, b.score)
            assert np.array_equal(a.hit, b.hit)

    def test_pruned_session_pins_a_shortlist(self):
        pruned = SemanticCache(50, theta=0.03, prune_threshold=2)
        _populate(pruned, np.random.default_rng(3))
        session = pruned.start_batch_session(4)
        assert session._shortlist is None
        queries = np.random.default_rng(1).standard_normal((4, 24))
        session.probe(0, np.ascontiguousarray(queries, dtype=np.float32))
        shortlist = session._shortlist
        assert shortlist is not None and shortlist.size >= 1
        # The shortlist is pinned: deeper probes reuse it unchanged.
        session.probe(1, np.ascontiguousarray(queries, dtype=np.float32))
        assert session._shortlist is shortlist

    def test_scalar_pruned_probe_well_formed(self):
        pruned = SemanticCache(50, theta=0.0, prune_threshold=2)
        _populate(pruned, np.random.default_rng(3))
        ids, mat = pruned.entries_at(1)
        session = pruned.start_session()
        probe = session.probe(1, mat[7])
        assert probe.top_class == 7  # its own centroid wins
        assert probe.second_class != probe.top_class
