"""End-to-end integration tests of the paper's headline behaviours.

These run the full multi-client protocol at moderate scale and assert the
*shape* of the paper's results: caching cuts latency substantially at a
small accuracy cost, CoCa beats the static configuration, non-IID helps
cache methods, the cache adapts to class churn.
"""

import numpy as np
import pytest

from repro.baselines import CoCaRunner, EdgeOnly, SMTM
from repro.core.config import CoCaConfig
from repro.data.datasets import get_dataset
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        dataset=get_dataset("ucf101", 30),
        model_name="resnet101",
        num_clients=3,
        non_iid_level=1.0,
        seed=77,
    )


@pytest.fixture(scope="module")
def coca_summary(scenario):
    runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=0.05))
    return runner.run(3, warmup_rounds=1).summary()


@pytest.fixture(scope="module")
def edge_summary(scenario):
    # Same rounds/warmup as the CoCa run: the streams are seed-identical,
    # so this pairs the two methods frame-for-frame.
    return EdgeOnly(fresh_scenario(scenario)).run(3, warmup_rounds=1).summary()


class TestHeadlineClaims:
    def test_coca_cuts_latency_by_20_to_60_percent(self, coca_summary, edge_summary):
        reduction = 1 - coca_summary.avg_latency_ms / edge_summary.avg_latency_ms
        assert 0.20 < reduction < 0.65

    def test_accuracy_loss_is_small(self, coca_summary, edge_summary):
        loss = edge_summary.accuracy - coca_summary.accuracy
        assert loss < 0.06

    def test_hits_are_more_reliable_than_model(self, coca_summary):
        # Hits fire on unambiguous samples, so hit accuracy beats overall.
        assert coca_summary.hit_accuracy > coca_summary.accuracy

    def test_substantial_hit_ratio(self, coca_summary):
        assert coca_summary.hit_ratio > 0.35


class TestAdaptivity:
    def test_cache_tracks_class_churn(self, scenario):
        """After the stream's working set rotates, the allocation follows:
        hot-spot sets differ between early and late rounds."""
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=0.05))
        fw = runner.framework
        fw.run_round(0)
        client = fw.clients[0]
        status_early = client.status()
        _, early = fw.server.allocate(
            status_early.timestamps,
            status_early.hit_ratio,
            status_early.cache_budget_bytes,
            local_freq=status_early.frequencies,
        )
        for r in range(1, 5):
            fw.run_round(r)
        status_late = client.status()
        _, late = fw.server.allocate(
            status_late.timestamps,
            status_late.hit_ratio,
            status_late.cache_budget_bytes,
            local_freq=status_late.frequencies,
        )
        assert set(early.hotspot_classes.tolist()) != set(
            late.hotspot_classes.tolist()
        )

    def test_noniid_speeds_up_caching(self, scenario):
        """Higher non-IID level concentrates streams => better hit ratios
        (Fig. 7's mechanism)."""
        import dataclasses

        iid = dataclasses.replace(fresh_scenario(scenario), non_iid_level=0.0)
        skewed = dataclasses.replace(fresh_scenario(scenario), non_iid_level=10.0)
        hr_iid = (
            CoCaRunner(iid, config=CoCaConfig(theta=0.05))
            .run(2, warmup_rounds=1)
            .summary()
            .hit_ratio
        )
        hr_skewed = (
            CoCaRunner(skewed, config=CoCaConfig(theta=0.05))
            .run(2, warmup_rounds=1)
            .summary()
            .hit_ratio
        )
        assert hr_skewed > hr_iid - 0.05  # at least comparable, usually better


class TestProtocolConsistency:
    def test_budget_respected_every_round(self, scenario):
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=0.05))
        fw = runner.framework
        for r in range(3):
            fw.run_round(r)
            for client in fw.clients:
                cache = client.engine.cache
                if cache is None:
                    continue
                size = cache.size_bytes(fw.model.profile.entry_size_bytes)
                assert size <= client.cache_budget_bytes

    def test_cached_classes_exist_in_global_table(self, scenario):
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=0.05))
        fw = runner.framework
        fw.run_round(0)
        for client in fw.clients:
            cache = client.engine.cache
            for layer in cache.active_layers:
                ids, _ = cache.entries_at(layer)
                assert fw.server.table.filled[ids, layer].all()

    def test_global_entries_stay_unit_norm(self, scenario):
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=0.05))
        fw = runner.framework
        for r in range(2):
            fw.run_round(r)
        norms = np.linalg.norm(fw.server.table.entries, axis=2)
        assert np.allclose(norms[fw.server.table.filled], 1.0)

    def test_coca_beats_smtm_accuracy_at_same_theta(self, scenario):
        """The collaborative global cache should outperform purely local
        adaptation in accuracy at a matched threshold (Table II shape)."""
        coca = (
            CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=0.05))
            .run(3, warmup_rounds=1)
            .summary()
        )
        smtm = SMTM(fresh_scenario(scenario), theta=0.05).run(3, warmup_rounds=1).summary()
        assert coca.accuracy > smtm.accuracy - 0.02
