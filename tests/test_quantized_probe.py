"""Two-tier quantized probe kernel: quantization invariants, candidate
selection, thread-blocked execution, and the workspace thread-safety
contract.

The kernel's correctness story has three independent legs, each tested
here in isolation (the full-framework parity lives in
``test_dtype_parity.py`` and the throughput gates in ``benchmarks/``):

* **quantization round-trip** — int8 codes with symmetric per-row scales
  reconstruct every row within the tier's recorded L2 ``bound``, and the
  staged float32 matrix is *bit-exact* ``codes * scale`` (the coarse
  matmul runs on staged values, so exactness of the staging is what
  makes the margin analysis sound);
* **candidate soundness** — the coarse pass may only choose *which*
  columns the exact kernel scores: with the candidate set pinned, probe
  outputs must equal the dense kernel restricted to those columns, and
  degenerate selections must fall back to the dense kernel outright;
* **thread-block identity** — row blocks are independent math, so
  ``probe_threads > 1`` must be bit-identical to single-threaded
  execution, with every thread on its own child workspace.
"""

import numpy as np
import pytest

from repro import contracts
from repro.core.cache import (
    INT8_EXACT_MAX_DIM,
    LookupWorkspace,
    SemanticCache,
    quantize_rows,
)


def _unit_rows(rng, n, d):
    mat = rng.standard_normal((n, d))
    return mat / np.linalg.norm(mat, axis=1, keepdims=True)


# ----------------------------------------------------------------------
# quantize_rows round-trip invariants
# ----------------------------------------------------------------------


class TestQuantizeRows:
    def test_int8_round_trip_within_bound(self):
        rng = np.random.default_rng(0)
        mat = _unit_rows(rng, 64, 48).astype(np.float32)
        tier = quantize_rows(mat)
        assert tier.codes.dtype == np.int8
        assert tier.scales.dtype == np.float32
        assert tier.staged.dtype == np.float32
        err = np.linalg.norm(mat.astype(np.float64) - tier.staged, axis=1)
        assert float(err.max()) <= tier.bound + 1e-12
        # Symmetric quantization: half-a-step per component worst case.
        step = tier.scales.astype(np.float64)
        assert float(err.max()) <= np.sqrt(mat.shape[1]) * float(step.max())

    def test_staged_is_bit_exact_codes_times_scale(self):
        rng = np.random.default_rng(1)
        tier = quantize_rows(rng.standard_normal((17, 31)))
        expect = tier.codes.astype(np.float32) * tier.scales[:, None]
        assert np.array_equal(tier.staged, expect)
        assert tier.staged.flags.c_contiguous

    def test_codes_symmetric_range(self):
        rng = np.random.default_rng(2)
        tier = quantize_rows(10.0 * rng.standard_normal((32, 8)))
        assert int(tier.codes.min()) >= -127  # -128 never used
        assert int(tier.codes.max()) <= 127
        assert np.all(tier.scales > 0)

    def test_scale_is_per_row(self):
        mat = np.asarray([[1.0, 0.0], [100.0, 0.0]])
        tier = quantize_rows(mat)
        assert tier.scales[1] == pytest.approx(100.0 / 127.0)
        assert tier.scales[0] == pytest.approx(1.0 / 127.0)
        assert int(tier.codes[0, 0]) == int(tier.codes[1, 0]) == 127

    def test_empty_matrix(self):
        tier = quantize_rows(np.empty((0, 8)))
        assert tier.codes.shape == (0, 8)
        assert tier.scales.shape == (0,)
        assert tier.bound == 0.0

    def test_single_row(self):
        tier = quantize_rows(np.asarray([[0.5, -0.25, 0.125]]))
        assert tier.codes.shape == (1, 3)
        assert float(
            np.linalg.norm(np.asarray([0.5, -0.25, 0.125]) - tier.staged[0])
        ) <= tier.bound + 1e-12

    def test_zero_row_uses_epsilon_scale(self):
        tier = quantize_rows(np.asarray([[0.0, 0.0], [1.0, 0.0]]))
        assert np.all(tier.scales > 0)
        assert np.array_equal(tier.staged[0], [0.0, 0.0])

    def test_float16_variant(self):
        rng = np.random.default_rng(3)
        mat = _unit_rows(rng, 16, 24)
        tier = quantize_rows(mat, quant_dtype=np.float16)
        assert tier.codes.dtype == np.float16
        assert np.all(tier.scales == 1.0)
        err = np.linalg.norm(mat - tier.staged, axis=1)
        assert float(err.max()) <= tier.bound + 1e-12
        # fp16 is a straight downcast: far tighter than int8 at unit norm.
        assert tier.bound < quantize_rows(mat).bound

    def test_rejects_bad_dtype_and_shape(self):
        with pytest.raises(ValueError, match="quant_dtype"):
            quantize_rows(np.eye(3), quant_dtype=np.int16)
        with pytest.raises(ValueError, match="2-D"):
            quantize_rows(np.zeros(4))

    def test_int8_exact_rescore_dimension_budget(self):
        # d * 127^2 must fit a float32 mantissa for the staged matmul to
        # be exactly representable; the repo's feature dims sit far under.
        assert INT8_EXACT_MAX_DIM == (2**24 - 1) // (127 * 127)
        assert INT8_EXACT_MAX_DIM >= 1040


# ----------------------------------------------------------------------
# Quantization contracts
# ----------------------------------------------------------------------


class TestQuantizationContracts:
    def _tier_args(self, seed=0, n=12, d=16):
        rng = np.random.default_rng(seed)
        stored = np.ascontiguousarray(
            _unit_rows(rng, n, d), dtype=np.float32
        )
        tier = quantize_rows(stored)
        return stored, tier

    def test_good_tier_passes(self):
        stored, tier = self._tier_args()
        contracts.check_quantized_tier(
            0, stored, tier.codes, tier.scales, tier.staged, tier.bound
        )

    def test_tampered_staging_fires(self):
        stored, tier = self._tier_args()
        staged = tier.staged.copy()
        staged[0, 0] += 1e-3
        with pytest.raises(AssertionError):
            contracts.check_quantized_tier(
                0, stored, tier.codes, tier.scales, staged, tier.bound
            )

    def test_understated_bound_fires(self):
        stored, tier = self._tier_args()
        with pytest.raises(AssertionError):
            contracts.check_quantized_tier(
                0, stored, tier.codes, tier.scales, tier.staged,
                tier.bound / 2,
            )

    def test_candidate_ids_pass_and_fail(self):
        contracts.check_candidate_ids(np.asarray([1, 4, 9]), 10)
        with pytest.raises(AssertionError):  # duplicate
            contracts.check_candidate_ids(np.asarray([1, 1, 2]), 10)
        with pytest.raises(AssertionError):  # out of range
            contracts.check_candidate_ids(np.asarray([1, 10]), 10)
        with pytest.raises(AssertionError):  # too few for a runner-up
            contracts.check_candidate_ids(np.asarray([3]), 10)

    def test_cache_refresh_checked_under_contracts(self):
        rng = np.random.default_rng(5)
        with contracts.activated():
            cache = SemanticCache(20, quantize_threshold=2)
            cache.set_layer_entries(
                0, np.arange(10), _unit_rows(rng, 10, 12)
            )
        assert cache.quantized_layers() == [0]


# ----------------------------------------------------------------------
# Cache-level tier management
# ----------------------------------------------------------------------


class TestQuantizedTierManagement:
    def _cache(self, **kw):
        rng = np.random.default_rng(7)
        cache = SemanticCache(40, theta=0.03, **kw)
        for layer in range(3):
            cache.set_layer_entries(
                layer, np.arange(30), _unit_rows(rng, 30, 16)
            )
        return cache

    def test_threshold_gates_tier_creation(self):
        assert self._cache().quantized_layers() == []
        assert self._cache(quantize_threshold=31).quantized_layers() == []
        assert self._cache(quantize_threshold=30).quantized_layers() == [0, 1, 2]

    def test_shortlist_layers_unions_accelerators(self):
        both = self._cache(prune_threshold=2, quantize_threshold=2)
        assert both.shortlist_layers() == [0, 1, 2]
        only_q = self._cache(quantize_threshold=2)
        assert only_q.pruned_layers() == []
        assert only_q.shortlist_layers() == [0, 1, 2]

    def test_replace_and_remove_refresh_tier(self):
        cache = self._cache(quantize_threshold=2)
        before = cache.quantized_tier(1)
        rng = np.random.default_rng(11)
        cache.set_layer_entries(1, np.arange(25), _unit_rows(rng, 25, 16))
        after = cache.quantized_tier(1)
        assert after is not None and after.codes.shape == (25, 16)
        assert before is not after
        cache.set_layer_entries(1, np.asarray([], dtype=int), np.empty((0, 16)))
        assert cache.quantized_tier(1) is None
        assert cache.quantized_layers() == [0, 2]

    def test_clear_drops_tiers(self):
        cache = self._cache(quantize_threshold=2)
        cache.clear()
        assert cache.quantized_layers() == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="quantize_threshold"):
            SemanticCache(4, quantize_threshold=1)
        with pytest.raises(ValueError, match="coarse_margin"):
            SemanticCache(4, coarse_margin=-0.1)
        with pytest.raises(ValueError, match="probe_threads"):
            SemanticCache(4, probe_threads=0)
        with pytest.raises(ValueError, match="quantize_dtype"):
            SemanticCache(4, quantize_threshold=2, quantize_dtype=np.int32)

    def test_set_probe_threads(self):
        cache = self._cache()
        cache.set_probe_threads(3)
        assert cache.probe_threads == 3
        with pytest.raises(ValueError):
            cache.set_probe_threads(0)


# ----------------------------------------------------------------------
# Two-tier probe behaviour
# ----------------------------------------------------------------------


def _scenario(seed=13, classes=300, entries=256, dim=24, batch=16, layers=3):
    """Correlated per-layer geometry (shared class directions) so the
    deepest layer's candidates track the shallow layers' top-2."""
    rng = np.random.default_rng(seed)
    dirs = _unit_rows(rng, classes, dim)
    ids = np.sort(rng.choice(classes, size=entries, replace=False))
    mats = []
    for _ in range(layers):
        m = 0.9 * dirs[ids] + 0.1 * _unit_rows(rng, entries, dim)
        mats.append(m / np.linalg.norm(m, axis=1, keepdims=True))
    pick = rng.integers(entries, size=batch)
    queries = np.empty((batch, layers, dim), dtype=np.float32)
    for layer in range(layers):
        q = mats[layer][pick] + 0.1 * rng.standard_normal((batch, dim))
        queries[:, layer, :] = q / np.linalg.norm(q, axis=1, keepdims=True)
    return ids, mats, queries


def _build(ids, mats, classes=300, **kw):
    cache = SemanticCache(classes, theta=0.05, **kw)
    for layer, m in enumerate(mats):
        cache.set_layer_entries(layer, ids, m)
    return cache


def _probe_all(cache, queries, workspace=None, prime=True):
    batch, layers = queries.shape[0], queries.shape[1]
    session = cache.start_batch_session(batch, workspace=workspace)
    if prime and cache.shortlist_layers():
        deepest = cache.shortlist_layers()[-1]
        session.prime_shortlist(deepest, queries[:, deepest, :])
    out = []
    for layer in range(layers):
        out.append(session.probe(layer, queries[:, layer, :]))
    return session, out


class TestTwoTierProbe:
    def test_candidates_pinned_and_decisions_match_dense(self):
        ids, mats, queries = _scenario()
        dense = _build(ids, mats)
        twotier = _build(ids, mats, quantize_threshold=2, coarse_margin=0.1)
        ws = LookupWorkspace()
        _, dense_probes = _probe_all(dense, queries, ws)
        session, tier_probes = _probe_all(twotier, queries, ws)
        assert session._candidates is not None
        assert 2 <= session._candidates.size < ids.size
        for a, b in zip(dense_probes, tier_probes):
            assert np.array_equal(a.top_class, b.top_class)
            assert np.array_equal(a.hit, b.hit)

    def test_rescore_equals_dense_restricted_to_candidates(self):
        """The exact-re-score leg: with the candidate set pinned, the
        two-tier probe IS the dense kernel on the candidate columns."""
        ids, mats, queries = _scenario(seed=29)
        twotier = _build(ids, mats, quantize_threshold=2, coarse_margin=0.1)
        ws = LookupWorkspace()
        session, tier_probes = _probe_all(twotier, queries, ws)
        cand = session._candidates
        assert cand is not None
        sub = _build(
            np.asarray(sorted(set(ids) & set(cand.tolist()))),
            [m[np.isin(ids, cand)] for m in mats],
        )
        _, sub_probes = _probe_all(sub, queries, LookupWorkspace())
        for a, b in zip(tier_probes, sub_probes):
            assert np.array_equal(a.top_class, b.top_class)
            assert np.array_equal(a.score, b.score)

    def test_unpinned_candidates_fall_back_to_dense(self):
        """A huge margin keeps every column -> the degenerate guard
        leaves candidates unpinned and probes run dense, bit for bit."""
        ids, mats, queries = _scenario(seed=31)
        dense = _build(ids, mats)
        twotier = _build(ids, mats, quantize_threshold=2, coarse_margin=1e6)
        ws = LookupWorkspace()
        session, tier_probes = _probe_all(twotier, queries, ws)
        assert session._candidates is None
        _, dense_probes = _probe_all(dense, queries, ws)
        for a, b in zip(dense_probes, tier_probes):
            assert np.array_equal(a.score, b.score)
            assert np.array_equal(a.top_class, b.top_class)

    def test_composes_with_lsh_shortlist(self):
        ids, mats, queries = _scenario(seed=37)
        combined = _build(
            ids, mats,
            prune_threshold=2, quantize_threshold=2, coarse_margin=0.1,
        )
        session, _ = _probe_all(combined, queries, LookupWorkspace())
        assert session._shortlist is not None
        assert session._candidates is not None
        # Composition: candidates only ever come from the LSH shortlist.
        assert set(session._candidates.tolist()) <= set(
            session._shortlist.tolist()
        )

    def test_scalar_session_two_tier(self):
        ids, mats, queries = _scenario(seed=41)
        dense = _build(ids, mats)
        twotier = _build(ids, mats, quantize_threshold=2, coarse_margin=0.1)
        for row in range(6):
            s_dense = dense.start_session()
            s_tier = twotier.start_session()
            deepest = twotier.shortlist_layers()[-1]
            s_tier.prime_shortlist(deepest, queries[row, deepest, :])
            for layer in range(queries.shape[1]):
                a = s_dense.probe(layer, queries[row, layer, :])
                b = s_tier.probe(layer, queries[row, layer, :])
                assert a.top_class == b.top_class
                assert a.hit == b.hit

    def test_timings_record_shortlist_rescore_split(self):
        ids, mats, queries = _scenario(seed=43)
        twotier = _build(ids, mats, quantize_threshold=2, coarse_margin=0.1)
        session = twotier.start_batch_session(queries.shape[0])
        session.timings = {}
        deepest = twotier.shortlist_layers()[-1]
        session.prime_shortlist(deepest, queries[:, deepest, :])
        for layer in range(queries.shape[1]):
            session.probe(layer, queries[:, layer, :])
        assert session.timings["shortlist"] > 0
        assert session.timings["rescore"] > 0


# ----------------------------------------------------------------------
# Thread-blocked execution
# ----------------------------------------------------------------------


class TestThreadedProbe:
    @pytest.mark.parametrize("threads", [2, 3, 8])
    def test_bit_identical_to_single_thread(self, threads):
        ids, mats, queries = _scenario(batch=64)
        single = _build(ids, mats)
        multi = _build(ids, mats, probe_threads=threads)
        ws_s, ws_m = LookupWorkspace(), LookupWorkspace()
        _, probes_s = _probe_all(single, queries, ws_s)
        _, probes_m = _probe_all(multi, queries, ws_m)
        for a, b in zip(probes_s, probes_m):
            assert np.array_equal(a.top_class, b.top_class)
            assert np.array_equal(a.second_class, b.second_class)
            assert np.array_equal(a.score, b.score)
            assert np.array_equal(a.hit, b.hit)

    def test_threaded_two_tier_bit_identical(self):
        ids, mats, queries = _scenario(batch=64)
        kw = dict(
            prune_threshold=2, quantize_threshold=2, coarse_margin=0.1
        )
        single = _build(ids, mats, **kw)
        multi = _build(ids, mats, probe_threads=2, **kw)
        _, probes_s = _probe_all(single, queries, LookupWorkspace())
        _, probes_m = _probe_all(multi, queries, LookupWorkspace())
        for a, b in zip(probes_s, probes_m):
            assert np.array_equal(a.score, b.score)
            assert np.array_equal(a.hit, b.hit)

    def test_small_batches_stay_single_threaded(self):
        """Below _MIN_BLOCK_ROWS per block there is nothing to split:
        the kernel must not pay pool dispatch for tiny batches."""
        ids, mats, queries = _scenario(batch=8)
        multi = _build(ids, mats, probe_threads=4)
        ws = LookupWorkspace()
        _, probes = _probe_all(multi, queries, ws)
        assert ws._executor is None  # pool never spun up
        assert probes[0].score.shape == (8,)

    def test_accumulation_correct_across_threads(self):
        """Eq. 1 accumulation must survive thread-blocked folding: the
        final accumulated values equal the straightforward recurrence."""
        ids, mats, queries = _scenario(batch=64)
        multi = _build(ids, mats, probe_threads=4)
        session, _ = _probe_all(multi, queries, LookupWorkspace())
        expect = np.zeros((64, ids.size))
        for layer, m in enumerate(mats):
            sims = queries[:, layer, :].astype(np.float32) @ np.ascontiguousarray(
                m, dtype=np.float32
            ).T
            expect = sims + 0.5 * expect
        got = np.stack(
            [
                [session.accumulated_score(r, int(c)) for c in ids]
                for r in range(64)
            ]
        )
        assert np.allclose(got, expect, atol=1e-5)


# ----------------------------------------------------------------------
# Workspace thread-safety contract
# ----------------------------------------------------------------------


class TestWorkspaceThreadSlices:
    def test_children_are_persistent_and_disjoint(self):
        ws = LookupWorkspace()
        child0 = ws.for_thread(0)
        child1 = ws.for_thread(1)
        assert child0 is ws.for_thread(0)  # persistent across probes
        assert child0 is not child1
        a = child0.floats("x", (8,), np.float32)
        b = child1.floats("x", (8,), np.float32)
        assert not np.shares_memory(a, b)

    def test_dtype_switch_never_reuses_stale_width(self):
        """The (name, dtype) pool key regression: switching a pool's
        dtype mid-session must hand back a fresh correctly-typed buffer,
        not a reinterpreted view of the old one."""
        ws = LookupWorkspace()
        f64 = ws.floats("sim", (4, 4), np.float64)
        f64.fill(7.0)
        f32 = ws.floats("sim", (4, 4), np.float32)
        assert f32.dtype == np.float32
        assert not np.shares_memory(f64, f32)
        assert np.all(ws.floats("sim", (4, 4), np.float64) == 7.0)
        i8 = ws.floats("sim", (4, 4), np.int8)
        assert i8.dtype == np.int8 and i8.size == 16

    def test_executor_grows_monotonically(self):
        ws = LookupWorkspace()
        pool2 = ws.executor(2)
        assert ws.executor(1) is pool2  # never shrinks
        pool4 = ws.executor(4)
        assert pool4 is not pool2
        assert ws._executor_workers == 4
