"""Integration tests for the similarity-floor hit criterion.

The floor is the robustness mechanism that keeps samples of *uncached*
classes from erroneously hitting whichever cached entry happens to be
nearest (DESIGN.md, implementation decision 5).  These tests verify the
calibration produces sensible floors and that erroneous absent-class hits
are rare end-to-end.
"""

import numpy as np
import pytest

from repro.core.cache import SemanticCache
from repro.core.config import CoCaConfig
from repro.core.engine import CachedInferenceEngine
from repro.core.server import CoCaServer
from repro.data.datasets import get_dataset
from repro.data.stream import StreamGenerator
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def calibrated():
    dataset = get_dataset("ucf101", 30)
    model = build_model("resnet101", dataset, seed=9)
    server = CoCaServer(model, CoCaConfig(theta=0.05))
    server.initialize_from_shared_dataset(
        np.random.default_rng(2), calibration_samples=400
    )
    return dataset, model, server


class TestFloorCalibration:
    def test_floors_are_valid_cosines(self, calibrated):
        _, model, server = calibrated
        floors = server.reference_similarity_floor
        assert floors.shape == (model.num_cache_layers,)
        assert np.all(floors >= -1.0)
        assert np.all(floors <= 1.0)
        # Deep layers have tighter clusters => higher floors.
        assert floors[-1] > floors[0]

    def test_built_caches_carry_floors(self, calibrated):
        _, model, server = calibrated
        cache = server.build_cache({5: np.arange(10)})
        assert cache.similarity_floor(5) == pytest.approx(
            float(server.reference_similarity_floor[5])
        )

    def test_true_class_samples_clear_the_floor(self, calibrated):
        """Easy cached-class samples still hit with floors active."""
        dataset, model, server = calibrated
        cache = server.build_cache(
            {j: np.arange(model.num_classes) for j in (5, 10, 15, 20)}
        )
        engine = CachedInferenceEngine(model, cache)
        rng = np.random.default_rng(4)
        stream = StreamGenerator(
            np.full(30, 1 / 30), dataset.mean_run_length, rng,
            base_difficulty=dataset.difficulty,
        )
        hits = 0
        for frame in stream.take(300):
            sample = model.draw_sample(frame, 0, rng)
            if engine.infer(sample).hit:
                hits += 1
        assert hits > 100  # floors must not suffocate legitimate hits

    def test_absent_class_samples_rarely_hit(self, calibrated):
        """Samples of uncached classes fall through to the model."""
        dataset, model, server = calibrated
        cached = np.arange(20)  # classes 20-29 absent
        cache = server.build_cache({j: cached for j in (5, 10, 15, 20)})
        engine = CachedInferenceEngine(model, cache)
        rng = np.random.default_rng(6)
        absent_only = np.r_[np.zeros(20), np.full(10, 1 / 10)]
        stream = StreamGenerator(
            absent_only, dataset.mean_run_length, rng,
            base_difficulty=dataset.difficulty,
        )
        erroneous = 0
        total = 300
        for frame in stream.take(total):
            sample = model.draw_sample(frame, 0, rng)
            outcome = engine.infer(sample)
            if outcome.hit and sample.confusion_weight < 0.5:
                erroneous += 1
        assert erroneous / total < 0.08

    def test_floor_reduces_erroneous_hits(self, calibrated):
        """Same partial cache, floors on vs off: floors cut absent-class
        erroneous hits."""
        dataset, model, server = calibrated
        cached = np.arange(20)
        layers = (5, 10, 15, 20)

        def erroneous_count(with_floor: bool) -> int:
            cache = SemanticCache(model.num_classes, theta=0.05)
            for j in layers:
                cache.set_layer_entries(
                    j, cached, server.table.entries[cached, j]
                )
                if with_floor:
                    cache.set_similarity_floor(
                        j, float(server.reference_similarity_floor[j])
                    )
            engine = CachedInferenceEngine(model, cache)
            rng = np.random.default_rng(11)
            absent_only = np.r_[np.zeros(20), np.full(10, 1 / 10)]
            stream = StreamGenerator(
                absent_only, dataset.mean_run_length, rng,
                base_difficulty=dataset.difficulty,
            )
            count = 0
            for frame in stream.take(250):
                sample = model.draw_sample(frame, 0, rng)
                if engine.infer(sample).hit:
                    count += 1
            return count

        assert erroneous_count(True) <= erroneous_count(False)
