"""Tests for the extension features: temporal drift, client dropout,
global-cache persistence, and the design-ablation drivers."""

import numpy as np
import pytest

from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.core.server import CoCaServer
from repro.data.datasets import get_dataset
from repro.experiments import (
    Scenario,
    run_alpha_ablation,
    run_hotspot_mass_ablation,
    run_local_blend_ablation,
    run_update_weighting_ablation,
    format_design_points,
)


@pytest.fixture(scope="module")
def dataset():
    return get_dataset("ucf101", 20)


@pytest.fixture(scope="module")
def config():
    return CoCaConfig(theta=0.05, frames_per_round=60)


class TestTemporalDrift:
    def test_evolve_moves_client_centroids(self, tiny_model, rng):
        space = tiny_model.feature_space
        # Enable drift on a copy of the config via direct evolution: with
        # zero drift scale, evolve is a no-op by contract.
        before = space.client_centroid(0, 0, 2).copy()
        space.evolve_drift(0.5, rng)
        after = space.client_centroid(0, 0, 2)
        if space.config.client_drift_scale == 0:
            assert np.allclose(before, after)
        else:
            assert not np.allclose(before, after)

    def test_evolve_changes_drifted_space(self, tiny_dataset, rng):
        from repro.models.base import SimulatedModel
        from repro.models.feature import FeatureSpaceConfig
        from repro.models.profiles import build_profile

        model = SimulatedModel(
            name="tiny-drift",
            dataset=tiny_dataset,
            profile=build_profile(10.0, 4, [8] * 4),
            feature_config=FeatureSpaceConfig(dim=16, client_drift_scale=0.3),
            num_clients=2,
            seed=3,
        )
        space = model.feature_space
        before = space.client_centroid(1, 2, 1).copy()
        space.evolve_drift(0.4, rng)
        after = space.client_centroid(1, 2, 1)
        assert not np.allclose(before, after)
        # Ideal (undrifted) centroids are untouched.
        assert np.allclose(space.centroid(2, 1), model.ideal_centroids(1)[2])

    def test_evolve_validates_magnitude(self, tiny_model, rng):
        with pytest.raises(ValueError):
            tiny_model.feature_space.evolve_drift(-0.1, rng)

    def test_framework_applies_drift_per_round(self, dataset, config):
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=2,
            config=config,
            seed=4,
            non_iid_level=1.0,
            temporal_drift_per_round=0.3,
        )
        space = fw.model.feature_space
        before = space.client_centroid(0, 0, 5).copy()
        fw.run_round(0)
        after = space.client_centroid(0, 0, 5)
        assert not np.allclose(before, after)

    def test_framework_rejects_negative_drift(self, dataset, config):
        with pytest.raises(ValueError):
            CoCaFramework(
                dataset,
                model_name="resnet50",
                num_clients=2,
                config=config,
                seed=4,
                temporal_drift_per_round=-1.0,
            )


class TestClientDropout:
    def test_partial_participation_produces_fewer_reports(self, dataset, config):
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=6,
            config=config,
            seed=4,
            non_iid_level=1.0,
            participation_rate=0.5,
        )
        counts = [len(fw.run_round(r)) for r in range(4)]
        assert all(1 <= c <= 6 for c in counts)
        assert any(c < 6 for c in counts)

    def test_full_participation_by_default(self, dataset, config):
        fw = CoCaFramework(
            dataset, model_name="resnet50", num_clients=3, config=config, seed=4
        )
        assert len(fw.run_round(0)) == 3

    def test_protocol_survives_dropout(self, dataset, config):
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=4,
            config=config,
            seed=9,
            non_iid_level=1.0,
            participation_rate=0.6,
        )
        result = fw.run(3)
        summary = result.summary()
        assert summary.num_samples > 0
        assert summary.avg_latency_ms < fw.model.total_compute_ms

    def test_participation_rate_validated(self, dataset, config):
        with pytest.raises(ValueError):
            CoCaFramework(
                dataset,
                model_name="resnet50",
                num_clients=2,
                config=config,
                participation_rate=0.0,
            )


class TestTablePersistence:
    def test_save_load_roundtrip(self, tiny_model, rng, tmp_path, config):
        server = CoCaServer(tiny_model, config)
        server.initialize_from_shared_dataset(rng, calibration_samples=100)
        server.table.class_freq[3] = 123.0
        path = tmp_path / "table.npz"
        server.save_table(path)

        other = CoCaServer(tiny_model, config)
        other.load_table(path)
        assert np.allclose(other.table.entries, server.table.entries)
        assert np.array_equal(other.table.filled, server.table.filled)
        assert other.table.class_freq[3] == 123.0
        assert np.allclose(other.reference_hit_ratio, server.reference_hit_ratio)

    def test_load_rejects_shape_mismatch(self, tiny_model, rng, tmp_path, config):
        server = CoCaServer(tiny_model, config)
        server.initialize_from_shared_dataset(rng, calibration_samples=100)
        path = tmp_path / "table.npz"
        server.save_table(path)

        from repro.models.base import SimulatedModel
        from repro.models.feature import FeatureSpaceConfig
        from repro.models.profiles import build_profile

        other_model = SimulatedModel(
            name="other",
            dataset=tiny_model.dataset,
            profile=build_profile(10.0, 3, [8] * 3),  # different layer count
            feature_config=FeatureSpaceConfig(dim=16),
            seed=1,
        )
        other = CoCaServer(other_model, config)
        with pytest.raises(ValueError):
            other.load_table(path)

    def test_load_rejects_corrupt_auxiliary_arrays(
        self, tiny_model, rng, tmp_path, config
    ):
        """Every array is validated, not only ``entries``: a mismatched
        filled/class_freq/reference archive names the offending key."""
        server = CoCaServer(tiny_model, config)
        server.initialize_from_shared_dataset(rng, calibration_samples=100)
        good = tmp_path / "table.npz"
        server.save_table(good)
        archive = dict(np.load(good))

        corruptions = {
            "filled": archive["filled"][:, :-1],  # wrong shape
            "class_freq": archive["class_freq"].astype(int),  # wrong dtype
            "reference_hit_ratio": archive["reference_hit_ratio"][:-1],
            "reference_exit_loss": archive["reference_exit_loss"].astype(bool),
        }
        for key, bad_value in corruptions.items():
            bad = dict(archive)
            bad[key] = bad_value
            path = tmp_path / f"bad_{key}.npz"
            np.savez_compressed(path, **bad)
            fresh = CoCaServer(tiny_model, config)
            with pytest.raises(ValueError, match=key):
                fresh.load_table(path)
            # Failed loads must not half-mutate server state.
            assert not fresh.table.filled.any()

    def test_load_rejects_missing_array(self, tiny_model, rng, tmp_path, config):
        server = CoCaServer(tiny_model, config)
        server.initialize_from_shared_dataset(rng, calibration_samples=100)
        good = tmp_path / "table.npz"
        server.save_table(good)
        archive = dict(np.load(good))
        del archive["filled"]
        path = tmp_path / "missing.npz"
        np.savez_compressed(path, **archive)
        fresh = CoCaServer(tiny_model, config)
        with pytest.raises(ValueError, match="filled"):
            fresh.load_table(path)

    def test_warm_started_server_allocates(self, tiny_model, rng, tmp_path, config):
        server = CoCaServer(tiny_model, config)
        server.initialize_from_shared_dataset(rng, calibration_samples=100)
        path = tmp_path / "table.npz"
        server.save_table(path)

        warm = CoCaServer(tiny_model, config)
        warm.load_table(path)
        cache, result = warm.allocate(
            timestamps=np.zeros(8),
            hit_ratio=warm.reference_hit_ratio,
            budget_bytes=500,
        )
        assert result.size_bytes <= 500


class TestDesignAblations:
    @pytest.fixture(scope="class")
    def scenario(self, ):
        return Scenario(
            dataset=get_dataset("ucf101", 20),
            model_name="resnet50",
            num_clients=2,
            non_iid_level=1.0,
            seed=55,
        )

    def test_alpha_ablation_runs_all_points(self, scenario):
        points = run_alpha_ablation(scenario, alphas=(0.0, 0.5), rounds=1, warmup=0)
        assert [p.value for p in points] == ["0", "0.5"]
        assert all(p.latency_ms > 0 for p in points)

    def test_hotspot_mass_widens_cache(self, scenario):
        # A single measured round is dominated by allocation noise at
        # this scale (2 clients); three rounds make the relationship
        # observable.
        points = run_hotspot_mass_ablation(
            scenario, masses=(0.80, 0.999), rounds=3, warmup=1
        )
        # Near-total mass caches more classes => hit ratio at least as high.
        assert points[1].hit_ratio_pct >= points[0].hit_ratio_pct - 5.0

    def test_local_blend_variants_run(self, scenario):
        points = run_local_blend_ablation(scenario, rounds=1, warmup=1)
        assert {p.value for p in points} == {"global+local", "global-only"}

    def test_update_weighting_variants_run(self, scenario):
        points = run_update_weighting_ablation(scenario, rounds=2, warmup=0)
        assert len(points) == 2
        table = format_design_points(points, "design ablation")
        assert "eq4_weighting" in table


class TestHeterogeneousBudgets:
    def test_per_client_budgets_respected(self, dataset, config):
        """Clients may have different cache-size thresholds Pi; the server
        personalizes each allocation to the requester's budget."""
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=3,
            config=config,
            seed=12,
            non_iid_level=1.0,
        )
        budgets = [5_000, 50_000, 500_000]
        for client, budget in zip(fw.clients, budgets):
            client.cache_budget_bytes = budget
        fw.run_round(0)
        sizes = []
        for client in fw.clients:
            cache = client.engine.cache
            size = (
                cache.size_bytes(fw.model.profile.entry_size_bytes)
                if cache is not None
                else 0
            )
            sizes.append(size)
            assert size <= client.cache_budget_bytes
        # Bigger budgets buy bigger caches (weakly monotone).
        assert sizes[0] <= sizes[1] <= sizes[2]
