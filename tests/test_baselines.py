"""Unit + integration tests for the baseline pipelines."""

import numpy as np
import pytest

from repro.baselines import (
    CoCaRunner,
    EdgeOnly,
    FoggyCache,
    LearnedCache,
    ReplacementPolicyCache,
    SMTM,
    top2_gap,
)
from repro.baselines.foggy_cache import LshLruCache
from repro.core.config import CoCaConfig
from repro.data.datasets import get_dataset
from repro.experiments.scenario import Scenario


@pytest.fixture(scope="module")
def small_scenario():
    return Scenario(
        dataset=get_dataset("ucf101", 20),
        model_name="resnet50",
        num_clients=2,
        non_iid_level=1.0,
        seed=21,
    )


def _fresh(scenario, **overrides):
    from dataclasses import replace

    return replace(
        scenario,
        _model=None,
        _distributions=None,
        _client_seeds=None,
        _server_seed=None,
        **overrides,
    )


class TestTop2Gap:
    def test_gap_of_sorted_vector(self):
        assert top2_gap(np.array([0.1, 0.6, 0.3])) == pytest.approx(0.3)

    def test_single_class(self):
        assert top2_gap(np.array([1.0])) == 1.0


class TestEdgeOnly:
    def test_latency_is_constant_full_compute(self, small_scenario):
        runner = EdgeOnly(_fresh(small_scenario), frames_per_round=40)
        metrics = runner.run(1)
        summary = metrics.summary()
        assert summary.avg_latency_ms == pytest.approx(
            runner.model.total_compute_ms
        )
        assert summary.hit_ratio == 0.0
        assert summary.num_samples == 2 * 40

    def test_warmup_rounds_excluded(self, small_scenario):
        runner = EdgeOnly(_fresh(small_scenario), frames_per_round=30)
        metrics = runner.run(1, warmup_rounds=1)
        assert metrics.summary().num_samples == 2 * 30

    def test_invalid_args(self, small_scenario):
        with pytest.raises(ValueError):
            EdgeOnly(_fresh(small_scenario), frames_per_round=0)
        runner = EdgeOnly(_fresh(small_scenario))
        with pytest.raises(ValueError):
            runner.run(0)


class TestLearnedCache:
    def test_exits_reduce_latency(self, small_scenario):
        runner = LearnedCache(_fresh(small_scenario), frames_per_round=60)
        summary = runner.run(1).summary()
        assert summary.hit_ratio > 0.1
        # Early exits skip compute but pay head + retraining overheads.
        assert summary.avg_latency_ms < runner.model.total_compute_ms + 5

    def test_strict_margin_blocks_exits(self, small_scenario):
        runner = LearnedCache(
            _fresh(small_scenario), exit_margin=10.0, frames_per_round=40
        )
        summary = runner.run(1).summary()
        assert summary.hit_ratio == 0.0
        # Pays full compute + per-exit heads + retraining amortization.
        floor = runner.model.total_compute_ms
        assert summary.avg_latency_ms > floor

    def test_exit_layers_skip_shallow_quarter(self, small_scenario):
        runner = LearnedCache(_fresh(small_scenario))
        L = runner.model.num_cache_layers
        assert min(runner.exit_layers) >= L // 4

    def test_validation(self, small_scenario):
        with pytest.raises(ValueError):
            LearnedCache(_fresh(small_scenario), num_exits=0)


class TestFoggyCache:
    def test_reuse_hits_after_warm_cache(self, small_scenario):
        runner = FoggyCache(_fresh(small_scenario), frames_per_round=80)
        summary = runner.run(1, warmup_rounds=1).summary()
        assert summary.hit_ratio > 0.2
        assert summary.avg_latency_ms < runner.model.total_compute_ms

    def test_hits_are_mostly_correct(self, small_scenario):
        runner = FoggyCache(_fresh(small_scenario), frames_per_round=80)
        summary = runner.run(1, warmup_rounds=1).summary()
        assert summary.hit_accuracy > 0.8

    def test_server_cache_fills_after_round(self, small_scenario):
        runner = FoggyCache(_fresh(small_scenario), frames_per_round=50)
        runner.run(1)
        assert len(runner._server) > 0


class TestLshLruCache:
    def test_capacity_enforced(self, rng):
        store = LshLruCache(capacity=5, dim=8, rng=rng)
        for i in range(12):
            vec = np.zeros(8)
            vec[i % 8] = 1.0
            store.insert(vec, i)
        assert len(store) == 5

    def test_lru_eviction_order(self, rng):
        store = LshLruCache(capacity=2, dim=4, rng=rng)
        store.insert(np.eye(4)[0], 0)
        store.insert(np.eye(4)[1], 1)
        store.insert(np.eye(4)[2], 2)  # evicts label 0 (oldest)
        _, labels, _ = store.candidates(np.eye(4)[0])
        assert 0 not in labels

    def test_capacity_validation(self, rng):
        with pytest.raises(ValueError):
            LshLruCache(capacity=0, dim=4, rng=rng)


class TestSMTM:
    def test_caching_reduces_latency(self, small_scenario):
        runner = SMTM(_fresh(small_scenario), frames_per_round=60)
        summary = runner.run(1, warmup_rounds=1).summary()
        assert summary.hit_ratio > 0.3
        assert summary.avg_latency_ms < runner.model.total_compute_ms

    def test_layers_are_static(self, small_scenario):
        runner = SMTM(_fresh(small_scenario), frames_per_round=40)
        layers_before = list(runner.active_layers)
        runner.run(1)
        assert runner.active_layers == layers_before
        for engine in runner._engines:
            assert engine.cache.active_layers == layers_before

    def test_local_adaptation_changes_centroids(self, small_scenario):
        runner = SMTM(_fresh(small_scenario), frames_per_round=80)
        layer = runner.active_layers[0]
        before = runner._centroids[layer].copy()
        runner.run(1)
        assert not np.allclose(runner._centroids[layer], before)

    def test_clients_do_not_share_state(self, small_scenario):
        runner = SMTM(_fresh(small_scenario), frames_per_round=80)
        runner.run(1)
        layer = runner.active_layers[0]
        assert not np.allclose(
            runner._centroids[layer][0], runner._centroids[layer][1]
        )


class TestReplacementPolicies:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "rand"])
    def test_policies_run_and_cache(self, small_scenario, policy):
        runner = ReplacementPolicyCache(
            _fresh(small_scenario), policy=policy, cache_size=10, frames_per_round=50
        )
        summary = runner.run(1).summary()
        assert summary.num_samples == 2 * 50
        assert summary.hit_ratio > 0.0

    def test_resident_set_bounded(self, small_scenario):
        runner = ReplacementPolicyCache(
            _fresh(small_scenario), policy="lru", cache_size=6, frames_per_round=60
        )
        runner.run(1)
        for resident in runner._resident:
            assert len(resident) <= 6

    def test_unknown_policy_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            ReplacementPolicyCache(_fresh(small_scenario), policy="mru")

    def test_memory_accounting(self, small_scenario):
        runner = ReplacementPolicyCache(
            _fresh(small_scenario), policy="fifo", cache_size=10
        )
        expected = 10 * sum(
            runner.model.profile.entry_size_bytes(j) for j in runner.active_layers
        )
        assert runner.memory_bytes() == expected


class TestCoCaRunner:
    def test_runs_under_common_interface(self, small_scenario):
        runner = CoCaRunner(
            _fresh(small_scenario), config=CoCaConfig(theta=0.05, frames_per_round=60)
        )
        summary = runner.run(1, warmup_rounds=1).summary()
        assert summary.num_samples == 2 * 60
        assert summary.avg_latency_ms < runner.model.total_compute_ms

    def test_budget_override(self, small_scenario):
        runner = CoCaRunner(
            _fresh(small_scenario),
            config=CoCaConfig(theta=0.05, frames_per_round=40),
            budget_bytes=12345,
        )
        assert all(
            c.cache_budget_bytes == 12345 for c in runner.framework.clients
        )


class TestFairComparison:
    def test_all_methods_see_identical_model(self, small_scenario):
        """Same scenario seed => same feature geometry for every method."""
        edge = EdgeOnly(_fresh(small_scenario))
        smtm = SMTM(_fresh(small_scenario))
        a = edge.model.ideal_centroids(3)
        b = smtm.model.ideal_centroids(3)
        assert np.allclose(a, b)
