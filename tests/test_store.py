"""Tests for the mmap snapshot store (:mod:`repro.store`).

Covers the on-disk format (round-trips, epoch monotonicity, corrupt and
truncated shards), the lazy reader (read-only zero-copy views), the
copy-on-write mapped table, serving caches backed by mapped views, the
delta codec and its full-snapshot fallback, the server integration for
both persistence formats, and the ``repro store`` CLI.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import contracts
from repro.cli import main as cli_main
from repro.contracts import ContractViolation
from repro.core.cache import SemanticCache
from repro.core.config import CoCaConfig, StoreConfig
from repro.core.server import CoCaServer, GlobalCacheTable
from repro.data.datasets import get_dataset
from repro.models.zoo import build_model
from repro.store import (
    MappedGlobalCacheTable,
    MappedTableStore,
    SnapshotDelta,
    SnapshotFormatError,
    SnapshotIntegrityError,
    diff_tables,
    full_rows_nbytes,
    is_snapshot_path,
    load_delta,
    read_manifest,
    write_snapshot,
)


def unit_rows(shape: tuple[int, ...], seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal(shape)
    return rows / np.linalg.norm(rows, axis=-1, keepdims=True)


def filled_table(
    num_classes: int = 24, num_layers: int = 10, dim: int = 8, seed: int = 0
) -> GlobalCacheTable:
    table = GlobalCacheTable(num_classes, num_layers, dim)
    table.entries = unit_rows((num_classes, num_layers, dim), seed=seed)
    table.filled[:] = True
    rng = np.random.default_rng(seed + 1)
    table.class_freq = rng.integers(1, 9, size=num_classes).astype(float)
    return table


def tables_equal(a: GlobalCacheTable, b: GlobalCacheTable) -> bool:
    return (
        np.array_equal(a.entries, b.entries)
        and np.array_equal(a.filled, b.filled)
        and np.array_equal(a.class_freq, b.class_freq)
    )


# ----------------------------------------------------------------------
# Format round-trips
# ----------------------------------------------------------------------


class TestSnapshotRoundtrip:
    def test_roundtrip_is_bit_exact(self, tmp_path):
        table = filled_table()
        manifest = write_snapshot(tmp_path / "snap", table, epoch=3)
        assert manifest.epoch == 3
        with MappedTableStore(tmp_path / "snap") as store:
            assert store.epoch == 3
            assert tables_equal(store.as_table(), table)

    def test_partial_fill_roundtrip(self, tmp_path):
        table = filled_table()
        table.filled[5:] = False
        write_snapshot(tmp_path / "snap", table)
        with MappedTableStore(tmp_path / "snap") as store:
            restored = store.as_table()
        assert np.array_equal(restored.filled, table.filled)
        assert np.array_equal(restored.entries, table.entries)

    def test_references_roundtrip(self, tmp_path):
        table = filled_table(num_layers=4)
        refs = {"reference_hit_ratio": np.array([0.1, 0.2, 0.3, 0.4])}
        write_snapshot(tmp_path / "snap", table, references=refs)
        with MappedTableStore(tmp_path / "snap") as store:
            out = store.references()
        assert np.array_equal(out["reference_hit_ratio"],
                              refs["reference_hit_ratio"])

    def test_snapshot_path_detection(self, tmp_path):
        table = filled_table()
        assert not is_snapshot_path(tmp_path / "snap")
        write_snapshot(tmp_path / "snap", table)
        assert is_snapshot_path(tmp_path / "snap")
        assert not is_snapshot_path(tmp_path / "missing")

    def test_float32_snapshot_roundtrip(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table, dtype="float32")
        with MappedTableStore(tmp_path / "snap") as store:
            assert store.dtype == np.dtype(np.float32)
            view = store.layer_view(0)
            assert view.dtype == np.dtype(np.float32)
            assert np.allclose(view, table.entries[:, 0, :], atol=1e-6)
            with pytest.raises(ValueError, match="float64"):
                store.as_mapped_table()

    def test_layers_per_shard_controls_file_count(self, tmp_path):
        table = filled_table(num_layers=10)
        manifest = write_snapshot(
            tmp_path / "snap", table, layers_per_shard=4
        )
        assert [s.num_layers for s in manifest.shards] == [4, 4, 2]
        with MappedTableStore(tmp_path / "snap") as store:
            assert tables_equal(store.as_table(), table)

    def test_rewrite_unlinks_stale_shards(self, tmp_path):
        table = filled_table(num_layers=10)
        write_snapshot(tmp_path / "snap", table, layers_per_shard=1)
        assert len(list((tmp_path / "snap").glob("entries-*.npy"))) == 10
        write_snapshot(tmp_path / "snap", table, layers_per_shard=8)
        assert len(list((tmp_path / "snap").glob("entries-*.npy"))) == 2

    def test_epoch_must_be_monotonic(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table, epoch=5)
        with pytest.raises(ValueError, match="monotonic"):
            write_snapshot(tmp_path / "snap", table, epoch=5)
        with pytest.raises(ValueError, match="monotonic"):
            write_snapshot(tmp_path / "snap", table, epoch=4)
        assert write_snapshot(tmp_path / "snap", table, epoch=6).epoch == 6
        # Default: auto-increment past whatever is on disk.
        assert write_snapshot(tmp_path / "snap", table).epoch == 7


# ----------------------------------------------------------------------
# Reader: laziness, zero-copy views, integrity
# ----------------------------------------------------------------------


class TestMappedTableStore:
    def test_views_are_read_only_and_zero_copy(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table)
        store = MappedTableStore(tmp_path / "snap")
        view = store.layer_view(3)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        # Same mapped storage on every access — no per-call copies.
        assert np.shares_memory(view, store.layer_view(3))
        assert np.array_equal(view, table.entries[:, 3, :])

    def test_shards_open_lazily(self, tmp_path):
        if contracts.ENABLED:
            pytest.skip(
                "a contracts-armed open verifies checksums, which maps "
                "every shard up front by design"
            )
        table = filled_table(num_layers=10)
        write_snapshot(tmp_path / "snap", table, layers_per_shard=2)
        store = MappedTableStore(tmp_path / "snap")
        assert all(s is None for s in store._shards)
        store.layer_view(5)
        assert [s is not None for s in store._shards] == [
            False, False, True, False, False
        ]

    def test_cache_entries_zero_copy_when_fully_filled(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table)
        store = MappedTableStore(tmp_path / "snap")
        ids, mat = store.cache_entries(1)
        assert np.array_equal(ids, np.arange(table.num_classes))
        assert np.shares_memory(mat, store.layer_view(1))

    def test_cache_entries_gathers_partial_fill(self, tmp_path):
        table = filled_table()
        table.filled[10:, 1] = False
        write_snapshot(tmp_path / "snap", table)
        store = MappedTableStore(tmp_path / "snap")
        ids, mat = store.cache_entries(1)
        assert np.array_equal(ids, np.arange(10))
        assert not np.shares_memory(mat, store.layer_view(1))
        assert np.array_equal(mat, table.entries[:10, 1, :])

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "snap").mkdir()
        with pytest.raises(SnapshotFormatError, match="manifest"):
            read_manifest(tmp_path / "snap")
        with pytest.raises(SnapshotFormatError):
            MappedTableStore(tmp_path / "snap")

    def test_truncated_shard_raises_integrity_error(self, tmp_path):
        table = filled_table()
        manifest = write_snapshot(tmp_path / "snap", table)
        shard_file = tmp_path / "snap" / manifest.shards[0].file
        shard_file.write_bytes(shard_file.read_bytes()[:40])
        # Under contracts the open itself verifies checksums and trips;
        # otherwise the first mapped access does.  Same exception either way.
        with pytest.raises(SnapshotIntegrityError, match="truncated|corrupt"):
            MappedTableStore(tmp_path / "snap").layer_view(0)

    def test_wrong_shape_shard_raises_integrity_error(self, tmp_path):
        table = filled_table()
        manifest = write_snapshot(tmp_path / "snap", table)
        np.save(
            tmp_path / "snap" / manifest.shards[0].file,
            np.zeros((2, 2), dtype=np.float64),
        )
        with pytest.raises(SnapshotIntegrityError, match="shape"):
            MappedTableStore(tmp_path / "snap").layer_view(0)

    def test_checksum_mismatch_detected(self, tmp_path):
        table = filled_table()
        manifest = write_snapshot(tmp_path / "snap", table)
        shard_file = tmp_path / "snap" / manifest.shards[0].file
        raw = bytearray(shard_file.read_bytes())
        raw[-1] ^= 0xFF  # flip payload bits, keep the size
        shard_file.write_bytes(bytes(raw))
        # A contracts-armed open trips ContractViolation at construction;
        # a plain open defers to verify_checksums().  Both say "checksum".
        with pytest.raises(
            (SnapshotIntegrityError, ContractViolation), match="checksum"
        ):
            MappedTableStore(tmp_path / "snap").verify_checksums()
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            MappedTableStore(tmp_path / "snap", verify=True)

    def test_verify_passes_on_intact_snapshot(self, tmp_path):
        write_snapshot(tmp_path / "snap", filled_table())
        MappedTableStore(tmp_path / "snap", verify=True).verify_checksums()


# ----------------------------------------------------------------------
# Copy-on-write mapped table
# ----------------------------------------------------------------------


class TestMappedGlobalCacheTable:
    def _mapped(self, tmp_path, table) -> MappedGlobalCacheTable:
        write_snapshot(tmp_path / "snap", table)
        return MappedTableStore(tmp_path / "snap").as_mapped_table()

    def test_reads_are_mapped_until_written(self, tmp_path):
        table = filled_table()
        mapped = self._mapped(tmp_path, table)
        assert mapped.promoted_layers() == []
        assert not mapped.is_materialized
        view = mapped.layer_entries(2)
        assert not view.flags.writeable
        assert np.shares_memory(view, mapped._store.layer_view(2))

    def test_merge_promotes_only_touched_layers(self, tmp_path):
        table = filled_table()
        mapped = self._mapped(tmp_path, table)
        reference = table.copy()
        ids = np.array([1, 4, 7])
        layers = np.array([2, 2, 5])
        vectors = unit_rows((3, table.dim), seed=9)
        freqs = np.array([2.0, 1.0, 3.0])
        mapped.merge_updates(ids, layers, vectors, freqs, gamma=0.99)
        reference.merge_updates(ids, layers, vectors, freqs, gamma=0.99)
        assert mapped.promoted_layers() == [2, 5]
        # Bit-identical to the flat single-table scatter.
        for layer in range(table.num_layers):
            assert np.array_equal(
                mapped.layer_entries(layer), reference.entries[:, layer, :]
            ), f"layer {layer}"
        assert np.array_equal(mapped.filled, reference.filled)
        # Untouched layers still read from the mapped shards.
        assert np.shares_memory(
            mapped.layer_entries(0), mapped._store.layer_view(0)
        )

    def test_install_promotes_layer(self, tmp_path):
        table = filled_table()
        mapped = self._mapped(tmp_path, table)
        vector = unit_rows((table.dim,), seed=5)
        mapped.install(3, 1, vector)
        assert mapped.promoted_layers() == [1]
        assert np.allclose(mapped.layer_entries(1)[3], vector)

    def test_entries_property_materializes_once(self, tmp_path):
        table = filled_table()
        mapped = self._mapped(tmp_path, table)
        full = mapped.entries
        assert mapped.is_materialized
        assert np.array_equal(full, table.entries)
        assert mapped.entries is full  # no second materialization

    def test_copy_is_plain_and_does_not_materialize(self, tmp_path):
        table = filled_table()
        mapped = self._mapped(tmp_path, table)
        clone = mapped.copy()
        assert type(clone) is GlobalCacheTable
        assert tables_equal(clone, table)
        assert not mapped.is_materialized

    def test_subtable_reads_through_views(self, tmp_path):
        table = filled_table()
        mapped = self._mapped(tmp_path, table)
        out = mapped.subtable({2: np.array([0, 3, 6])})
        ids, mat = out[2]
        assert np.array_equal(ids, [0, 3, 6])
        assert np.array_equal(mat, table.entries[[0, 3, 6], 2, :])
        assert not mapped.is_materialized


# ----------------------------------------------------------------------
# Serving caches over mapped views
# ----------------------------------------------------------------------


class TestMappedServing:
    def test_serving_cache_layers_are_view_backed(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table)
        store = MappedTableStore(tmp_path / "snap")
        cache = store.serving_cache(alpha=0.5, theta=0.05)
        assert cache.dtype == np.dtype(np.float64)
        assert cache.view_backed_layers() == list(range(table.num_layers))
        _, mat = cache._layers[4]
        assert not mat.flags.writeable
        assert np.shares_memory(mat, store.layer_view(4))

    def test_set_layer_entries_promotes_view_to_ram(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table)
        store = MappedTableStore(tmp_path / "snap")
        cache = store.serving_cache()
        ids, _ = store.cache_entries(2)
        cache.set_layer_entries(2, ids, unit_rows((ids.size, store.dim)))
        assert not cache.is_view_backed(2)
        _, mat = cache._layers[2]
        assert mat.flags.writeable
        assert not np.shares_memory(mat, store.layer_view(2))
        assert cache.view_backed_layers() == [
            j for j in range(table.num_layers) if j != 2
        ]

    def test_view_backed_lookups_match_owned_storage(self, tmp_path):
        table = filled_table()
        write_snapshot(tmp_path / "snap", table)
        store = MappedTableStore(tmp_path / "snap")
        mapped_cache = store.serving_cache(alpha=0.5, theta=0.05)
        owned_cache = SemanticCache(
            table.num_classes, alpha=0.5, theta=0.05, dtype=np.float64
        )
        for layer in range(table.num_layers):
            ids = np.arange(table.num_classes)
            owned_cache.set_layer_entries(
                layer, ids, table.entries[:, layer, :]
            )
        # set_layer_entries re-normalizes (a no-op up to rounding on the
        # already-unit snapshot rows); the view path stores bytes as-is.
        assert mapped_cache.content_equal(owned_cache, atol=1e-12)
        rng = np.random.default_rng(11)
        for _ in range(20):
            query = unit_rows((table.dim,), seed=int(rng.integers(1 << 30)))
            sess_a = mapped_cache.start_session()
            sess_b = owned_cache.start_session()
            for layer in range(table.num_layers):
                res_a = sess_a.probe(layer, query)
                res_b = sess_b.probe(layer, query)
                assert res_a.hit == res_b.hit
                assert res_a.top_class == res_b.top_class
                assert abs(res_a.score - res_b.score) < 1e-12

    def test_set_layer_view_rejects_mismatched_dtype(self):
        cache = SemanticCache(8, dtype=np.float32)
        with pytest.raises(ValueError, match="dtype"):
            cache.set_layer_view(
                0, np.arange(4), unit_rows((4, 6)).astype(np.float64)
            )

    def test_set_layer_view_rejects_non_contiguous(self):
        cache = SemanticCache(8, dtype=np.float64)
        mat = np.asfortranarray(unit_rows((4, 6)))
        with pytest.raises(ValueError, match="contiguous"):
            cache.set_layer_view(0, np.arange(4), mat)

    def test_set_layer_view_validates_ids(self):
        cache = SemanticCache(4, dtype=np.float64)
        with pytest.raises(ValueError, match="duplicate"):
            cache.set_layer_view(0, np.array([1, 1]), unit_rows((2, 6)))
        with pytest.raises(ValueError, match="range"):
            cache.set_layer_view(0, np.array([1, 9]), unit_rows((2, 6)))

    def test_empty_view_clears_layer(self):
        cache = SemanticCache(8, dtype=np.float64)
        cache.set_layer_view(0, np.arange(4), unit_rows((4, 6)))
        cache.set_layer_view(
            0, np.empty(0, dtype=int), np.empty((0, 6))
        )
        assert cache.active_layers == []
        assert cache.view_backed_layers() == []

    def test_clear_drops_view_tracking(self):
        cache = SemanticCache(8, dtype=np.float64)
        cache.set_layer_view(0, np.arange(4), unit_rows((4, 6)))
        cache.clear()
        assert cache.view_backed_layers() == []


# ----------------------------------------------------------------------
# Delta codec and fallback
# ----------------------------------------------------------------------


class TestSnapshotDelta:
    def _delta(self) -> SnapshotDelta:
        return SnapshotDelta(
            shard_id=1,
            base_epoch=2,
            target_epoch=7,
            full=False,
            entry_rows=np.array([3, 8], dtype=np.int64),
            entries=unit_rows((2, 5, 6)),
            filled=np.ones((2, 5), dtype=bool),
            freq_rows=np.array([3, 8, 9], dtype=np.int64),
            freqs=np.array([1.0, 2.0, 4.0]),
        )

    def test_codec_roundtrip(self, tmp_path):
        delta = self._delta()
        delta.save(tmp_path / "delta.npz")
        loaded = load_delta(tmp_path / "delta.npz")
        assert loaded.shard_id == 1
        assert loaded.base_epoch == 2 and loaded.target_epoch == 7
        assert not loaded.full
        assert np.array_equal(loaded.entry_rows, delta.entry_rows)
        assert np.array_equal(loaded.entries, delta.entries)
        assert np.array_equal(loaded.filled, delta.filled)
        assert np.array_equal(loaded.freq_rows, delta.freq_rows)
        assert np.array_equal(loaded.freqs, delta.freqs)

    def test_apply_scatters_rows(self):
        delta = self._delta()
        replica = GlobalCacheTable(12, 5, 6)
        delta.apply(replica)
        assert np.array_equal(replica.entries[[3, 8]], delta.entries)
        assert replica.filled[3].all() and replica.filled[8].all()
        assert replica.class_freq[9] == 4.0
        assert replica.class_freq[0] == 0.0

    def test_apply_rejects_out_of_range_rows(self):
        delta = self._delta()
        with pytest.raises(ValueError, match="geometry"):
            delta.apply(GlobalCacheTable(9, 5, 6))

    def test_apply_rejects_mismatched_row_shape(self):
        delta = self._delta()
        with pytest.raises(ValueError, match="shape"):
            delta.apply(GlobalCacheTable(12, 4, 6))

    def test_epochs_must_not_run_backwards(self):
        with pytest.raises(ValueError, match="backwards"):
            SnapshotDelta(
                shard_id=0,
                base_epoch=5,
                target_epoch=2,
                full=False,
                entry_rows=np.empty(0, dtype=np.int64),
                entries=np.empty((0, 2, 2)),
                filled=np.empty((0, 2), dtype=bool),
                freq_rows=np.empty(0, dtype=np.int64),
                freqs=np.empty(0),
            )

    def test_nbytes_counts_payload_and_header(self):
        delta = self._delta()
        payload = (
            delta.entry_rows.nbytes
            + delta.entries.nbytes
            + delta.filled.nbytes
            + delta.freq_rows.nbytes
            + delta.freqs.nbytes
        )
        assert delta.nbytes == payload + 32

    def test_diff_tables_finds_changed_rows(self):
        base = filled_table()
        target = base.copy()
        target.entries[4, 1, :] = unit_rows((base.dim,), seed=3)
        target.filled[6, 0] = False
        target.class_freq[9] += 1.0
        delta = diff_tables(base, target)
        assert np.array_equal(delta.entry_rows, [4, 6])
        assert np.array_equal(delta.freq_rows, [9])
        fresh = base.copy()
        delta.apply(fresh)
        assert tables_equal(fresh, target)

    def test_diff_rejects_geometry_mismatch(self):
        with pytest.raises(ValueError, match="geometry"):
            diff_tables(filled_table(), filled_table(num_layers=3))


# ----------------------------------------------------------------------
# Server integration: both persistence formats
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def server() -> CoCaServer:
    model = build_model("resnet50", get_dataset("ucf101", 12), seed=0)
    return CoCaServer(model, CoCaConfig())


class TestServerPersistence:
    def test_save_snapshot_load_ram_roundtrip(self, tmp_path, server):
        server.save_snapshot(tmp_path / "snap")
        model = build_model("resnet50", get_dataset("ucf101", 12), seed=0)
        other = CoCaServer(model, CoCaConfig())
        other.load_table(tmp_path / "snap")  # auto-detected, mode="ram"
        assert type(other.table) is GlobalCacheTable
        assert tables_equal(other.table, server.table)
        assert np.array_equal(
            other.reference_similarity_floor, server.reference_similarity_floor
        )

    def test_load_mmap_is_lazy_and_equivalent(self, tmp_path, server):
        server.save_snapshot(tmp_path / "snap")
        model = build_model("resnet50", get_dataset("ucf101", 12), seed=0)
        other = CoCaServer(model, CoCaConfig())
        other.load_table(tmp_path / "snap", mode="mmap")
        assert isinstance(other.table, MappedGlobalCacheTable)
        assert other.table.promoted_layers() == []
        for layer in (0, server.table.num_layers - 1):
            assert np.array_equal(
                other.table.layer_entries(layer),
                server.table.entries[:, layer, :],
            )

    def test_legacy_npz_roundtrip(self, tmp_path, server):
        server.save_table(tmp_path / "table.npz")
        model = build_model("resnet50", get_dataset("ucf101", 12), seed=0)
        other = CoCaServer(model, CoCaConfig())
        other.load_table(tmp_path / "table.npz")
        assert tables_equal(other.table, server.table)

    def test_legacy_npz_load_closes_file_handle(self, tmp_path, server):
        server.save_table(tmp_path / "table.npz")
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc to observe open file descriptors")
        before = len(os.listdir("/proc/self/fd"))
        server.load_table(tmp_path / "table.npz")
        assert len(os.listdir("/proc/self/fd")) == before

    def test_floor_absent_legacy_archive_defaults(self, tmp_path, server):
        num_layers = server.table.num_layers
        np.savez_compressed(
            tmp_path / "old.npz",
            entries=server.table.entries,
            filled=server.table.filled,
            class_freq=server.table.class_freq,
            reference_hit_ratio=np.zeros(num_layers),
            reference_hit_accuracy=np.zeros(num_layers),
            reference_exit_loss=np.zeros(num_layers),
        )
        model = build_model("resnet50", get_dataset("ucf101", 12), seed=0)
        other = CoCaServer(model, CoCaConfig())
        other.load_table(tmp_path / "old.npz")
        assert np.array_equal(
            other.reference_similarity_floor, np.full(num_layers, -1.0)
        )

    def test_mmap_mode_rejected_for_npz(self, tmp_path, server):
        server.save_table(tmp_path / "table.npz")
        with pytest.raises(ValueError, match="convert"):
            server.load_table(tmp_path / "table.npz", mode="mmap")

    def test_unknown_mode_rejected(self, tmp_path, server):
        with pytest.raises(ValueError, match="mode"):
            server.load_table(tmp_path / "anything", mode="lazy")

    def test_geometry_mismatch_rejected(self, tmp_path, server):
        write_snapshot(tmp_path / "snap", filled_table(4, 3, 5))
        with pytest.raises(ValueError, match="geometry"):
            server.load_table(tmp_path / "snap")

    def test_snapshot_epochs_advance_across_saves(self, tmp_path, server):
        first = server.save_snapshot(tmp_path / "snap")
        second = server.save_snapshot(tmp_path / "snap")
        assert second.epoch == first.epoch + 1


# ----------------------------------------------------------------------
# StoreConfig validation
# ----------------------------------------------------------------------


class TestStoreConfig:
    def test_defaults_valid(self):
        config = StoreConfig()
        assert config.layers_per_shard == 8
        assert 0.0 < config.delta_fallback_fraction <= 1.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="layers_per_shard"):
            StoreConfig(layers_per_shard=0)
        with pytest.raises(ValueError, match="delta_fallback_fraction"):
            StoreConfig(delta_fallback_fraction=0.0)
        with pytest.raises(ValueError, match="delta_fallback_fraction"):
            StoreConfig(delta_fallback_fraction=1.5)


# ----------------------------------------------------------------------
# Snapshot contracts (REPRO_CONTRACTS=1)
# ----------------------------------------------------------------------


class TestSnapshotContracts:
    def test_manifest_contract_passes_on_good_state(self):
        contracts.check_snapshot_manifest(
            layout_version=1,
            epoch=3,
            geometry=(4, 2, 8),
            expected_geometry=(4, 2, 8),
            checksums={"a": "00"},
            recomputed={"a": "00"},
            previous_epoch=2,
        )

    def test_manifest_contract_fires_on_checksum_mismatch(self):
        with pytest.raises(ContractViolation, match="checksum"):
            contracts.check_snapshot_manifest(
                layout_version=1,
                epoch=1,
                geometry=(4, 2, 8),
                expected_geometry=None,
                checksums={"a": "00"},
                recomputed={"a": "ff"},
            )

    def test_manifest_contract_fires_on_non_monotonic_epoch(self):
        with pytest.raises(ContractViolation, match="monotonic"):
            contracts.check_snapshot_manifest(
                layout_version=1,
                epoch=2,
                geometry=(4, 2, 8),
                expected_geometry=None,
                checksums={},
                recomputed={},
                previous_epoch=2,
            )

    def test_manifest_contract_fires_on_geometry_mismatch(self):
        with pytest.raises(ContractViolation, match="geometry"):
            contracts.check_snapshot_manifest(
                layout_version=1,
                epoch=1,
                geometry=(4, 2, 8),
                expected_geometry=(4, 3, 8),
                checksums={},
                recomputed={},
            )

    def test_delta_contract_passes_when_delta_covers_dirty(self):
        contracts.check_delta_apply(
            np.array([1, 5]),
            np.array([2]),
            np.array([5, 1]),
            np.array([2]),
            changed_entry_rows=np.array([5]),
            changed_freq_rows=np.array([2]),
        )

    def test_delta_contract_fires_when_shipment_misses_dirty_row(self):
        with pytest.raises(ContractViolation):
            contracts.check_delta_apply(
                np.array([1]),
                np.empty(0, dtype=np.int64),
                np.array([1, 5]),
                np.empty(0, dtype=np.int64),
            )

    def test_delta_contract_fires_when_changed_row_not_shipped(self):
        with pytest.raises(ContractViolation):
            contracts.check_delta_apply(
                np.array([1]),
                np.empty(0, dtype=np.int64),
                np.array([1]),
                np.empty(0, dtype=np.int64),
                changed_entry_rows=np.array([1, 7]),
            )

    def test_reader_invokes_manifest_contract_when_enabled(
        self, tmp_path, monkeypatch
    ):
        write_snapshot(tmp_path / "snap", filled_table())
        calls: list[str] = []
        real = contracts.check_snapshot_manifest
        monkeypatch.setattr(
            contracts,
            "check_snapshot_manifest",
            lambda **kw: (calls.append("hit"), real(**kw)),
        )
        with contracts.activated(False):  # force off (CI arms the env gate)
            MappedTableStore(tmp_path / "snap")
        assert calls == []  # gate off -> no contract work
        with contracts.activated():
            MappedTableStore(tmp_path / "snap")
        assert calls == ["hit"]

    def test_corrupt_snapshot_trips_contract_gate(self, tmp_path):
        manifest = write_snapshot(tmp_path / "snap", filled_table())
        shard_file = tmp_path / "snap" / manifest.shards[0].file
        raw = bytearray(shard_file.read_bytes())
        raw[-1] ^= 0xFF
        shard_file.write_bytes(bytes(raw))
        with contracts.activated():
            with pytest.raises(ContractViolation, match="checksum"):
                MappedTableStore(tmp_path / "snap")


# ----------------------------------------------------------------------
# CLI: repro store inspect / convert / diff
# ----------------------------------------------------------------------


class TestStoreCli:
    def test_inspect_text_and_json(self, tmp_path, capsys):
        write_snapshot(tmp_path / "snap", filled_table(), epoch=4)
        assert cli_main(["store", "inspect", str(tmp_path / "snap")]) == 0
        out = capsys.readouterr().out
        assert "epoch 4" in out and "entries-00000.npy" in out
        code = cli_main(
            ["store", "inspect", str(tmp_path / "snap"), "--json", "--verify"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["epoch"] == 4
        assert payload["geometry"] == {"classes": 24, "layers": 10, "dim": 8}
        assert payload["verified"] is True

    def test_inspect_rejects_non_snapshot(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert cli_main(["store", "inspect", str(tmp_path / "empty")]) == 1
        assert "cannot open" in capsys.readouterr().err

    def test_convert_then_inspect(self, tmp_path, capsys):
        table = filled_table(num_layers=6)
        np.savez_compressed(
            tmp_path / "legacy.npz",
            entries=table.entries,
            filled=table.filled,
            class_freq=table.class_freq,
            reference_hit_ratio=np.zeros(6),
            reference_hit_accuracy=np.zeros(6),
            reference_exit_loss=np.zeros(6),
        )
        code = cli_main([
            "store", "convert",
            str(tmp_path / "legacy.npz"), str(tmp_path / "snap"),
            "--layers-per-shard", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 2
        assert "reference_hit_ratio" in payload["references"]
        with MappedTableStore(tmp_path / "snap") as store:
            assert tables_equal(store.as_table(), table)

    def test_convert_rejects_non_table_archive(self, tmp_path, capsys):
        np.savez(tmp_path / "junk.npz", other=np.zeros(3))
        code = cli_main([
            "store", "convert",
            str(tmp_path / "junk.npz"), str(tmp_path / "snap"),
        ])
        assert code == 1
        assert "missing array" in capsys.readouterr().err

    def test_diff_reports_changed_rows(self, tmp_path, capsys):
        base = filled_table()
        write_snapshot(tmp_path / "before", base, epoch=1)
        target = base.copy()
        target.entries[2, 0, :] = unit_rows((base.dim,), seed=8)
        target.class_freq[5] += 1.0
        write_snapshot(tmp_path / "after", target, epoch=2)
        code = cli_main([
            "store", "diff",
            str(tmp_path / "before"), str(tmp_path / "after"), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entry_rows_changed"] == 1
        assert payload["freq_rows_changed"] == 1
        assert payload["delta_nbytes"] < payload["full_copy_nbytes"]

    def test_diff_rejects_geometry_mismatch(self, tmp_path, capsys):
        write_snapshot(tmp_path / "a", filled_table())
        write_snapshot(tmp_path / "b", filled_table(num_layers=3))
        code = cli_main(["store", "diff", str(tmp_path / "a"),
                         str(tmp_path / "b")])
        assert code == 2
        assert "geometry" in capsys.readouterr().err


def test_full_rows_nbytes_formula():
    # float64 entries + bool fill + float64 Phi per row.
    assert full_rows_nbytes(3, 4, 5) == 3 * (4 * 5 * 8 + 4 + 8)


# ----------------------------------------------------------------------
# Concurrent readers
# ----------------------------------------------------------------------


class TestConcurrentReaders:
    """One snapshot, many simultaneous readers: results must be
    bit-identical and no reader may promote a mapped layer to an owned
    copy (the zero-copy guarantee serving workers rely on)."""

    C, L, D = 24, 10, 8

    def _snapshot(self, tmp_path) -> str:
        table = filled_table(self.C, self.L, self.D, seed=3)
        write_snapshot(tmp_path / "snap", table, epoch=2)
        return str(tmp_path / "snap")

    def _queries(self, snapshot: str, batch: int = 12) -> np.ndarray:
        """Half exact centroids (hits), half noise (deep walks)."""
        rng = np.random.default_rng(9)
        with MappedTableStore(snapshot) as store:
            vectors = rng.standard_normal((batch, self.L, self.D))
            classes = rng.integers(0, self.C, size=batch // 2)
            for layer in range(self.L):
                vectors[: batch // 2, layer, :] = store.layer_view(layer)[classes]
        return vectors / np.linalg.norm(vectors, axis=2, keepdims=True)

    def _walk_once(self, snapshot: str, vectors: np.ndarray):
        from repro.core.cache import LookupWorkspace
        from repro.core.probe import walk_cache_batch

        with MappedTableStore(snapshot) as store:
            cache = store.serving_cache()
            with LookupWorkspace() as workspace:
                walk = walk_cache_batch(cache, vectors, workspace)
                result = (
                    walk.predicted.copy(),
                    walk.hit_layer.copy(),
                    walk.hit_score.copy(),
                )
                # Probing never promoted a mapped layer.
                assert cache.view_backed_layers() == cache.active_layers
        return result

    @staticmethod
    def _assert_same(a, b) -> None:
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
        assert np.array_equal(a[2], b[2], equal_nan=True)

    def test_threaded_readers_see_bit_identical_results(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        snapshot = self._snapshot(tmp_path)
        vectors = self._queries(snapshot)
        reference = self._walk_once(snapshot, vectors)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(self._walk_once, snapshot, vectors)
                for _ in range(8)
            ]
            for future in futures:
                self._assert_same(reference, future.result())

    def test_process_readers_see_bit_identical_results(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        from repro.serve.worker import (
            WorkerOptions,
            initialize_worker,
            probe_chunk,
            worker_info,
        )

        snapshot = self._snapshot(tmp_path)
        vectors = self._queries(snapshot)
        reference = self._walk_once(snapshot, vectors)
        # Snapshots carry no calibrated floors here, and the in-process
        # reference used serving_cache defaults — match them.
        options = WorkerOptions(use_floors=False)
        pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=initialize_worker,
                initargs=(snapshot, options),
            )
            for _ in range(2)
        ]
        try:
            replies = [pool.submit(probe_chunk, vectors).result() for pool in pools]
            infos = [pool.submit(worker_info).result() for pool in pools]
        finally:
            for pool in pools:
                pool.shutdown(wait=True)
        assert len({info["pid"] for info in infos}) == 2
        for reply, info in zip(replies, infos):
            self._assert_same(
                reference, (reply.predicted, reply.hit_layer, reply.hit_score)
            )
            # Serving a request left every layer view-backed.
            assert info["view_backed_layers"] == info["active_layers"]
            assert info["requests_served"] == 1
            assert info["epoch"] == 2
