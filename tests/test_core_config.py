"""Unit tests for CoCa configuration."""

import pytest

from repro.core.config import CoCaConfig, recommended_theta


class TestCoCaConfig:
    def test_paper_defaults(self):
        config = CoCaConfig()
        assert config.alpha == 0.5
        assert config.beta == 0.95
        assert config.gamma == 0.99
        assert config.frames_per_round == 300
        assert config.hotspot_mass == 0.95
        assert config.recency_base == 0.20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"beta": 1.1},
            {"gamma": 2.0},
            {"theta": -1.0},
            {"frames_per_round": 0},
            {"hotspot_mass": 0.0},
            {"recency_base": 1.0},
            {"cache_budget_fraction": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CoCaConfig(**kwargs)

    def test_with_theta_copies(self):
        base = CoCaConfig()
        tuned = base.with_theta(0.123)
        assert tuned.theta == 0.123
        assert base.theta != 0.123
        assert tuned.alpha == base.alpha

    def test_with_budget_fraction(self):
        tuned = CoCaConfig().with_budget_fraction(0.25)
        assert tuned.cache_budget_fraction == 0.25


class TestRecommendedTheta:
    def test_families_resolve(self):
        assert recommended_theta("resnet101") > 0
        assert recommended_theta("resnet152", 0.05) > 0
        assert recommended_theta("vgg16_bn") > 0
        assert recommended_theta("ast_base") > 0

    def test_tighter_slo_needs_higher_theta(self):
        assert recommended_theta("resnet101", 0.03) > recommended_theta(
            "resnet101", 0.05
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            recommended_theta("mobilenet")
