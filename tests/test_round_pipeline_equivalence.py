"""Round-report equivalence: vectorized round pipeline vs scalar reference.

Runs in the float64 exact mode (``lookup_dtype="float64"``, pruning
off): the scalar reference probes through BLAS gemv and the vectorized
round through gemm, which round differently in float32 — single
precision is the serving default, double precision the equivalence
contract.

The end-to-end vectorized round (block frame generation, batched sample
draw, SoA inference, grouped Eq. 3 collection, one-pass Eq. 4 merge) must
be a pure performance optimization.  Given the *same* pre-drawn
:class:`~repro.models.feature.SampleBatch`, ``CoCaClient.run_round`` and
``CoCaClient.run_round_reference`` must produce identical
:class:`RoundReport` contents — records, update tables, phi/tau vectors,
absorption diagnostics — and ``CoCaServer.apply_client_update`` /
``apply_client_update_reference`` must then produce identical global
tables.
"""

import numpy as np
import pytest

from repro.core.client import CoCaClient
from repro.core.config import CoCaConfig
from repro.core.engine import BatchedInferenceEngine, CachedInferenceEngine
from repro.core.server import CoCaServer, GlobalCacheTable
from repro.data.stream import StreamGenerator


def _build_client(tiny_model, seed, frames=120, theta=0.05):
    config = CoCaConfig(frames_per_round=frames, theta=theta, lookup_dtype="float64")
    stream = StreamGenerator(
        class_distribution=np.full(
            tiny_model.num_classes, 1.0 / tiny_model.num_classes
        ),
        mean_run_length=tiny_model.dataset.mean_run_length,
        rng=np.random.default_rng(seed + 1),
        base_difficulty=tiny_model.dataset.difficulty,
    )
    return CoCaClient(
        client_id=0,
        model=tiny_model,
        stream=stream,
        config=config,
        rng=np.random.default_rng(seed),
    )


def _all_layer_cache(tiny_model, theta=0.05):
    from repro.core.cache import SemanticCache

    cache = SemanticCache(tiny_model.num_classes, theta=theta, dtype=np.float64)
    for layer in range(tiny_model.num_cache_layers):
        cache.set_layer_entries(
            layer,
            np.arange(tiny_model.num_classes),
            tiny_model.ideal_centroids(layer),
        )
    return cache


def _assert_reports_equal(fast, ref):
    assert len(fast.records) == len(ref.records)
    for a, b in zip(fast.records, ref.records):
        assert a.true_class == b.true_class
        assert a.predicted_class == b.predicted_class
        assert a.hit_layer == b.hit_layer
        assert a.latency_ms == pytest.approx(b.latency_ms, rel=1e-12, abs=1e-12)
        assert a.client_id == b.client_id
    assert np.array_equal(fast.frequencies, ref.frequencies)
    assert set(fast.update_entries) == set(ref.update_entries)
    for key in fast.update_entries:
        assert np.allclose(
            fast.update_entries[key], ref.update_entries[key], atol=1e-9
        ), key
    assert fast.eligible_hits == ref.eligible_hits
    assert fast.eligible_misses == ref.eligible_misses
    assert fast.absorbed_hits == ref.absorbed_hits
    assert fast.absorbed_misses == ref.absorbed_misses
    assert fast.collected_total == ref.collected_total
    assert fast.collected_correct == ref.collected_correct


class TestClientRoundEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 21])
    def test_round_report_matches_reference(self, tiny_model, seed):
        fast = _build_client(tiny_model, seed)
        ref = _build_client(tiny_model, seed)
        cache = _all_layer_cache(tiny_model)
        fast.install_cache(cache)
        ref.install_cache(cache)
        block = fast.stream.take_block(fast.config.frames_per_round)
        batch = tiny_model.draw_samples(block, 0, fast._rng)

        report_fast = fast.run_round(batch=batch)
        report_ref = ref.run_round_reference(batch=batch)

        _assert_reports_equal(report_fast, report_ref)
        assert np.array_equal(fast.timestamps, ref.timestamps)
        assert np.array_equal(fast.last_frequencies, ref.last_frequencies)
        assert np.allclose(fast.hit_ratio, ref.hit_ratio)

    def test_cacheless_round_matches_reference(self, tiny_model):
        fast = _build_client(tiny_model, 5, frames=60)
        ref = _build_client(tiny_model, 5, frames=60)
        block = fast.stream.take_block(60)
        batch = tiny_model.draw_samples(block, 0, fast._rng)
        _assert_reports_equal(
            fast.run_round(batch=batch), ref.run_round_reference(batch=batch)
        )

    def test_low_gamma_collects_everything_identically(self, tiny_model):
        """Force heavy collection (Gamma=Delta=0) so the grouped Eq. 3
        fold exercises long per-key chains."""
        config = CoCaConfig(
            frames_per_round=100,
            collect_gamma=0.0,
            collect_delta=0.0,
            lookup_dtype="float64",
        )
        clients = []
        for _ in range(2):
            stream = StreamGenerator(
                class_distribution=np.full(
                    tiny_model.num_classes, 1.0 / tiny_model.num_classes
                ),
                mean_run_length=tiny_model.dataset.mean_run_length,
                rng=np.random.default_rng(8),
                base_difficulty=tiny_model.dataset.difficulty,
            )
            client = CoCaClient(
                client_id=0,
                model=tiny_model,
                stream=stream,
                config=config,
                rng=np.random.default_rng(9),
            )
            client.install_cache(_all_layer_cache(tiny_model))
            clients.append(client)
        fast, ref = clients
        batch = tiny_model.draw_samples(fast.stream.take_block(100), 0, fast._rng)
        report_fast = fast.run_round(batch=batch)
        report_ref = ref.run_round_reference(batch=batch)
        assert report_fast.collected_total == 100
        _assert_reports_equal(report_fast, report_ref)

    def test_run_round_draws_from_stream_when_no_batch(self, tiny_model):
        client = _build_client(tiny_model, 13, frames=40)
        client.install_cache(_all_layer_cache(tiny_model))
        report = client.run_round()
        assert len(report.records) == 40
        assert report.frequencies.sum() == 40

    def test_rejects_empty_round(self, tiny_model):
        client = _build_client(tiny_model, 1)
        with pytest.raises(ValueError):
            client.run_round(0)
        with pytest.raises(ValueError):
            client.run_round_reference(0)


class TestServerMergeEquivalence:
    def _update_table(self, tiny_model, seed, entries=30):
        rng = np.random.default_rng(seed)
        table: dict[tuple[int, int], np.ndarray] = {}
        dim = tiny_model.feature_space.config.dim
        while len(table) < entries:
            key = (
                int(rng.integers(tiny_model.num_classes)),
                int(rng.integers(tiny_model.num_cache_layers)),
            )
            vec = rng.standard_normal(dim)
            table[key] = vec / np.linalg.norm(vec)
        return table

    @pytest.mark.parametrize("seed", [0, 7])
    def test_vectorized_merge_matches_reference(self, tiny_model, seed):
        config = CoCaConfig()
        fast = CoCaServer(tiny_model, config)
        ref = CoCaServer(tiny_model, config)
        for server in (fast, ref):
            server.initialize_from_shared_dataset(
                np.random.default_rng(0), calibration_samples=60
            )
        updates = self._update_table(tiny_model, seed)
        freq = np.random.default_rng(seed + 1).integers(
            0, 12, tiny_model.num_classes
        ).astype(float)
        fast.apply_client_update(updates, freq)
        ref.apply_client_update_reference(updates, freq)
        assert np.allclose(fast.table.entries, ref.table.entries, atol=1e-12)
        assert np.array_equal(fast.table.filled, ref.table.filled)
        assert np.array_equal(fast.table.class_freq, ref.table.class_freq)

    def test_merge_into_partially_filled_table(self, tiny_model):
        """Unfilled slots install, filled slots blend — in one pass."""
        dim = tiny_model.feature_space.config.dim
        tables = [
            GlobalCacheTable(tiny_model.num_classes, tiny_model.num_cache_layers, dim)
            for _ in range(2)
        ]
        rng = np.random.default_rng(3)
        for table in tables:
            table.class_freq += 5.0
            table.install(0, 0, np.eye(dim)[0])
            table.install(2, 1, np.eye(dim)[1])
        updates = self._update_table(tiny_model, 4, entries=20)
        freq = rng.integers(1, 6, tiny_model.num_classes).astype(float)
        fast, ref = tables
        keys = np.array(list(updates.keys()), dtype=int)
        vectors = np.stack(list(updates.values()))
        fast.merge_updates(keys[:, 0], keys[:, 1], vectors, freq[keys[:, 0]], 0.99)
        for (class_id, layer), vec in updates.items():
            ref.merge_update(class_id, layer, vec, float(freq[class_id]), 0.99)
        assert np.allclose(fast.entries, ref.entries, atol=1e-12)
        assert np.array_equal(fast.filled, ref.filled)

    def test_zero_frequency_entries_skipped(self, tiny_model):
        dim = tiny_model.feature_space.config.dim
        table = GlobalCacheTable(tiny_model.num_classes, tiny_model.num_cache_layers, dim)
        vec = np.eye(dim)[0]
        table.merge_updates(
            np.array([1]), np.array([0]), vec[None, :], np.array([0.0]), 0.99
        )
        assert not table.filled[1, 0]

    def test_merge_updates_validation(self, tiny_model):
        dim = tiny_model.feature_space.config.dim
        table = GlobalCacheTable(tiny_model.num_classes, tiny_model.num_cache_layers, dim)
        vec = np.eye(dim)[:1]
        with pytest.raises(ValueError):  # duplicate keys
            table.merge_updates(
                np.array([1, 1]),
                np.array([0, 0]),
                np.vstack([vec, vec]),
                np.array([1.0, 1.0]),
                0.99,
            )
        with pytest.raises(ValueError):  # negative frequency
            table.merge_updates(
                np.array([1]), np.array([0]), vec, np.array([-1.0]), 0.99
            )
        with pytest.raises(ValueError):  # class out of range
            table.merge_updates(
                np.array([tiny_model.num_classes]),
                np.array([0]),
                vec,
                np.array([1.0]),
                0.99,
            )
        with pytest.raises(ValueError):  # layer out of range
            table.merge_updates(
                np.array([0]),
                np.array([tiny_model.num_cache_layers]),
                vec,
                np.array([1.0]),
                0.99,
            )
        with pytest.raises(ValueError):  # shape mismatch
            table.merge_updates(
                np.array([0]), np.array([0]), vec[:, :4], np.array([1.0]), 0.99
            )


class TestEndToEndEquivalence:
    def test_multi_client_round_and_merge(self, tiny_model):
        """Two identical deployments: one runs the vectorized pipeline,
        one the scalar reference, both on the same pre-drawn batches —
        the merged global tables must coincide."""
        config = CoCaConfig(frames_per_round=80, theta=0.05, lookup_dtype="float64")
        servers = [CoCaServer(tiny_model, config) for _ in range(2)]
        for server in servers:
            server.initialize_from_shared_dataset(
                np.random.default_rng(1), calibration_samples=80
            )
        fast_server, ref_server = servers
        for client_seed in range(3):
            fast = _build_client(tiny_model, client_seed, frames=80)
            ref = _build_client(tiny_model, client_seed, frames=80)
            status = fast.status()
            cache_fast, _ = fast_server.allocate(
                status.timestamps,
                status.hit_ratio,
                status.cache_budget_bytes,
                local_freq=status.frequencies,
            )
            status_ref = ref.status()
            cache_ref, _ = ref_server.allocate(
                status_ref.timestamps,
                status_ref.hit_ratio,
                status_ref.cache_budget_bytes,
                local_freq=status_ref.frequencies,
            )
            fast.install_cache(cache_fast)
            ref.install_cache(cache_ref)
            batch = tiny_model.draw_samples(
                fast.stream.take_block(80), 0, fast._rng
            )
            report_fast = fast.run_round(batch=batch)
            report_ref = ref.run_round_reference(batch=batch)
            _assert_reports_equal(report_fast, report_ref)
            fast_server.apply_client_update(
                report_fast.update_entries, report_fast.frequencies
            )
            ref_server.apply_client_update_reference(
                report_ref.update_entries, report_ref.frequencies
            )
        assert np.allclose(
            fast_server.table.entries, ref_server.table.entries, atol=1e-9
        )
        assert np.array_equal(fast_server.table.filled, ref_server.table.filled)
        assert np.array_equal(
            fast_server.table.class_freq, ref_server.table.class_freq
        )

    def test_soa_outcomes_match_object_outcomes(self, tiny_model):
        """BatchOutcomes arrays must mirror the per-sample outcome objects."""
        cache = _all_layer_cache(tiny_model)
        client = _build_client(tiny_model, 2, frames=60)
        client.install_cache(cache)
        batch = tiny_model.draw_samples(client.stream.take_block(60), 0, client._rng)
        soa = client.batch_engine.infer_batch_soa(batch)
        objects = BatchedInferenceEngine(tiny_model, cache).infer_batch(batch)
        scalar_engine = CachedInferenceEngine(tiny_model, cache)
        for i, outcome in enumerate(objects):
            assert soa.predicted_class[i] == outcome.predicted_class
            expected_layer = -1 if outcome.hit_layer is None else outcome.hit_layer
            assert soa.hit_layer[i] == expected_layer
            assert soa.latency_ms[i] == pytest.approx(outcome.latency_ms, rel=1e-12)
            if outcome.hit_score is None:
                assert np.isnan(soa.hit_score[i])
            else:
                assert soa.hit_score[i] == pytest.approx(outcome.hit_score, rel=1e-9)
            if outcome.top2_prob_gap is None:
                assert np.isnan(soa.top2_prob_gap[i])
            else:
                assert soa.top2_prob_gap[i] == pytest.approx(
                    outcome.top2_prob_gap, rel=1e-9
                )
            scalar = scalar_engine.infer(batch.sample(i))
            assert scalar.predicted_class == outcome.predicted_class
            assert scalar.hit_layer == outcome.hit_layer
