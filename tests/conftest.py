"""Shared fixtures: a tiny dataset/model pair that keeps tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import DatasetSpec
from repro.models.base import SimulatedModel
from repro.models.feature import FeatureSpaceConfig
from repro.models.profiles import build_profile


TINY_CLASSES = 8
TINY_LAYERS = 6


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset() -> DatasetSpec:
    return DatasetSpec(
        name="tiny-8",
        num_classes=TINY_CLASSES,
        mean_run_length=6.0,
        difficulty=0.30,
        modality="video",
    )


@pytest.fixture
def tiny_feature_config() -> FeatureSpaceConfig:
    return FeatureSpaceConfig(dim=16, cluster_size=4, conf_mid=0.50)


@pytest.fixture
def tiny_model(tiny_dataset, tiny_feature_config) -> SimulatedModel:
    profile = build_profile(
        total_compute_ms=10.0,
        num_cache_layers=TINY_LAYERS,
        channels_per_layer=[8, 8, 16, 16, 32, 32],
    )
    return SimulatedModel(
        name="tiny",
        dataset=tiny_dataset,
        profile=profile,
        feature_config=tiny_feature_config,
        num_clients=3,
        seed=7,
    )
