"""Unit tests for the cache-instrumented inference engine."""

import numpy as np
import pytest

from repro.core.cache import SemanticCache
from repro.core.engine import CachedInferenceEngine
from repro.data.stream import Frame


def _frame(class_id=0, difficulty=0.05):
    return Frame(class_id=class_id, difficulty=difficulty, run_position=5, stream_index=0)


def _all_layer_cache(model, theta):
    cache = SemanticCache(model.num_classes, theta=theta)
    for layer in range(model.num_cache_layers):
        cache.set_layer_entries(
            layer, np.arange(model.num_classes), model.ideal_centroids(layer)
        )
    return cache


class TestEngineNoCache:
    def test_full_latency_charged(self, tiny_model, rng):
        engine = CachedInferenceEngine(tiny_model, cache=None)
        sample = tiny_model.draw_sample(_frame(), 0, rng)
        outcome = engine.infer(sample)
        assert outcome.latency_ms == pytest.approx(tiny_model.total_compute_ms)
        assert outcome.hit_layer is None
        assert not outcome.hit
        assert outcome.top2_prob_gap is not None

    def test_empty_cache_behaves_like_no_cache(self, tiny_model, rng):
        engine = CachedInferenceEngine(tiny_model, SemanticCache(tiny_model.num_classes))
        sample = tiny_model.draw_sample(_frame(), 0, rng)
        outcome = engine.infer(sample)
        assert outcome.latency_ms == pytest.approx(tiny_model.total_compute_ms)


class TestEngineWithCache:
    def test_easy_sample_hits_and_saves_time(self, tiny_model, rng):
        cache = _all_layer_cache(tiny_model, theta=0.05)
        engine = CachedInferenceEngine(tiny_model, cache)
        hits = 0
        for i in range(30):
            sample = tiny_model.draw_sample(_frame(class_id=i % 8), 0, rng)
            outcome = engine.infer(sample)
            if outcome.hit:
                hits += 1
                assert outcome.predicted_class == i % 8
                assert outcome.latency_ms < tiny_model.total_compute_ms
                assert outcome.hit_score is not None
                assert outcome.hit_score > 0.05
        assert hits >= 20  # easy samples should mostly hit

    def test_impossible_threshold_never_hits(self, tiny_model, rng):
        cache = _all_layer_cache(tiny_model, theta=np.inf)
        engine = CachedInferenceEngine(tiny_model, cache)
        sample = tiny_model.draw_sample(_frame(), 0, rng)
        outcome = engine.infer(sample)
        assert not outcome.hit
        # Paid every lookup plus full compute.
        expected = tiny_model.total_compute_ms + sum(
            tiny_model.lookup_cost_ms(8) for _ in range(tiny_model.num_cache_layers)
        )
        assert outcome.latency_ms == pytest.approx(expected)
        assert len(outcome.probes) == tiny_model.num_cache_layers

    def test_hit_latency_decomposition(self, tiny_model, rng):
        """Latency = prefix compute + lookup costs of the probed layers."""
        cache = SemanticCache(tiny_model.num_classes, theta=0.02)
        for layer in (1, 3):
            cache.set_layer_entries(
                layer, np.arange(8), tiny_model.ideal_centroids(layer)
            )
        engine = CachedInferenceEngine(tiny_model, cache)
        for i in range(40):
            sample = tiny_model.draw_sample(_frame(class_id=i % 8), 0, rng)
            outcome = engine.infer(sample)
            if outcome.hit_layer == 1:
                expected = tiny_model.profile.compute_up_to_layer_ms(
                    1
                ) + tiny_model.lookup_cost_ms(8)
                assert outcome.latency_ms == pytest.approx(expected)
                break
        else:
            pytest.fail("no hit at layer 1 in 40 easy samples")

    def test_probes_stop_at_hit(self, tiny_model, rng):
        cache = _all_layer_cache(tiny_model, theta=0.02)
        engine = CachedInferenceEngine(tiny_model, cache)
        sample = tiny_model.draw_sample(_frame(), 0, rng)
        outcome = engine.infer(sample)
        if outcome.hit:
            assert outcome.probes[-1].layer == outcome.hit_layer
            assert all(not p.hit for p in outcome.probes[:-1])

    def test_set_cache_swaps(self, tiny_model, rng):
        engine = CachedInferenceEngine(tiny_model, cache=None)
        engine.set_cache(_all_layer_cache(tiny_model, theta=0.02))
        sample = tiny_model.draw_sample(_frame(), 0, rng)
        assert engine.infer(sample).probes  # cache active now

    def test_miss_exposes_probability_gap(self, tiny_model, rng):
        cache = _all_layer_cache(tiny_model, theta=np.inf)
        engine = CachedInferenceEngine(tiny_model, cache)
        sample = tiny_model.draw_sample(_frame(), 0, rng)
        outcome = engine.infer(sample)
        assert outcome.top2_prob_gap is not None
        assert 0.0 <= outcome.top2_prob_gap <= 1.0
