"""Unit + property tests for the semantic cache (Eq. 1 / Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import SemanticCache, discriminative_score


def _unit(v):
    v = np.asarray(v, dtype=float)
    return v / np.linalg.norm(v)


def _orthogonal_entries(num, dim=8):
    """num orthonormal centroids."""
    basis = np.eye(dim)[:num]
    return np.arange(num), basis


class TestCacheContent:
    def test_set_and_read_entries(self):
        cache = SemanticCache(5)
        ids, mat = _orthogonal_entries(3)
        cache.set_layer_entries(2, ids, mat)
        out_ids, out_mat = cache.entries_at(2)
        assert list(out_ids) == [0, 1, 2]
        assert np.allclose(out_mat, mat)
        assert cache.num_entries(2) == 3
        assert cache.active_layers == [2]

    def test_entries_are_normalized_on_insert(self):
        cache = SemanticCache(3)
        cache.set_layer_entries(0, np.array([0, 1]), np.array([[2.0, 0.0], [0.0, 5.0]]))
        _, mat = cache.entries_at(0)
        assert np.allclose(np.linalg.norm(mat, axis=1), 1.0)

    def test_replace_layer(self):
        cache = SemanticCache(5)
        ids, mat = _orthogonal_entries(3)
        cache.set_layer_entries(0, ids, mat)
        cache.set_layer_entries(0, ids[:2], mat[:2])
        assert cache.num_entries(0) == 2

    def test_empty_set_removes_layer(self):
        cache = SemanticCache(5)
        ids, mat = _orthogonal_entries(2, dim=4)
        cache.set_layer_entries(1, ids, mat)
        cache.set_layer_entries(1, np.array([], dtype=int), np.zeros((0, 4)))
        assert cache.active_layers == []

    def test_duplicate_ids_rejected(self):
        cache = SemanticCache(5)
        with pytest.raises(ValueError):
            cache.set_layer_entries(0, np.array([1, 1]), np.eye(2))

    def test_out_of_range_ids_rejected(self):
        cache = SemanticCache(2)
        with pytest.raises(ValueError):
            cache.set_layer_entries(0, np.array([0, 5]), np.eye(2))

    def test_zero_centroid_rejected(self):
        cache = SemanticCache(3)
        with pytest.raises(ValueError):
            cache.set_layer_entries(0, np.array([0]), np.zeros((1, 4)))

    def test_total_entries_and_size(self):
        cache = SemanticCache(6)
        ids, mat = _orthogonal_entries(3)
        cache.set_layer_entries(0, ids, mat)
        cache.set_layer_entries(4, ids[:2], mat[:2])
        assert cache.total_entries == 5
        assert cache.size_bytes(lambda layer: 10) == 50

    def test_classes_at(self):
        cache = SemanticCache(6)
        ids, mat = _orthogonal_entries(3)
        cache.set_layer_entries(1, ids, mat)
        assert cache.classes_at(1) == {0, 1, 2}
        assert cache.classes_at(9) == set()

    def test_clear(self):
        cache = SemanticCache(4)
        ids, mat = _orthogonal_entries(2)
        cache.set_layer_entries(0, ids, mat)
        cache.clear()
        assert cache.active_layers == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SemanticCache(0)
        with pytest.raises(ValueError):
            SemanticCache(5, alpha=1.5)
        with pytest.raises(ValueError):
            SemanticCache(5, theta=-0.1)


class TestLookup:
    def test_query_matching_entry_hits(self):
        cache = SemanticCache(4, theta=0.05)
        ids, mat = _orthogonal_entries(4)
        cache.set_layer_entries(0, ids, mat)
        session = cache.start_session()
        # Strong match with a positive runner-up (as in the real feature
        # geometry, where similarities share a positive common base).
        probe = session.probe(0, _unit(mat[2] + 0.2 * mat[1]))
        assert probe.hit
        assert probe.top_class == 2
        assert probe.score > 1.0  # small runner-up => huge margin

    def test_ambiguous_query_misses(self):
        cache = SemanticCache(4, theta=0.05)
        ids, mat = _orthogonal_entries(2)
        cache.set_layer_entries(0, ids, mat)
        query = _unit(mat[0] + mat[1])  # equidistant
        probe = cache.start_session().probe(0, query)
        assert not probe.hit
        assert probe.score == pytest.approx(0.0, abs=1e-9)

    def test_adversarial_negative_runner_up_is_clamped(self):
        """Regression: a vector anti-aligned with every entry but one used
        to fire a ~1e9 score (division by epsilon) and hit spuriously."""
        cache = SemanticCache(2, theta=0.05)
        mat = np.array([[1.0, 0.0, 0.0, 0.0], [-1.0, 0.0, 0.0, 0.0]])
        cache.set_layer_entries(0, np.array([0, 1]), mat)
        probe = cache.start_session().probe(0, np.array([1.0, 0.0, 0.0, 0.0]))
        # a_best = 1, a_second = -1: the old expression gave ~2e9.
        assert probe.score == 0.0
        assert not probe.hit

    def test_zero_runner_up_is_clamped(self):
        """An exactly-orthogonal runner-up gives no relative margin."""
        cache = SemanticCache(4, theta=0.05)
        ids, mat = _orthogonal_entries(4)
        cache.set_layer_entries(0, ids, mat)
        probe = cache.start_session().probe(0, mat[2])
        assert probe.score == 0.0
        assert not probe.hit

    def test_single_entry_layer_never_hits(self):
        cache = SemanticCache(4, theta=0.0)
        cache.set_layer_entries(0, np.array([1]), np.eye(8)[:1])
        probe = cache.start_session().probe(0, np.eye(8)[0])
        assert not probe.hit
        assert probe.top_class == 1
        assert probe.second_class == -1

    def test_eq1_accumulation(self):
        """A[i, j] = C[i, j] + alpha * A[i, j-1] across probed layers."""
        alpha = 0.5
        cache = SemanticCache(3, alpha=alpha, theta=np.inf)
        dim = 6
        mat = np.eye(dim)[:2]
        ids = np.array([0, 1])
        cache.set_layer_entries(0, ids, mat)
        cache.set_layer_entries(1, ids, mat)
        query = _unit([3.0, 4.0, 0, 0, 0, 0])  # cos 0.6 / 0.8 to the entries
        session = cache.start_session()
        session.probe(0, query)
        assert session.accumulated_score(0) == pytest.approx(0.6)
        assert session.accumulated_score(1) == pytest.approx(0.8)
        session.probe(1, query)
        assert session.accumulated_score(0) == pytest.approx(0.6 + alpha * 0.6)
        assert session.accumulated_score(1) == pytest.approx(0.8 + alpha * 0.8)

    def test_eq2_score(self):
        """D = (A_a - A_b) / A_b for the top-2 accumulated classes."""
        cache = SemanticCache(3, theta=np.inf)
        mat = np.eye(4)[:2]
        cache.set_layer_entries(0, np.array([0, 1]), mat)
        query = _unit([0.8, 0.6, 0, 0])
        probe = cache.start_session().probe(0, query)
        assert probe.top_class == 0
        assert probe.second_class == 1
        assert probe.score == pytest.approx((0.8 - 0.6) / 0.6)

    def test_negative_best_never_hits(self):
        cache = SemanticCache(3, theta=0.0)
        mat = np.eye(4)[:2]
        cache.set_layer_entries(0, np.array([0, 1]), mat)
        probe = cache.start_session().probe(0, -_unit([1.0, 1.0, 0, 0]))
        assert not probe.hit

    def test_unknown_layer_rejected(self):
        cache = SemanticCache(3)
        with pytest.raises(KeyError):
            cache.start_session().probe(0, np.ones(4))
        with pytest.raises(KeyError):
            cache.entries_at(0)

    def test_dimension_mismatch_rejected(self):
        cache = SemanticCache(3)
        ids, mat = _orthogonal_entries(2, dim=8)
        cache.set_layer_entries(0, ids, mat)
        with pytest.raises(ValueError):
            cache.start_session().probe(0, np.ones(5))

    def test_sessions_are_independent(self):
        cache = SemanticCache(3, theta=np.inf)
        ids, mat = _orthogonal_entries(2)
        cache.set_layer_entries(0, ids, mat)
        s1 = cache.start_session()
        s1.probe(0, mat[0])
        s2 = cache.start_session()
        assert s2.accumulated_score(0) == 0.0


class TestLookupProperties:
    @given(
        theta=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_hit_implies_score_above_theta(self, theta, seed):
        rng = np.random.default_rng(seed)
        cache = SemanticCache(6, theta=theta)
        mat = rng.standard_normal((4, 8))
        mat /= np.linalg.norm(mat, axis=1, keepdims=True)
        cache.set_layer_entries(0, np.arange(4), mat)
        query = _unit(rng.standard_normal(8))
        probe = cache.start_session().probe(0, query)
        if probe.hit:
            assert probe.score > theta

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_top_class_has_max_accumulated_score(self, seed):
        rng = np.random.default_rng(seed)
        cache = SemanticCache(5, theta=np.inf)
        mat = rng.standard_normal((5, 8))
        mat /= np.linalg.norm(mat, axis=1, keepdims=True)
        cache.set_layer_entries(0, np.arange(5), mat)
        session = cache.start_session()
        probe = session.probe(0, _unit(rng.standard_normal(8)))
        scores = [session.accumulated_score(i) for i in range(5)]
        assert probe.top_class == int(np.argmax(scores))


class TestDtypePolicy:
    def test_default_dtype_is_float32(self):
        assert SemanticCache(4).dtype == np.dtype(np.float32)

    def test_entries_stored_in_cache_dtype_contiguous(self):
        for dtype in (np.float32, np.float64):
            cache = SemanticCache(5, dtype=dtype)
            ids, mat = _orthogonal_entries(3)
            cache.set_layer_entries(0, ids, mat)
            _, stored = cache.entries_at(0)
            assert stored.dtype == np.dtype(dtype)
            assert stored.flags.c_contiguous

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            SemanticCache(4, dtype=np.int32)
        with pytest.raises(ValueError):
            SemanticCache(4, dtype=np.float16)

    def test_rejects_bad_prune_threshold(self):
        with pytest.raises(ValueError):
            SemanticCache(4, prune_threshold=1)

    def test_content_equal_distinguishes_dtype(self):
        ids, mat = _orthogonal_entries(3)
        caches = []
        for dtype in (np.float32, np.float64):
            cache = SemanticCache(5, dtype=dtype)
            cache.set_layer_entries(0, ids, mat)
            caches.append(cache)
        assert not caches[0].content_equal(caches[1])
        assert caches[0].content_equal(caches[0])

    def test_sessions_accumulate_in_cache_dtype(self):
        cache = SemanticCache(4, dtype=np.float32)
        ids, mat = _orthogonal_entries(3)
        cache.set_layer_entries(0, ids, mat)
        session = cache.start_session()
        probe = session.probe(0, _unit([1.0, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]))
        assert isinstance(probe.score, float)
        batch = cache.start_batch_session(2)
        result = batch.probe(0, np.tile(_unit(np.ones(8)), (2, 1)))
        assert result.score.dtype == np.dtype(np.float32)


class TestEmptyRowSubset:
    def _cache(self, entries=3):
        cache = SemanticCache(5)
        ids, mat = _orthogonal_entries(entries)
        cache.set_layer_entries(0, ids, mat)
        return cache

    def test_empty_rows_returns_empty_probe(self):
        """An empty alive subset is a no-op probe, not a degenerate-layer
        special case."""
        cache = self._cache()
        session = cache.start_batch_session(4)
        result = session.probe(0, np.zeros((0, 8)), rows=np.zeros(0, dtype=int))
        assert result.rows.size == 0
        assert result.top_class.size == 0
        assert result.second_class.size == 0
        assert result.score.size == 0
        assert result.hit.size == 0

    def test_empty_rows_on_degenerate_layer(self):
        """Even a single-entry layer returns empty arrays for an empty
        subset (the seed tripped the ids.size < 2 branch instead)."""
        cache = self._cache(entries=1)
        session = cache.start_batch_session(4)
        result = session.probe(0, np.zeros((0, 8)), rows=np.zeros(0, dtype=int))
        assert result.top_class.size == 0
        assert result.hit.size == 0

    def test_empty_probe_leaves_accumulator_untouched(self):
        cache = self._cache()
        session = cache.start_batch_session(2)
        session.probe(0, np.zeros((0, 8)), rows=np.zeros(0, dtype=int))
        for row in range(2):
            for class_id in range(5):
                assert session.accumulated_score(row, class_id) == 0.0


class TestColumnModeAccumulator:
    """The (batch, n_entries) fast-path accumulator must spill to the
    general per-class matrix exactly when layer id sets diverge."""

    def _caches(self, dtype):
        rng = np.random.default_rng(0)
        same = SemanticCache(10, theta=0.0, dtype=dtype)
        mixed = SemanticCache(10, theta=0.0, dtype=dtype)
        ids = np.arange(8)
        for layer in range(3):
            same.set_layer_entries(layer, ids, rng.standard_normal((8, 6)))
        mixed.set_layer_entries(0, ids, rng.standard_normal((8, 6)))
        mixed.set_layer_entries(1, np.arange(2, 10), rng.standard_normal((8, 6)))
        return same, mixed

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_divergent_ids_spill_and_stay_correct(self, dtype):
        _, mixed = self._caches(dtype)
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((3, 2, 6))
        batch = mixed.start_batch_session(3)
        scalars = [mixed.start_session() for _ in range(3)]
        for layer in range(2):
            vecs = np.ascontiguousarray(vectors[:, layer, :], dtype=dtype)
            result = batch.probe(layer, vecs)
            for i, session in enumerate(scalars):
                probe = session.probe(layer, vecs[i])
                assert result.top_class[i] == probe.top_class
                assert result.score[i] == pytest.approx(probe.score, rel=1e-5)
        assert batch._acc_full is not None  # spilled on layer 1
        for i, session in enumerate(scalars):
            for class_id in range(10):
                assert batch.accumulated_score(i, class_id) == pytest.approx(
                    session.accumulated_score(class_id), rel=1e-5, abs=1e-6
                )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_shared_ids_stay_in_column_mode(self, dtype):
        same, _ = self._caches(dtype)
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((3, 3, 6))
        batch = same.start_batch_session(3)
        scalars = [same.start_session() for _ in range(3)]
        for layer in range(3):
            vecs = np.ascontiguousarray(vectors[:, layer, :], dtype=dtype)
            result = batch.probe(layer, vecs)
            for i, session in enumerate(scalars):
                probe = session.probe(layer, vecs[i])
                assert result.top_class[i] == probe.top_class
                assert bool(result.hit[i]) == probe.hit
        assert batch._acc_full is None  # never left column mode
        for i, session in enumerate(scalars):
            for class_id in range(10):
                assert batch.accumulated_score(i, class_id) == pytest.approx(
                    session.accumulated_score(class_id), rel=1e-5, abs=1e-6
                )


class TestLookupWorkspace:
    def test_buffers_are_reused(self):
        from repro.core.cache import LookupWorkspace

        workspace = LookupWorkspace()
        first = workspace.floats("x", (4, 8), np.float32)
        second = workspace.floats("x", (2, 8), np.float32)
        assert np.shares_memory(first, second)
        grown = workspace.floats("x", (64, 64), np.float32)
        assert grown.shape == (64, 64)

    def test_pools_keyed_by_dtype(self):
        from repro.core.cache import LookupWorkspace

        workspace = LookupWorkspace()
        f32 = workspace.floats("x", (8,), np.float32)
        f64 = workspace.floats("x", (8,), np.float64)
        assert f32.dtype == np.float32 and f64.dtype == np.float64
        assert not np.shares_memory(f32, f64)

    def test_top2_matches_sort(self):
        from repro.core.cache import LookupWorkspace

        rng = np.random.default_rng(3)
        workspace = LookupWorkspace()
        matrix = np.ascontiguousarray(rng.standard_normal((10, 7)))
        snapshot = matrix.copy()
        best_idx, second_idx, best, second = workspace.top2(matrix)
        assert np.array_equal(matrix, snapshot)  # restored in place
        order = np.argsort(snapshot, axis=1)
        assert np.array_equal(best_idx, order[:, -1])
        assert np.allclose(best, np.take_along_axis(snapshot, order[:, -1:], 1)[:, 0])
        assert np.allclose(second, np.take_along_axis(snapshot, order[:, -2:-1], 1)[:, 0])
        del second_idx

    def test_scores_into_matches_reference(self):
        from repro.core.cache import LookupWorkspace

        rng = np.random.default_rng(5)
        workspace = LookupWorkspace()
        best = rng.standard_normal(32)
        second = rng.standard_normal(32)
        second[:8] = -np.abs(second[:8])  # non-positive runner-ups clamp
        out = np.empty(32)
        workspace.scores_into(best, second, out)
        assert np.array_equal(out, discriminative_score(best, second))


class TestLookupWorkspaceClose:
    """Teardown contract: close() must join the probe threads."""

    @staticmethod
    def _probe_threads() -> list:
        import threading

        return [
            t for t in threading.enumerate()
            if t.name.startswith("repro-probe") and t.is_alive()
        ]

    def test_close_joins_probe_threads(self):
        from repro.core.cache import LookupWorkspace

        workspace = LookupWorkspace()
        executor = workspace.executor(2)
        # Force the pool to actually spawn its threads.
        assert executor.submit(lambda: 1).result() == 1
        assert executor.submit(lambda: 2).result() == 2
        before = len(self._probe_threads())
        assert before >= 1
        workspace.close()
        assert self._probe_threads() == []
        assert workspace._executor is None

    def test_close_is_idempotent_and_workspace_stays_usable(self):
        from repro.core.cache import LookupWorkspace

        workspace = LookupWorkspace()
        workspace.floats("x", (4,), np.float32)
        workspace.for_thread(1).floats("y", (4,), np.float32)
        workspace.close()
        workspace.close()
        assert workspace._children == {}
        assert workspace._pools == {}
        # Pools regrow and the executor comes back on demand.
        assert workspace.floats("x", (8,), np.float32).shape == (8,)
        assert workspace.executor(1).submit(lambda: 3).result() == 3
        workspace.close()
        assert self._probe_threads() == []

    def test_context_manager_closes(self):
        from repro.core.cache import LookupWorkspace

        with LookupWorkspace() as workspace:
            workspace.executor(1).submit(lambda: 0).result()
        assert workspace._executor is None
        assert self._probe_threads() == []

    def test_engine_and_node_teardown_close_their_workspaces(self, tiny_model):
        from repro.cluster.node import EdgeServerNode
        from repro.core.engine import BatchedInferenceEngine

        engine = BatchedInferenceEngine(tiny_model)
        engine.workspace.executor(1).submit(lambda: 0).result()
        engine.close()
        assert engine.workspace._executor is None

        from repro.core.server import GlobalCacheTable

        class _Holder:
            def __init__(self, table):
                self.table = table

        node = EdgeServerNode(0, _Holder(GlobalCacheTable(8, 6, 16)))
        node.workspace.executor(1).submit(lambda: 0).result()
        node.close()
        assert node.workspace._executor is None
        assert self._probe_threads() == []
