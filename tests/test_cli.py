"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "resnet101"
        assert args.clients == 4
        assert args.methods == "edge,coca"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--model", "alexnet"])

    def test_sweep_parses_thetas(self):
        args = build_parser().parse_args(["sweep-theta", "--thetas", "0.01,0.02"])
        assert args.thetas == "0.01,0.02"

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.shards == 4
        assert args.sync_interval == 1
        assert args.policy == "hash"
        assert not args.json

    def test_cluster_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--policy", "random"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "resnet101" in out
        assert "ucf101" in out

    def test_compare_unknown_method_fails(self, capsys):
        code = main(
            ["compare", "--methods", "edge,bogus", "--classes", "10",
             "--model", "resnet50", "--clients", "2", "--rounds", "1"]
        )
        assert code == 2

    def test_compare_runs_edge_only(self, capsys):
        code = main(
            [
                "compare",
                "--methods", "edge",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--clients", "2",
                "--rounds", "1",
                "--warmup", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Edge-Only" in out
        assert "30.50ms" in out

    def test_compare_json_output(self, capsys):
        code = main(
            [
                "compare",
                "--methods", "edge",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--clients", "2",
                "--rounds", "1",
                "--warmup", "0",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["model"] == "resnet50"
        assert payload["methods"]["edge"]["latency_ms"] == pytest.approx(30.5)
        assert payload["methods"]["edge"]["samples"] == 600

    def test_cluster_runs(self, capsys):
        code = main(
            [
                "cluster",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--shards", "2",
                "--clients", "4",
                "--rounds", "1",
                "--warmup", "0",
                "--frames", "30",
                "--policy", "least-loaded",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "throughput" in out

    def test_cluster_json_output(self, capsys):
        code = main(
            [
                "cluster",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--shards", "2",
                "--clients", "4",
                "--rounds", "1",
                "--warmup", "0",
                "--frames", "30",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["shards"] == 2
        assert payload["throughput_inferences_per_s"] > 0
        assert len(payload["nodes"]) == 2
        assert payload["metrics"]["samples"] == 4 * 30

    def test_sweep_theta_runs(self, capsys):
        code = main(
            [
                "sweep-theta",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--clients", "2",
                "--rounds", "1",
                "--warmup", "0",
                "--thetas", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.050" in out

    def test_profile_round_runs(self, capsys):
        code = main(
            [
                "profile-round",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--clients", "2",
                "--rounds", "1",
                "--warmup", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("sample-gen", "probe", "model", "collect", "allocate",
                      "merge"):
            assert stage in out
        assert "inf/s" in out

    def test_profile_round_json_output(self, capsys):
        code = main(
            [
                "profile-round",
                "--dataset", "ucf101",
                "--classes", "10",
                "--model", "resnet50",
                "--clients", "2",
                "--rounds", "1",
                "--warmup", "0",
                "--dtype", "float64",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["lookup_dtype"] == "float64"
        assert payload["scenario"]["frames"] == 2 * 300
        assert set(payload["stages_ms"]) == {
            "sample-gen", "probe", "model", "collect", "allocate", "merge"
        }
        assert payload["total_ms"] > 0
        assert payload["inferences_per_s"] > 0
