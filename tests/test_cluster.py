"""Tests for the sharded edge-server cluster subsystem."""

import numpy as np
import pytest

from repro.cluster import (
    ASSIGNMENT_POLICIES,
    ClassShardRouter,
    ClusterCoordinator,
    ClusterFramework,
    EdgeServerNode,
    ShardedGlobalCache,
    assign_clients,
)
from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.core.server import CoCaServer, GlobalCacheTable
from repro.data.datasets import get_dataset
from repro.models.zoo import build_model
from repro.sim.metrics import InferenceRecord, per_class_hit_rates
from repro.sim.network import ServerLoadModel


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------


class TestClassShardRouter:
    def test_deterministic(self):
        a = ClassShardRouter(101, 4, salt=5)
        b = ClassShardRouter(101, 4, salt=5)
        ids = np.arange(101)
        assert np.array_equal(a.shard_of(ids), b.shard_of(ids))

    def test_salt_changes_assignment(self):
        ids = np.arange(101)
        a = ClassShardRouter(101, 4, salt=0).shard_of(ids)
        b = ClassShardRouter(101, 4, salt=1).shard_of(ids)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("num_classes,num_shards", [(50, 4), (101, 3), (10, 10)])
    def test_balance(self, num_classes, num_shards):
        sizes = ClassShardRouter(num_classes, num_shards).shard_sizes()
        assert sizes.sum() == num_classes
        assert sizes.max() - sizes.min() <= 1

    def test_partition_is_complete_and_disjoint(self):
        router = ClassShardRouter(30, 4)
        all_classes = np.concatenate(
            [router.classes_of(s) for s in range(4)]
        )
        assert sorted(all_classes.tolist()) == list(range(30))

    def test_scalar_roundtrip(self):
        router = ClassShardRouter(20, 3)
        for class_id in range(20):
            shard = router.shard_of(class_id)
            assert isinstance(shard, int)
            assert class_id in router.classes_of(shard)
            assert router.owned_mask(shard)[class_id]

    def test_mass_per_shard_sums_to_one(self):
        router = ClassShardRouter(20, 3)
        probs = np.random.default_rng(0).dirichlet(np.ones(20))
        mass = router.mass_per_shard(probs)
        assert mass.shape == (3,)
        assert mass.sum() == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ClassShardRouter(4, 5)
        with pytest.raises(ValueError):
            ClassShardRouter(10, 0)
        router = ClassShardRouter(10, 2)
        with pytest.raises(ValueError):
            router.shard_of(10)
        with pytest.raises(ValueError):
            router.classes_of(2)


# ----------------------------------------------------------------------
# Sharded table
# ----------------------------------------------------------------------


def _random_update(rng, num_classes, num_layers, dim, entries=12):
    keys = rng.choice(num_classes * num_layers, size=entries, replace=False)
    update = {
        (int(k // num_layers), int(k % num_layers)): rng.standard_normal(dim)
        for k in keys
    }
    freq = rng.integers(0, 5, size=num_classes).astype(float)
    for class_id, _ in update:
        freq[class_id] = max(freq[class_id], 1.0)  # owners must be active
    return update, freq


class TestShardedGlobalCache:
    def test_matches_single_table_over_uploads(self):
        """Routing uploads shard-by-shard must equal one server's merges."""
        rng = np.random.default_rng(0)
        num_classes, num_layers, dim = 18, 3, 8
        single = GlobalCacheTable(num_classes, num_layers, dim)
        single.class_freq += 10.0
        router = ClassShardRouter(num_classes, 3, salt=2)
        sharded = ShardedGlobalCache(router, initial=single)
        for _ in range(5):
            update, freq = _random_update(rng, num_classes, num_layers, dim)
            keys = np.array(list(update.keys()), dtype=int)
            vectors = np.stack(list(update.values()))
            single.merge_updates(
                keys[:, 0], keys[:, 1], vectors, freq[keys[:, 0]], gamma=0.99
            )
            single.add_frequencies(freq)
            sharded.apply_client_update(update, freq, gamma=0.99)
        merged = sharded.merged_table()
        assert np.array_equal(merged.entries, single.entries)
        assert np.array_equal(merged.filled, single.filled)
        assert np.array_equal(merged.class_freq, single.class_freq)

    def test_touched_shards_reported(self):
        router = ClassShardRouter(12, 3, salt=0)
        sharded = ShardedGlobalCache(router, num_layers=2, dim=4)
        class_a = int(router.classes_of(0)[0])
        class_b = int(router.classes_of(2)[0])
        update = {
            (class_a, 0): np.ones(4),
            (class_a, 1): np.ones(4),
            (class_b, 0): np.ones(4),
        }
        freq = np.zeros(12)
        freq[[class_a, class_b]] = 1.0
        touched = sharded.apply_client_update(update, freq, gamma=0.99)
        assert touched == {0: 2, 2: 1}

    def test_sync_into_refreshes_only_requested_shards(self):
        router = ClassShardRouter(12, 2, salt=0)
        sharded = ShardedGlobalCache(router, num_layers=2, dim=4)
        replica = GlobalCacheTable(12, 2, 4)
        class_a = int(router.classes_of(0)[0])
        class_b = int(router.classes_of(1)[0])
        update = {(class_a, 0): np.ones(4), (class_b, 0): np.ones(4)}
        freq = np.zeros(12)
        freq[[class_a, class_b]] = 1.0
        sharded.apply_client_update(update, freq, gamma=0.99)
        sharded.sync_into(replica, shards=[0])
        assert replica.filled[class_a, 0]
        assert not replica.filled[class_b, 0]  # shard 1 not pulled yet
        sharded.sync_into(replica)
        assert replica.filled[class_b, 0]

    def test_geometry_validation(self):
        router = ClassShardRouter(12, 2)
        with pytest.raises(ValueError):
            ShardedGlobalCache(router)  # no geometry
        sharded = ShardedGlobalCache(router, num_layers=2, dim=4)
        with pytest.raises(ValueError):
            sharded.sync_into(GlobalCacheTable(12, 3, 4))
        with pytest.raises(ValueError):
            sharded.apply_client_update({}, np.zeros(5), gamma=0.99)
        with pytest.raises(ValueError):
            ShardedGlobalCache(router, initial=GlobalCacheTable(13, 2, 4))


# ----------------------------------------------------------------------
# Node queueing
# ----------------------------------------------------------------------


def _node(service_ms=10.0, merge_ms=2.0, clients=0):
    model = build_model("resnet50", get_dataset("ucf101", 10), seed=0)
    server = CoCaServer(model, CoCaConfig())
    load = ServerLoadModel(
        base_latency_ms=50.0,
        service_time_ms=service_ms,
        contention_ms_per_client=0.0,
    )
    node = EdgeServerNode(0, server, load=load, merge_service_ms=merge_ms)
    node.assigned_clients.extend(range(clients))
    return node


class TestEdgeServerNode:
    def test_fcfs_backlog(self):
        node = _node(service_ms=10.0)
        first = node.serve_request(0.0)
        second = node.serve_request(0.0)  # same arrival -> queues behind
        assert first.wait_ms == 0.0
        assert first.finish_ms == 10.0
        assert second.wait_ms == 10.0
        assert second.finish_ms == 20.0
        assert second.response_ms == 70.0  # + base network latency
        assert node.mean_wait_ms == pytest.approx(5.0)

    def test_idle_node_serves_immediately(self):
        node = _node(service_ms=10.0)
        node.serve_request(0.0)
        late = node.serve_request(100.0)
        assert late.wait_ms == 0.0
        assert late.start_ms == 100.0

    def test_contention_scales_with_assigned_clients(self):
        model = build_model("resnet50", get_dataset("ucf101", 10), seed=0)
        server = CoCaServer(model, CoCaConfig())
        load = ServerLoadModel(service_time_ms=5.0, contention_ms_per_client=0.1)
        node = EdgeServerNode(0, server, load=load)
        node.assigned_clients.extend(range(20))
        timing = node.serve_request(0.0)
        assert timing.finish_ms == pytest.approx(5.0 + 0.1 * 20)

    def test_merge_charges_cpu(self):
        node = _node(merge_ms=2.0)
        assert node.serve_merge(0.0, num_entries=5) == 2.0
        assert node.serve_merge(0.0, num_entries=3) == 4.0  # queues
        assert node.serve_merge(10.0, num_entries=0) == 10.0  # no-op
        assert node.merges_served == 2

    def test_sync_charges_per_remote_shard(self):
        node = _node()
        node.sync_service_ms = 2.0
        assert node.serve_sync(0) == 0.0  # co-located shard is free
        assert node.syncs_served == 0
        assert node.serve_sync(3) == 6.0
        assert node.syncs_served == 1
        assert node.total_busy_ms == pytest.approx(6.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            _node(merge_ms=-1.0)
        node = _node()
        with pytest.raises(ValueError):
            node.serve_request(-1.0)
        with pytest.raises(ValueError):
            node.serve_sync(-1)


# ----------------------------------------------------------------------
# Assignment policies and coordinator
# ----------------------------------------------------------------------


class TestAssignment:
    def test_hash_is_uniform_and_deterministic(self):
        a = assign_clients("hash", 12, 4)
        assert np.array_equal(a, assign_clients("hash", 12, 4))
        assert np.array_equal(np.bincount(a, minlength=4), [3, 3, 3, 3])

    def test_least_loaded_balances(self):
        a = assign_clients("least-loaded", 10, 3)
        counts = np.bincount(a, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_region_prefers_owned_mass(self):
        router = ClassShardRouter(12, 2, salt=0)
        sharded = ShardedGlobalCache(router, num_layers=2, dim=4)
        dists = np.zeros((2, 12))
        # Each client streams only classes owned by one shard.
        dists[0, router.classes_of(1)] = 1.0 / router.classes_of(1).size
        dists[1, router.classes_of(0)] = 1.0 / router.classes_of(0).size
        a = assign_clients(
            "region", 2, 2, sharded=sharded, client_distributions=dists
        )
        assert a.tolist() == [1, 0]

    def test_region_caps_node_population(self):
        router = ClassShardRouter(12, 2, salt=0)
        sharded = ShardedGlobalCache(router, num_layers=2, dim=4)
        # Every client prefers shard 0; capacity forces a spill.
        dists = np.zeros((6, 12))
        dists[:, router.classes_of(0)] = 1.0 / router.classes_of(0).size
        a = assign_clients(
            "region", 6, 2, sharded=sharded, client_distributions=dists,
            region_slack=0,
        )
        counts = np.bincount(a, minlength=2)
        assert counts[0] == 3 and counts[1] == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            assign_clients("round-robin", 4, 2)
        assert set(ASSIGNMENT_POLICIES) == {"hash", "region", "least-loaded"}

    def test_region_requires_distributions(self):
        with pytest.raises(ValueError):
            assign_clients("region", 4, 2)

    def test_region_rejects_node_shard_mismatch(self):
        router = ClassShardRouter(12, 2, salt=0)
        sharded = ShardedGlobalCache(router, num_layers=2, dim=4)
        dists = np.full((12, 12), 1.0 / 12)
        with pytest.raises(ValueError, match="hosted shard"):
            assign_clients(
                "region", 12, 4, sharded=sharded, client_distributions=dists
            )


class TestCoordinator:
    def _cluster_bits(self, sync_interval):
        model = build_model("resnet50", get_dataset("ucf101", 12), seed=0)
        canonical = CoCaServer(model, CoCaConfig())
        router = ClassShardRouter(model.num_classes, 2, salt=0)
        sharded = ShardedGlobalCache(router, initial=canonical.table)
        nodes = [
            EdgeServerNode(i, canonical.replicate()) for i in range(2)
        ]
        return sharded, nodes, ClusterCoordinator(
            sharded, nodes, sync_interval=sync_interval
        )

    def test_sync_interval_counts_rounds(self):
        _, _, coord = self._cluster_bits(sync_interval=3)
        assert coord.staleness_bound_rounds == 2
        assert not coord.end_round()
        assert not coord.end_round()
        assert coord.end_round()  # third round -> full sync
        assert coord.syncs_performed == 1
        assert coord.rounds_since_sync == 0

    def test_local_shard_fresh_between_syncs(self):
        sharded, nodes, coord = self._cluster_bits(sync_interval=5)
        router = sharded.router
        dim = sharded.dim
        class_a = int(router.classes_of(0)[0])
        class_b = int(router.classes_of(1)[0])
        update = {(class_a, 0): np.ones(dim), (class_b, 0): np.ones(dim)}
        freq = np.zeros(router.num_classes)
        freq[[class_a, class_b]] = 1.0
        sharded.apply_client_update(update, freq, gamma=0.99)
        assert not coord.end_round()  # local refresh only
        # Node 0 sees its own shard's write, not the remote one.
        assert np.array_equal(
            nodes[0].server.table.entries[class_a, 0],
            sharded.shards[0].entries[class_a, 0],
        )
        assert not np.array_equal(
            nodes[0].server.table.entries[class_b, 0],
            sharded.shards[1].entries[class_b, 0],
        )
        coord.sync_all()
        assert np.array_equal(
            nodes[0].server.table.entries[class_b, 0],
            sharded.shards[1].entries[class_b, 0],
        )

    def test_node_count_must_match_shards(self):
        sharded, nodes, _ = self._cluster_bits(sync_interval=1)
        with pytest.raises(ValueError):
            ClusterCoordinator(sharded, nodes[:1])
        with pytest.raises(ValueError):
            ClusterCoordinator(sharded, nodes, sync_interval=0)


# ----------------------------------------------------------------------
# End-to-end cluster runs
# ----------------------------------------------------------------------


def _cluster_kwargs(**overrides):
    kwargs = dict(
        dataset=get_dataset("ucf101", 15),
        model_name="resnet50",
        num_clients=3,
        config=CoCaConfig(frames_per_round=40),
        seed=5,
        non_iid_level=0.5,
    )
    kwargs.update(overrides)
    return kwargs


class TestClusterFramework:
    def test_one_shard_reproduces_single_server_exactly(self):
        kwargs = _cluster_kwargs()
        reference = CoCaFramework(**kwargs).run(2)
        cluster_fw = ClusterFramework(num_shards=1, **kwargs)
        cluster = cluster_fw.run(2)
        merged = cluster_fw.merged_table()
        table = reference.server.table
        assert np.array_equal(merged.entries, table.entries)
        assert np.array_equal(merged.filled, table.filled)
        assert np.array_equal(merged.class_freq, table.class_freq)
        for a, b in zip(cluster.metrics.records, reference.metrics.records):
            assert a.predicted_class == b.predicted_class
            assert a.hit_layer == b.hit_layer
            assert a.latency_ms == pytest.approx(b.latency_ms, abs=1e-12)

    def test_sync_interval_one_is_exact_for_many_shards(self):
        kwargs = _cluster_kwargs()
        reference = CoCaFramework(**kwargs).run(2)
        cluster_fw = ClusterFramework(num_shards=3, sync_interval=1, **kwargs)
        cluster = cluster_fw.run(2)
        merged = cluster_fw.merged_table()
        assert np.array_equal(merged.entries, reference.server.table.entries)
        ref_rates = per_class_hit_rates(reference.metrics.records)
        cluster_rates = per_class_hit_rates(cluster.metrics.records)
        assert ref_rates == cluster_rates

    def test_stale_sync_still_runs_and_counts(self):
        cluster_fw = ClusterFramework(
            num_shards=3, sync_interval=3, **_cluster_kwargs()
        )
        result = cluster_fw.run(3)
        assert result.coordinator.syncs_performed == 1
        assert [r.synced for r in result.rounds] == [False, False, True]
        assert result.summary().num_samples == 3 * 3 * 40

    def test_preset_cache_mode(self):
        cluster_fw = ClusterFramework(
            num_shards=2, enable_dca=False, **_cluster_kwargs()
        )
        result = cluster_fw.run(1)
        assert result.summary().hit_ratio > 0

    def test_virtual_time_advances_and_throughput_positive(self):
        cluster_fw = ClusterFramework(num_shards=2, **_cluster_kwargs())
        result = cluster_fw.run(2, warmup_rounds=1)
        assert result.measured_span_ms > 0
        assert result.throughput_inferences_per_s > 0
        assert result.throughput_rounds_per_s > 0
        assert result.measured_client_rounds == 2 * 3
        # Warmup rounds are excluded from the measured span.
        assert cluster_fw.virtual_now_ms() > result.measured_span_ms

    def test_requests_served_in_arrival_order_not_id_order(self):
        """A late client must not delay an earlier-arriving one (FCFS)."""
        load = ServerLoadModel(service_time_ms=10.0, base_latency_ms=0.0,
                               contention_ms_per_client=0.0)
        cluster_fw = ClusterFramework(
            num_shards=1, **_cluster_kwargs(num_clients=2, load=load)
        )
        # Client 0 is far ahead in virtual time; client 1 arrives at 0.
        cluster_fw.client_clocks[0].advance(100.0)
        cluster_fw.run_round(0)
        node = cluster_fw.nodes[0]
        # FCFS: client 1 served at t=0 (idle node), client 0 at t=100 —
        # nobody waits.  Id-order serving would have charged client 1 a
        # 110 ms wait behind client 0.
        assert node.total_wait_ms == pytest.approx(0.0)

    def test_cross_shard_sync_costs_virtual_time(self):
        kwargs = _cluster_kwargs()
        busy = {}
        for interval in (1, 3):
            fw = ClusterFramework(
                num_shards=3, sync_interval=interval,
                sync_service_ms=50.0, **kwargs
            )
            fw.run(3)
            busy[interval] = sum(n.total_busy_ms for n in fw.nodes)
        # Interval 1 syncs three times, interval 3 once: two extra syncs
        # of 3 nodes x 2 remote shards x 50 ms each.
        assert busy[1] - busy[3] == pytest.approx(2 * 3 * 2 * 50.0)

    def test_fewer_queueing_with_more_shards(self):
        load = ServerLoadModel(service_time_ms=20.0, round_duration_ms=500.0)
        kwargs = _cluster_kwargs(num_clients=6, load=load)
        waits = {}
        for shards in (1, 3):
            result = ClusterFramework(num_shards=shards, **kwargs).run(1)
            waits[shards] = result.rounds[0].mean_response_wait_ms
        assert waits[3] < waits[1]

    def test_assignment_recorded_on_nodes(self):
        cluster_fw = ClusterFramework(
            num_shards=3, assignment_policy="least-loaded", **_cluster_kwargs()
        )
        populations = [len(n.assigned_clients) for n in cluster_fw.nodes]
        assert sum(populations) == 3
        assert max(populations) - min(populations) <= 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ClusterFramework(num_shards=0, **_cluster_kwargs())


# ----------------------------------------------------------------------
# Supporting core APIs
# ----------------------------------------------------------------------


class TestReplication:
    def test_table_copy_is_independent(self):
        table = GlobalCacheTable(4, 2, 3)
        table.install(1, 0, np.ones(3))
        clone = table.copy()
        clone.install(2, 1, np.ones(3))
        assert not table.filled[2, 1]
        assert clone.filled[1, 0]
        assert np.array_equal(clone.entries[1, 0], table.entries[1, 0])

    def test_server_replicate_allocates_identically(self):
        model = build_model("resnet50", get_dataset("ucf101", 10), seed=1)
        server = CoCaServer(model, CoCaConfig())
        server.initialize_from_shared_dataset(np.random.default_rng(0))
        replica = server.replicate()
        assert np.array_equal(replica.table.entries, server.table.entries)
        assert np.array_equal(replica.table.class_freq, server.table.class_freq)
        assert np.array_equal(
            replica.reference_similarity_floor, server.reference_similarity_floor
        )
        timestamps = np.zeros(model.num_classes)
        budget = server.cache_size_limit_bytes()
        cache_a, _ = server.allocate(
            timestamps, server.reference_hit_ratio, budget
        )
        cache_b, _ = replica.allocate(
            timestamps, replica.reference_hit_ratio, budget
        )
        assert cache_a.content_equal(cache_b)
        # Replica state is independent: merging there leaves the original.
        replica.table.class_freq[0] += 99.0
        assert server.table.class_freq[0] != replica.table.class_freq[0]

    def test_cache_content_equal_detects_differences(self):
        model = build_model("resnet50", get_dataset("ucf101", 10), seed=1)
        server = CoCaServer(model, CoCaConfig())
        server.initialize_from_shared_dataset(np.random.default_rng(0))
        layer_classes = {0: np.arange(5), 1: np.arange(3)}
        cache_a = server.build_cache(layer_classes)
        cache_b = server.build_cache(layer_classes)
        assert cache_a.content_equal(cache_b)
        cache_c = server.build_cache({0: np.arange(5)})
        assert not cache_a.content_equal(cache_c)
        ids, mat = cache_b.entries_at(0)
        cache_b.set_layer_entries(0, ids, mat + 1e-6)
        assert not cache_a.content_equal(cache_b)
        assert cache_a.content_equal(cache_b, atol=1e-3)


class TestRoundReportLatency:
    def test_total_latency_sums_records(self):
        from repro.core.client import RoundReport

        report = RoundReport(
            client_id=0,
            records=[
                InferenceRecord(0, 0, 10.0),
                InferenceRecord(1, 1, 2.5),
            ],
            update_entries={},
            frequencies=np.zeros(2),
        )
        assert report.total_latency_ms == pytest.approx(12.5)


# ----------------------------------------------------------------------
# Metrics helper
# ----------------------------------------------------------------------


class TestPerClassHitRates:
    def test_counts_and_floor(self):
        records = [
            InferenceRecord(0, 0, 1.0, hit_layer=1),
            InferenceRecord(0, 0, 1.0, hit_layer=None),
            InferenceRecord(1, 1, 1.0, hit_layer=0),
        ]
        assert per_class_hit_rates(records) == {0: 0.5, 1: 1.0}
        assert per_class_hit_rates(records, min_samples=2) == {0: 0.5}
        with pytest.raises(ValueError):
            per_class_hit_rates(records, min_samples=0)


class TestNodeWorkspaceSharing:
    def test_assigned_clients_share_their_node_workspace(self):
        cluster = ClusterFramework(
            dataset=get_dataset("ucf101", 12),
            model_name="resnet50",
            num_shards=2,
            num_clients=4,
            config=CoCaConfig(frames_per_round=30),
            seed=5,
        )
        for client_id, node_id in enumerate(cluster.assignment):
            engine = cluster.clients[client_id].batch_engine
            assert engine.workspace is cluster.nodes[node_id].workspace
        assert cluster.nodes[0].workspace is not cluster.nodes[1].workspace


# ----------------------------------------------------------------------
# Delta-based cross-shard sync
# ----------------------------------------------------------------------


class _TableHolder:
    """Minimal server stand-in: coordinators only touch ``server.table``."""

    def __init__(self, table: GlobalCacheTable) -> None:
        self.table = table


class TestDeltaSync:
    I, L, D = 60, 6, 8

    def _build(self, delta_sync, num_shards=3, fallback=0.5):
        router = ClassShardRouter(self.I, num_shards, salt=7)
        sharded = ShardedGlobalCache(router, num_layers=self.L, dim=self.D)
        nodes = [
            EdgeServerNode(i, _TableHolder(GlobalCacheTable(self.I, self.L, self.D)))
            for i in range(num_shards)
        ]
        coord = ClusterCoordinator(
            sharded,
            nodes,
            sync_interval=1,
            delta_sync=delta_sync,
            delta_fallback_fraction=fallback,
        )
        return sharded, nodes, coord

    def _run_uploads(self, sharded, coord, rounds=6, classes_per_upload=4):
        rng = np.random.default_rng(42)
        for _ in range(rounds):
            for _ in range(2):
                ids = rng.choice(self.I, size=classes_per_upload, replace=False)
                update = {
                    (int(cid), int(rng.integers(self.L))): rng.normal(size=self.D)
                    for cid in ids
                }
                freq = np.zeros(self.I)
                freq[ids] = rng.integers(1, 5, size=ids.size).astype(float)
                sharded.apply_client_update(update, freq, gamma=0.99)
            coord.end_round()

    def test_delta_sync_replicas_bit_identical_to_full(self):
        s_delta, n_delta, c_delta = self._build(delta_sync=True)
        s_full, n_full, c_full = self._build(delta_sync=False)
        self._run_uploads(s_delta, c_delta)
        self._run_uploads(s_full, c_full)
        for a, b in zip(n_delta, n_full):
            assert np.array_equal(a.server.table.entries, b.server.table.entries)
            assert np.array_equal(a.server.table.filled, b.server.table.filled)
            assert np.array_equal(
                a.server.table.class_freq, b.server.table.class_freq
            )
        assert np.array_equal(
            s_delta.merged_table().entries, s_full.merged_table().entries
        )

    def test_delta_ships_fewer_bytes_when_few_rows_dirty(self):
        s_delta, _, c_delta = self._build(delta_sync=True)
        s_full, _, c_full = self._build(delta_sync=False)
        self._run_uploads(s_delta, c_delta, classes_per_upload=2)
        self._run_uploads(s_full, c_full, classes_per_upload=2)
        assert c_delta.sync_bytes_shipped < c_full.sync_bytes_shipped
        assert c_delta.delta_syncs > 0

    def test_first_sync_is_full_fallback(self):
        sharded, _, coord = self._build(delta_sync=True)
        coord.sync_all()
        remote_transfers = len(coord.nodes) * (sharded.num_shards - 1)
        assert coord.full_syncs == remote_transfers
        assert coord.delta_syncs == 0

    def test_fallback_threshold_degrades_to_full(self):
        # Dirty every class -> dirty fraction 1.0 > any threshold.
        sharded, _, coord = self._build(delta_sync=True, fallback=0.5)
        coord.sync_all()  # establish a base epoch everywhere
        freq = np.ones(self.I)
        update = {
            (cid, 0): np.random.default_rng(cid).normal(size=self.D)
            for cid in range(self.I)
        }
        sharded.apply_client_update(update, freq, gamma=0.99)
        before_full = coord.full_syncs
        coord.sync_all()
        assert coord.full_syncs > before_full
        assert coord.delta_syncs == 0

    def test_epoch_counts_uploads(self):
        sharded, _, _ = self._build(delta_sync=True)
        assert sharded.epoch == 0
        sharded.apply_client_update({}, np.zeros(self.I), gamma=0.99)
        assert sharded.epoch == 1

    def test_sync_delta_into_matches_sync_into(self):
        sharded, _, coord = self._build(delta_sync=True)
        rng = np.random.default_rng(3)
        replica_a = GlobalCacheTable(self.I, self.L, self.D)
        replica_b = GlobalCacheTable(self.I, self.L, self.D)
        synced_at = -1
        for _ in range(4):
            ids = rng.choice(self.I, size=5, replace=False)
            update = {
                (int(cid), int(rng.integers(self.L))): rng.normal(size=self.D)
                for cid in ids
            }
            freq = np.zeros(self.I)
            freq[ids] = 1.0
            sharded.apply_client_update(update, freq, gamma=0.99)
            delta = sharded.sync_delta_into(replica_a, 0, since_epoch=synced_at)
            synced_at = delta.target_epoch
            sharded.sync_into(replica_b, shards=[0])
            rows = sharded.router.classes_of(0)
            assert np.array_equal(replica_a.entries[rows], replica_b.entries[rows])
            assert np.array_equal(replica_a.filled[rows], replica_b.filled[rows])
            assert np.array_equal(
                replica_a.class_freq[rows], replica_b.class_freq[rows]
            )

    def test_node_payload_telemetry_accumulates(self):
        sharded, nodes, coord = self._build(delta_sync=True)
        self._run_uploads(sharded, coord, rounds=2)
        assert all(node.sync_payload_bytes > 0 for node in nodes)
        assert sum(node.sync_payload_bytes for node in nodes) == (
            coord.sync_bytes_shipped
        )

    def test_coordinator_rejects_bad_fallback_fraction(self):
        router = ClassShardRouter(self.I, 2, salt=0)
        sharded = ShardedGlobalCache(router, num_layers=self.L, dim=self.D)
        nodes = [
            EdgeServerNode(i, _TableHolder(GlobalCacheTable(self.I, self.L, self.D)))
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="delta_fallback_fraction"):
            ClusterCoordinator(sharded, nodes, delta_fallback_fraction=0.0)
