"""Tests for the ``REPRO_CONTRACTS``-gated runtime contract layer.

Every contract function must (a) pass on legitimate state and (b) raise
:class:`ContractViolation` on each violated invariant; the wiring tests
confirm the production call sites actually invoke the checks when the
gate is on and skip them when it is off.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import contracts
from repro.contracts import ContractViolation
from repro.core.cache import SemanticCache
from repro.sim.clock import VirtualClock

REPO_ROOT = Path(__file__).resolve().parents[1]


def unit_rows(n: int, d: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((n, d))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


# ----------------------------------------------------------------------
# Gate mechanics
# ----------------------------------------------------------------------

def test_violation_is_assertion_error():
    assert issubclass(ContractViolation, AssertionError)


def test_set_enabled_returns_previous_and_activated_restores():
    before = contracts.enabled()
    with contracts.activated():
        assert contracts.enabled()
        with contracts.activated(False):
            assert not contracts.enabled()
        assert contracts.enabled()
    assert contracts.enabled() == before


def test_env_var_controls_default_gate():
    script = "import repro.contracts as c; print(c.ENABLED)"
    for value, expected in (("", "False"), ("0", "False"), ("1", "True")):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"REPRO_CONTRACTS": value,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.stdout.strip() == expected, result.stderr


def test_require_raises_with_message():
    contracts.require(True, "fine")
    with pytest.raises(ContractViolation, match="broken thing"):
        contracts.require(False, "broken thing")


# ----------------------------------------------------------------------
# check_layer_entries
# ----------------------------------------------------------------------

def good_layer(n=4, d=8):
    ids = np.arange(n)
    stored = np.ascontiguousarray(unit_rows(n, d), dtype=np.float32)
    return ids, stored


def test_layer_entries_pass_on_good_state():
    ids, stored = good_layer()
    contracts.check_layer_entries(0, ids, stored, np.float32, 10)


def test_layer_entries_wrong_dtype_fires():
    ids, stored = good_layer()
    with pytest.raises(ContractViolation, match="dtype"):
        contracts.check_layer_entries(
            0, ids, stored.astype(np.float64), np.float32, 10
        )


def test_layer_entries_non_contiguous_fires():
    ids, stored = good_layer()
    with pytest.raises(ContractViolation, match="C-contiguous"):
        contracts.check_layer_entries(
            0, ids, np.asfortranarray(stored), np.float32, 10
        )


def test_layer_entries_duplicate_ids_fire():
    ids, stored = good_layer()
    with pytest.raises(ContractViolation, match="duplicate"):
        contracts.check_layer_entries(
            0, np.zeros_like(ids), stored, np.float32, 10
        )


def test_layer_entries_out_of_range_id_fires():
    ids, stored = good_layer()
    with pytest.raises(ContractViolation, match="out of"):
        contracts.check_layer_entries(0, ids + 100, stored, np.float32, 10)


def test_layer_entries_non_unit_norm_fires():
    ids, stored = good_layer()
    scaled = np.ascontiguousarray(2.0 * stored)
    with pytest.raises(ContractViolation, match="norm"):
        contracts.check_layer_entries(0, ids, scaled, np.float32, 10)


def test_layer_entries_row_count_mismatch_fires():
    ids, stored = good_layer()
    with pytest.raises(ContractViolation, match="ids vs"):
        contracts.check_layer_entries(0, ids[:-1], stored, np.float32, 10)


# ----------------------------------------------------------------------
# Merge contracts
# ----------------------------------------------------------------------

def test_merge_flat_indices_pass_and_fail():
    contracts.check_merge_flat_indices(np.array([], dtype=np.int64), 10)
    contracts.check_merge_flat_indices(np.array([0, 3, 9]), 10)
    with pytest.raises(ContractViolation, match="out of"):
        contracts.check_merge_flat_indices(np.array([0, 10]), 10)
    with pytest.raises(ContractViolation, match="duplicate"):
        contracts.check_merge_flat_indices(np.array([2, 2]), 10)


def test_merged_rows_normalized_pass_and_fail():
    table = unit_rows(6, 5)
    contracts.check_merged_rows_normalized(table, np.array([0, 3, 5]))
    contracts.check_merged_rows_normalized(table, np.array([], dtype=int))
    table[3] *= 1.5
    with pytest.raises(ContractViolation, match="norm"):
        contracts.check_merged_rows_normalized(table, np.array([3]))


# ----------------------------------------------------------------------
# Serving admission contracts
# ----------------------------------------------------------------------

def test_admission_invariants_pass_on_balanced_ledger():
    contracts.check_admission_invariants(
        queue_depth=0, queue_bound=4, submitted=0, in_flight=0, outcomes={}
    )
    contracts.check_admission_invariants(
        queue_depth=2,
        queue_bound=4,
        submitted=10,
        in_flight=1,
        outcomes={"success": 5, "timeout": 1, "shed": 1},
    )


def test_admission_sharded_ledger_uses_total_queued():
    # The bound check sees one lane's depth; conservation needs the sum
    # across every lane.
    contracts.check_admission_invariants(
        queue_depth=1,
        queue_bound=4,
        submitted=6,
        in_flight=2,
        outcomes={"success": 1},
        total_queued=3,
    )
    with pytest.raises(ContractViolation, match="conservation"):
        contracts.check_admission_invariants(
            queue_depth=1,
            queue_bound=4,
            submitted=6,
            in_flight=2,
            outcomes={"success": 1},
            total_queued=2,
        )
    with pytest.raises(ContractViolation, match="less than one queue"):
        contracts.check_admission_invariants(
            queue_depth=3,
            queue_bound=4,
            submitted=3,
            in_flight=0,
            outcomes={},
            total_queued=1,
        )


def test_admission_queue_bound_fires():
    with pytest.raises(ContractViolation, match="queue depth"):
        contracts.check_admission_invariants(
            queue_depth=5, queue_bound=4, submitted=5, in_flight=0, outcomes={}
        )
    with pytest.raises(ContractViolation, match="queue depth"):
        contracts.check_admission_invariants(
            queue_depth=-1, queue_bound=4, submitted=0, in_flight=1, outcomes={}
        )


def test_admission_unknown_outcome_fires():
    with pytest.raises(ContractViolation, match="unknown terminal"):
        contracts.check_admission_invariants(
            queue_depth=0,
            queue_bound=4,
            submitted=1,
            in_flight=0,
            outcomes={"dropped": 1},
        )


def test_admission_lost_response_fires():
    # 3 submitted but only 2 accounted for anywhere: one was lost.
    with pytest.raises(ContractViolation, match="conservation"):
        contracts.check_admission_invariants(
            queue_depth=0,
            queue_bound=4,
            submitted=3,
            in_flight=1,
            outcomes={"success": 1},
        )


def test_admission_double_resolution_fires():
    # More terminal outcomes than submissions: something resolved twice.
    with pytest.raises(ContractViolation, match="conservation"):
        contracts.check_admission_invariants(
            queue_depth=0,
            queue_bound=4,
            submitted=1,
            in_flight=0,
            outcomes={"success": 1, "timeout": 1},
        )


# ----------------------------------------------------------------------
# Clock and workspace contracts
# ----------------------------------------------------------------------

def test_clock_monotonic_pass_and_fail():
    contracts.check_clock_monotonic(1.0, 1.0)
    contracts.check_clock_monotonic(1.0, 2.0)
    with pytest.raises(ContractViolation, match="backwards"):
        contracts.check_clock_monotonic(2.0, 1.0)


def test_distinct_views_pass_and_fail():
    pool = np.zeros(10)
    contracts.check_distinct_views(a=pool[:5], b=pool[5:])
    contracts.check_distinct_views(a=pool[:0], b=pool)  # empty skipped
    with pytest.raises(ContractViolation, match="alias"):
        contracts.check_distinct_views(a=pool[:6], b=pool[4:])


# ----------------------------------------------------------------------
# Call-site wiring
# ----------------------------------------------------------------------

def test_cache_calls_layer_contract_only_when_enabled(monkeypatch):
    calls: list[tuple] = []
    monkeypatch.setattr(
        contracts, "check_layer_entries",
        lambda *a, **k: calls.append(a),
    )
    cache = SemanticCache(num_classes=6, dtype=np.float32)
    with contracts.activated(False):
        cache.set_layer_entries(0, np.arange(3), unit_rows(3, 4))
    assert calls == []
    with contracts.activated():
        cache.set_layer_entries(1, np.arange(3), unit_rows(3, 4))
    assert len(calls) == 1


def test_clock_calls_monotonic_contract_only_when_enabled(monkeypatch):
    calls: list[tuple] = []
    monkeypatch.setattr(
        contracts, "check_clock_monotonic",
        lambda *a: calls.append(a),
    )
    clock = VirtualClock()
    with contracts.activated(False):
        clock.advance(5.0)
    assert calls == []
    with contracts.activated():
        clock.advance(5.0)
        clock.advance_to(20.0)
    assert len(calls) == 2


def test_legitimate_cache_use_passes_under_contracts():
    with contracts.activated():
        cache = SemanticCache(num_classes=8, dtype=np.float32)
        # Deliberately unnormalized input: set_layer_entries normalizes
        # on insertion, so the stored table must satisfy the contract.
        cache.set_layer_entries(0, np.arange(5), 3.0 * unit_rows(5, 6))


def test_clock_use_passes_under_contracts():
    with contracts.activated():
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance_to(10.0)
        clock.advance_to(4.0)  # past event: no-op, still monotone
        assert clock.now_ms == 10.0
