"""Tests for the ``repro lint`` static invariant checker.

Each rule is exercised against a positive (violating) and negative
(clean) fixture under ``tests/lint_fixtures/``; on top of that the suite
pins the baseline/suppression machinery, the CLI exit codes, and — the
point of the whole exercise — that ``src/`` itself lints clean modulo
the checked-in baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    apply_overrides,
    lint_paths,
    load_all_rules,
    load_baseline,
    write_baseline,
)
from repro.lint.baseline import Baseline

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

#: Overrides retargeting path-scoped rules at the fixture files.
HOT_FIXTURES = LintConfig(
    hot_path_modules=(
        "tests/lint_fixtures/dtype_bad.py",
        "tests/lint_fixtures/dtype_good.py",
        "tests/lint_fixtures/hygiene_bad.py",
    )
)
WALLCLOCK_FIXTURES = LintConfig(wallclock_dirs=("tests/lint_fixtures",))
PARITY_FIXTURES = LintConfig(
    tests_dirs=("tests/lint_fixtures/fake_tests",)
)


def run_fixture(
    filename: str,
    config: LintConfig | None = None,
    rule_ids: list[str] | None = None,
):
    return lint_paths(
        [FIXTURES / filename],
        config=config,
        root=REPO_ROOT,
        rule_ids=rule_ids,
    )


def new_rules(report) -> list[str]:
    return sorted(f.rule for f in report.new)


# ----------------------------------------------------------------------
# Per-rule fixtures: positive fires, negative stays quiet
# ----------------------------------------------------------------------

def test_no_global_rng_fires_on_every_spelling():
    report = run_fixture("rng_bad.py")
    assert new_rules(report) == ["no-global-rng"] * 4
    messages = " ".join(f.message for f in report.new)
    assert "np.random.seed" in messages


def test_no_global_rng_quiet_on_seeded_generators():
    assert run_fixture("rng_good.py").new == []


def test_dtype_discipline_fires_on_hot_path():
    # Two implicit-float64 constructors plus three copying casts — one
    # float cast and two quantized-buffer casts (int8 codes, staging).
    report = run_fixture("dtype_bad.py", config=HOT_FIXTURES)
    assert new_rules(report) == ["dtype-discipline"] * 5


def test_dtype_discipline_scoped_to_hot_path_modules():
    # Same violating file, but not configured as a hot path: quiet.
    assert run_fixture("dtype_bad.py").new == []


def test_dtype_discipline_quiet_on_explicit_dtypes():
    assert run_fixture("dtype_good.py", config=HOT_FIXTURES).new == []


def test_zero_alloc_kernel_fires_inside_marked_kernel_only():
    report = run_fixture("kernel_bad.py")
    assert new_rules(report) == ["zero-alloc-kernel"] * 2
    # The unregistered helper's np.zeros is not flagged.
    assert all("plain_helper" not in f.message for f in report.new)


def test_zero_alloc_kernel_quiet_on_out_parameter_kernel():
    assert run_fixture("kernel_good.py").new == []


def test_wallclock_fires_in_configured_dirs():
    report = run_fixture("wallclock_bad.py", config=WALLCLOCK_FIXTURES)
    assert new_rules(report) == ["no-wallclock-in-sim"] * 4


def test_wallclock_quiet_outside_configured_dirs():
    assert run_fixture("wallclock_bad.py").new == []


def test_wallclock_exemption_is_honoured():
    config = apply_overrides(
        WALLCLOCK_FIXTURES,
        {"wallclock-exempt": ["tests/lint_fixtures/wallclock_bad.py"]},
    )
    assert run_fixture("wallclock_bad.py", config=config).new == []


def test_wallclock_quiet_on_virtual_time_code():
    assert run_fixture("wallclock_good.py", config=WALLCLOCK_FIXTURES).new == []


def test_reference_parity_fires_on_orphan_and_untested_pair():
    report = run_fixture("parity_bad.py", config=PARITY_FIXTURES)
    assert new_rules(report) == ["reference-parity"] * 2
    messages = " ".join(f.message for f in report.new)
    assert "lonely" in messages and "untested" in messages


def test_reference_parity_quiet_on_paired_and_tested():
    assert run_fixture("parity_good.py", config=PARITY_FIXTURES).new == []


def test_hygiene_rules_fire():
    report = run_fixture("hygiene_bad.py")
    assert new_rules(report) == [
        "mutable-default",
        "mutable-default",
        "shape-comment-drift",
        "suppression-justification",
    ]


def test_hygiene_quiet_on_clean_file():
    assert run_fixture("hygiene_good.py").new == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_justified_suppression_moves_finding_to_suppressed():
    report = run_fixture("suppress_ok.py")
    assert report.new == []
    assert [f.rule for f in report.suppressed] == ["no-global-rng"]


def test_bare_suppression_is_not_honoured():
    # hygiene_bad.py tries to hide a dtype violation behind a
    # justification-less disable comment; with the file configured as a
    # hot path the violation must still surface as new.
    report = run_fixture("hygiene_bad.py", config=HOT_FIXTURES)
    assert "dtype-discipline" in new_rules(report)
    assert report.suppressed == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def test_baseline_roundtrip_and_line_drift_stability(tmp_path):
    target = tmp_path / "debt.py"
    source = (FIXTURES / "rng_bad.py").read_text(encoding="utf-8")
    target.write_text(source, encoding="utf-8")

    first = lint_paths([target], config=LintConfig(), root=tmp_path)
    assert len(first.new) == 4
    baseline_path = tmp_path / "lint_baseline.json"
    write_baseline(baseline_path, first.new)

    # Shift every finding down three lines: fingerprints must survive.
    target.write_text("# pad\n# pad\n# pad\n" + source, encoding="utf-8")
    second = lint_paths(
        [target],
        config=LintConfig(),
        root=tmp_path,
        baseline=load_baseline(baseline_path),
    )
    assert second.new == []
    assert len(second.baselined) == 4
    assert second.ok


def test_absent_baseline_is_empty(tmp_path):
    loaded = load_baseline(tmp_path / "missing.json")
    assert loaded.fingerprints == Baseline.empty().fingerprints


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    report = lint_paths([bad], config=LintConfig(), root=tmp_path)
    assert new_rules(report) == ["syntax-error"]


def test_unknown_rule_id_rejected():
    with pytest.raises(KeyError):
        run_fixture("rng_good.py", rule_ids=["no-such-rule"])


def test_rule_filter_restricts_scan():
    report = run_fixture("hygiene_bad.py", rule_ids=["mutable-default"])
    assert new_rules(report) == ["mutable-default"] * 2


# ----------------------------------------------------------------------
# Registry / config
# ----------------------------------------------------------------------

def test_registry_contains_the_documented_rules():
    assert set(load_all_rules()) >= {
        "no-global-rng",
        "dtype-discipline",
        "zero-alloc-kernel",
        "no-wallclock-in-sim",
        "reference-parity",
        "mutable-default",
        "shape-comment-drift",
        "suppression-justification",
    }


def test_overrides_accept_dashes_and_underscores():
    base = LintConfig()
    a = apply_overrides(base, {"hot-path-modules": ["x.py"]})
    b = apply_overrides(base, {"hot_path_modules": ["x.py"]})
    assert a.hot_path_modules == b.hot_path_modules == ("x.py",)
    # Unknown keys are ignored, not fatal.
    assert apply_overrides(base, {"bogus": 1}) == base


# ----------------------------------------------------------------------
# The repo itself
# ----------------------------------------------------------------------

def test_src_is_clean_modulo_checked_in_baseline():
    report = lint_paths(
        [REPO_ROOT / "src"],
        root=REPO_ROOT,
        baseline=load_baseline(REPO_ROOT / "lint_baseline.json"),
    )
    assert report.ok, "\n".join(f.format() for f in report.new)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_cli_exit_codes_and_json():
    clean = run_cli(str(FIXTURES / "rng_good.py"), "--no-baseline")
    assert clean.returncode == 0, clean.stderr

    dirty = run_cli(str(FIXTURES / "rng_bad.py"), "--no-baseline", "--json")
    assert dirty.returncode == 1
    payload = json.loads(dirty.stdout)
    assert payload["ok"] is False
    assert len(payload["new"]) == 4

    missing = run_cli(str(FIXTURES / "no_such_file.py"))
    assert missing.returncode == 2


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    assert "no-global-rng" in result.stdout
    assert "zero-alloc-kernel" in result.stdout
