"""System-level property tests: invariants that must hold for any seed.

These complement the per-module property tests with hypothesis-driven
checks over whole protocol rounds and the allocation machinery, plus
failure-injection cases (degenerate budgets, empty caches, single-class
streams).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import SemanticCache
from repro.core.config import CoCaConfig
from repro.core.engine import CachedInferenceEngine
from repro.core.framework import CoCaFramework
from repro.data.datasets import DatasetSpec, get_dataset
from repro.data.stream import Frame


@pytest.fixture(scope="module")
def dataset():
    return get_dataset("ucf101", 20)


class TestRoundInvariants:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=5, deadline=None)
    def test_one_round_invariants(self, seed):
        """For any seed: budgets respected, records complete, latency in
        [min block prefix, full + all lookups], entries unit-norm."""
        dataset = get_dataset("ucf101", 15)
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=2,
            config=CoCaConfig(theta=0.05, frames_per_round=40),
            seed=seed,
            non_iid_level=1.0,
        )
        reports = fw.run_round(0)
        assert len(reports) == 2
        for report, client in zip(reports, fw.clients):
            assert len(report.records) == 40
            cache = client.engine.cache
            if cache is not None:
                size = cache.size_bytes(fw.model.profile.entry_size_bytes)
                assert size <= client.cache_budget_bytes
            for record in report.records:
                assert 0 < record.latency_ms <= fw.model.total_compute_ms * 2
                assert 0 <= record.predicted_class < fw.model.num_classes
            assert report.frequencies.sum() == pytest.approx(40.0)
        norms = np.linalg.norm(fw.server.table.entries, axis=2)
        assert np.allclose(norms[fw.server.table.filled], 1.0)

    @given(
        theta=st.floats(min_value=0.01, max_value=0.3),
        budget_fraction=st.floats(min_value=0.02, max_value=0.5),
    )
    @settings(max_examples=5, deadline=None)
    def test_any_config_terminates_with_valid_metrics(self, theta, budget_fraction):
        dataset = get_dataset("ucf101", 12)
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=2,
            config=CoCaConfig(theta=theta, frames_per_round=30),
            seed=3,
            budget_fraction=budget_fraction,
        )
        summary = fw.run(1).summary()
        assert 0.0 <= summary.accuracy <= 1.0
        assert 0.0 <= summary.hit_ratio <= 1.0
        assert summary.avg_latency_ms > 0


class TestFailureInjection:
    def test_tiny_budget_degrades_to_edge_only(self, dataset):
        """A budget too small for any layer leaves clients cache-less but
        functional."""
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=2,
            config=CoCaConfig(theta=0.05, frames_per_round=30),
            seed=5,
            budget_fraction=0.0001,
        )
        summary = fw.run(1).summary()
        assert summary.hit_ratio == 0.0
        assert summary.avg_latency_ms == pytest.approx(
            fw.model.total_compute_ms, rel=0.05
        )

    def test_single_dominant_class_stream(self):
        """A stream collapsed onto one class caches it and hits heavily."""
        dataset = get_dataset("ucf101", 10)
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=1,
            config=CoCaConfig(theta=0.05, frames_per_round=60),
            seed=6,
            non_iid_level=50.0,  # extreme concentration
        )
        summary = fw.run(2, warmup_rounds=1).summary()
        assert summary.hit_ratio > 0.5

    def test_engine_with_floor_rejects_distant_queries(self, tiny_model, rng):
        cache = SemanticCache(tiny_model.num_classes, theta=0.0)
        layer = 3
        cache.set_layer_entries(
            layer, np.arange(4), tiny_model.ideal_centroids(layer)[:4]
        )
        cache.set_similarity_floor(layer, 0.99)  # virtually unreachable
        engine = CachedInferenceEngine(tiny_model, cache)
        frame = Frame(class_id=6, difficulty=0.1, run_position=3, stream_index=0)
        outcome = engine.infer(tiny_model.draw_sample(frame, 0, rng))
        assert not outcome.hit

    def test_floor_validation(self):
        cache = SemanticCache(4)
        with pytest.raises(ValueError):
            cache.set_similarity_floor(0, 2.0)
        assert cache.similarity_floor(0) == -1.0
        cache.set_similarity_floor(0, 0.5)
        assert cache.similarity_floor(0) == 0.5
        cache.clear()
        assert cache.similarity_floor(0) == -1.0

    def test_two_class_task_runs(self):
        """The minimum viable task (2 classes) exercises every code path
        without degenerate-index crashes."""
        dataset = DatasetSpec(
            name="binary", num_classes=2, mean_run_length=5.0, difficulty=0.3
        )
        fw = CoCaFramework(
            dataset,
            model_name="resnet50",
            num_clients=2,
            config=CoCaConfig(theta=0.05, frames_per_round=25),
            seed=8,
        )
        summary = fw.run(1).summary()
        assert summary.num_samples == 50
