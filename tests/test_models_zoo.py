"""Unit tests for the model zoo (calibration anchors from the paper)."""

import numpy as np
import pytest

from repro.data.datasets import get_dataset
from repro.models.zoo import available_models, build_model


class TestZooStructure:
    def test_available_models(self):
        assert set(available_models()) == {
            "ast_base",
            "resnet101",
            "resnet152",
            "resnet50",
            "vgg16_bn",
        }

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("alexnet", get_dataset("ucf101", 50))

    @pytest.mark.parametrize(
        "name,layers,total_ms",
        [
            ("vgg16_bn", 13, 29.94),
            ("resnet50", 17, 30.50),
            ("resnet101", 34, 40.58),
            ("resnet152", 51, 62.85),
            ("ast_base", 12, 92.00),
        ],
    )
    def test_layer_counts_and_latency_anchors(self, name, layers, total_ms):
        model = build_model(name, get_dataset("ucf101", 20), seed=0)
        assert model.num_cache_layers == layers
        assert model.total_compute_ms == pytest.approx(total_ms, abs=0.01)

    def test_resnet101_lookup_calibration(self):
        """All 34 layers at 50 entries cost ~56% of no-cache inference
        (the paper's Sec. III-1 measurement)."""
        model = build_model("resnet101", get_dataset("ucf101", 50), seed=0)
        total_lookup = 34 * model.lookup_cost_ms(50)
        fraction = total_lookup / model.total_compute_ms
        assert fraction == pytest.approx(0.5622, abs=0.03)

    def test_same_seed_same_geometry(self):
        ds = get_dataset("ucf101", 20)
        a = build_model("resnet50", ds, seed=5)
        b = build_model("resnet50", ds, seed=5)
        assert np.allclose(a.ideal_centroids(3), b.ideal_centroids(3))

    def test_different_seed_different_geometry(self):
        ds = get_dataset("ucf101", 20)
        a = build_model("resnet50", ds, seed=5)
        b = build_model("resnet50", ds, seed=6)
        assert not np.allclose(a.ideal_centroids(3), b.ideal_centroids(3))

    def test_multi_client_enables_drift_by_default(self):
        ds = get_dataset("ucf101", 20)
        single = build_model("resnet50", ds, num_clients=1)
        multi = build_model("resnet50", ds, num_clients=4)
        assert single.feature_space.config.client_drift_scale == 0.0
        assert multi.feature_space.config.client_drift_scale > 0.0


class TestZooAccuracy:
    @pytest.mark.parametrize(
        "name,dataset,subset,target",
        [
            ("resnet101", "ucf101", 50, 80.56),
            ("vgg16_bn", "ucf101", 100, 78.12),
            ("resnet152", "ucf101", 100, 83.98),
            ("ast_base", "esc50", None, 82.0),
        ],
    )
    def test_edge_only_accuracy_anchor(self, name, dataset, subset, target):
        """No-cache accuracy within ~3.5pt of the paper's Edge-Only (4000
        frames keep the Monte-Carlo noise well under +-1pt, so the bound
        tests the substrate calibration rather than the seed)."""
        ds = get_dataset(dataset, subset)
        model = build_model(name, ds, seed=1)
        acc = 100 * model.measure_accuracy(4000, np.random.default_rng(7))
        assert acc == pytest.approx(target, abs=3.5)

    def test_deeper_resnet_is_more_accurate(self):
        ds = get_dataset("ucf101", 100)
        rng = np.random.default_rng(3)
        shallow = build_model("resnet50", ds, seed=1).measure_accuracy(1200, rng)
        rng = np.random.default_rng(3)
        deep = build_model("resnet152", ds, seed=1).measure_accuracy(1200, rng)
        assert deep > shallow
