"""Unit + property tests for the temporally-local stream generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stream import Frame, StreamGenerator, empirical_class_frequencies


def _uniform_stream(num_classes=10, run=8.0, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return StreamGenerator(
        class_distribution=np.full(num_classes, 1.0 / num_classes),
        mean_run_length=run,
        rng=rng,
        **kwargs,
    )


class TestStreamGenerator:
    def test_frames_are_sequential(self):
        stream = _uniform_stream()
        frames = stream.take(20)
        assert [f.stream_index for f in frames] == list(range(20))

    def test_runs_share_class(self):
        stream = _uniform_stream(run=50.0, seed=3)
        frames = stream.take(30)
        # With mean run 50, thirty frames are almost surely few runs; run
        # positions increase within a run and reset at boundaries.
        for prev, cur in zip(frames, frames[1:]):
            if cur.run_position > 0:
                assert cur.class_id == prev.class_id

    def test_temporal_locality_increases_with_run_length(self):
        short = _uniform_stream(run=2.0, seed=5, working_set_size=None)
        long = _uniform_stream(run=30.0, seed=5, working_set_size=None)

        def repeat_rate(stream):
            frames = stream.take(2000)
            return np.mean(
                [a.class_id == b.class_id for a, b in zip(frames, frames[1:])]
            )

        assert repeat_rate(long) > repeat_rate(short)

    def test_respects_class_distribution(self):
        rng = np.random.default_rng(11)
        probs = np.array([0.7, 0.1, 0.1, 0.1])
        stream = StreamGenerator(probs, 1.0, rng, working_set_size=None)
        freqs = empirical_class_frequencies(stream.take(6000), 4)
        assert freqs[0] == pytest.approx(0.7, abs=0.05)

    def test_difficulty_bounds(self):
        stream = _uniform_stream(seed=9)
        for frame in stream.take(500):
            assert 0.0 <= frame.difficulty < 1.0

    def test_run_heads_are_harder_on_average(self):
        stream = _uniform_stream(run=6.0, seed=13)
        frames = stream.take(4000)
        heads = [f.difficulty for f in frames if f.run_position == 0]
        tails = [f.difficulty for f in frames if f.run_position >= 3]
        assert np.mean(heads) > np.mean(tails)

    def test_working_set_limits_active_classes(self):
        stream = _uniform_stream(num_classes=30, seed=17, working_set_size=5,
                                 churn_probability=0.0)
        frames = stream.take(1000)
        assert len({f.class_id for f in frames}) <= 5

    def test_working_set_churn_rotates_classes(self):
        stream = _uniform_stream(
            num_classes=30, run=2.0, seed=19, working_set_size=5,
            churn_probability=0.5,
        )
        frames = stream.take(3000)
        assert len({f.class_id for f in frames}) > 5

    def test_working_set_disabled(self):
        stream = _uniform_stream(num_classes=6, seed=21, working_set_size=None)
        assert stream.working_set is None

    def test_deterministic_given_seed(self):
        a = _uniform_stream(seed=42).take(100)
        b = _uniform_stream(seed=42).take(100)
        assert [f.class_id for f in a] == [f.class_id for f in b]
        assert [f.difficulty for f in a] == [f.difficulty for f in b]

    def test_take_validation(self):
        stream = _uniform_stream()
        with pytest.raises(ValueError):
            stream.take(-1)
        assert stream.take(0) == []

    def test_iteration_protocol(self):
        stream = _uniform_stream()
        it = iter(stream)
        frame = next(it)
        assert isinstance(frame, Frame)

    def test_input_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            StreamGenerator(np.array([0.5, 0.6]), 5.0, rng)
        with pytest.raises(ValueError):
            StreamGenerator(np.array([1.0]), 0.5, rng)
        with pytest.raises(ValueError):
            StreamGenerator(np.array([1.0]), 5.0, rng, base_difficulty=1.5)
        with pytest.raises(ValueError):
            StreamGenerator(np.array([1.0]), 5.0, rng, churn_probability=2.0)
        with pytest.raises(ValueError):
            StreamGenerator(
                np.full(4, 0.25), 5.0, rng, working_set_size=0
            )


class TestEmpiricalFrequencies:
    def test_sums_to_one(self):
        frames = [Frame(0, 0.1, 0, 0), Frame(1, 0.1, 0, 1), Frame(1, 0.1, 1, 2)]
        freqs = empirical_class_frequencies(frames, 3)
        assert freqs.sum() == pytest.approx(1.0)
        assert freqs[1] == pytest.approx(2 / 3)

    def test_out_of_range_class_rejected(self):
        with pytest.raises(ValueError):
            empirical_class_frequencies([Frame(5, 0.1, 0, 0)], 3)

    def test_empty_input(self):
        freqs = empirical_class_frequencies([], 3)
        assert np.allclose(freqs, 0.0)


class TestStreamProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        run=st.floats(min_value=1.0, max_value=40.0),
        ws=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
    )
    @settings(max_examples=25, deadline=None)
    def test_stream_always_valid(self, seed, run, ws):
        rng = np.random.default_rng(seed)
        stream = StreamGenerator(
            np.full(12, 1 / 12), run, rng, working_set_size=ws
        )
        for frame in stream.take(200):
            assert 0 <= frame.class_id < 12
            assert 0.0 <= frame.difficulty < 1.0
            assert frame.run_position >= 0


class TestTakeBlock:
    def test_matches_frame_invariants(self):
        from repro.data.stream import FrameBlock

        stream = _uniform_stream(seed=11)
        block = stream.take_block(120)
        assert isinstance(block, FrameBlock)
        assert len(block) == 120
        assert np.array_equal(block.stream_indices, np.arange(120))
        assert np.all((block.class_ids >= 0) & (block.class_ids < 10))
        assert np.all((block.difficulties >= 0.0) & (block.difficulties < 1.0))
        assert np.all(block.run_positions >= 0)
        # Run positions increment within a class run and reset on change.
        for i in range(1, 120):
            if block.class_ids[i] == block.class_ids[i - 1]:
                assert block.run_positions[i] in (
                    block.run_positions[i - 1] + 1,
                    0,  # adjacent runs can share a class
                )
            else:
                assert block.run_positions[i] == 0

    def test_mixes_with_scalar_granularity(self):
        stream = _uniform_stream(seed=4)
        stream.take(7)
        block = stream.take_block(5)
        assert np.array_equal(block.stream_indices, np.arange(7, 12))
        frame = stream.next_frame()
        assert frame.stream_index == 12

    def test_empty_block(self):
        stream = _uniform_stream()
        block = stream.take_block(0)
        assert len(block) == 0
        assert stream.next_frame().stream_index == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            _uniform_stream().take_block(-1)

    def test_distribution_matches_scalar_path(self):
        scalar = _uniform_stream(num_classes=6, run=4.0, seed=9)
        block_gen = _uniform_stream(num_classes=6, run=4.0, seed=9)
        scalar_freq = empirical_class_frequencies(scalar.take(4000), 6)
        block_freq = empirical_class_frequencies(block_gen.take_block(4000), 6)
        assert np.abs(scalar_freq - block_freq).max() < 0.08

    def test_frameblock_roundtrip(self):
        from repro.data.stream import FrameBlock

        stream = _uniform_stream(seed=2)
        block = stream.take_block(30)
        frames = block.frames()
        rebuilt = FrameBlock.from_frames(frames)
        assert np.array_equal(rebuilt.class_ids, block.class_ids)
        assert np.allclose(rebuilt.difficulties, block.difficulties)
        assert np.array_equal(rebuilt.run_positions, block.run_positions)
        assert np.array_equal(rebuilt.stream_indices, block.stream_indices)
        assert frames[3] == block.frame(3)

    def test_frameblock_shape_mismatch_rejected(self):
        from repro.data.stream import FrameBlock

        with pytest.raises(ValueError):
            FrameBlock(
                class_ids=np.zeros(3, dtype=np.int64),
                difficulties=np.zeros(2),
                run_positions=np.zeros(3, dtype=np.int64),
                stream_indices=np.zeros(3, dtype=np.int64),
            )


class TestEmpiricalFrequenciesBlock:
    def test_block_input_counts(self):
        from repro.data.stream import FrameBlock

        block = FrameBlock(
            class_ids=np.array([0, 1, 1, 2]),
            difficulties=np.zeros(4),
            run_positions=np.zeros(4, dtype=np.int64),
            stream_indices=np.arange(4),
        )
        freqs = empirical_class_frequencies(block, 4)
        assert freqs.sum() == pytest.approx(1.0)
        assert freqs[1] == pytest.approx(0.5)

    def test_block_out_of_range_rejected(self):
        from repro.data.stream import FrameBlock

        block = FrameBlock(
            class_ids=np.array([0, 9]),
            difficulties=np.zeros(2),
            run_positions=np.zeros(2, dtype=np.int64),
            stream_indices=np.arange(2),
        )
        with pytest.raises(ValueError):
            empirical_class_frequencies(block, 3)

    def test_negative_class_rejected(self):
        with pytest.raises(ValueError):
            empirical_class_frequencies([Frame(-1, 0.1, 0, 0)], 3)
