"""Unit tests for the shared Scenario builder."""

import numpy as np
import pytest

from repro.data.datasets import get_dataset
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario


def _scenario(**overrides):
    defaults = dict(
        dataset=get_dataset("ucf101", 20),
        model_name="resnet50",
        num_clients=3,
        non_iid_level=1.0,
        seed=9,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenario:
    def test_model_is_cached(self):
        scenario = _scenario()
        assert scenario.model is scenario.model

    def test_distributions_shape(self):
        scenario = _scenario()
        dists = scenario.distributions
        assert dists.shape == (3, 20)
        assert np.allclose(dists.sum(axis=1), 1.0)

    def test_longtail_applies(self):
        uniform = _scenario(non_iid_level=0.0).distributions
        tailed = _scenario(non_iid_level=0.0, longtail_rho=50.0).distributions
        assert tailed.max() > uniform.max() * 3

    def test_same_seed_same_everything(self):
        a, b = _scenario(), _scenario()
        assert np.allclose(a.distributions, b.distributions)
        assert np.allclose(a.model.ideal_centroids(2), b.model.ideal_centroids(2))
        fa = a.make_stream(0, a.client_rng(0)).take(50)
        fb = b.make_stream(0, b.client_rng(0)).take(50)
        assert [f.class_id for f in fa] == [f.class_id for f in fb]

    def test_clients_have_distinct_streams(self):
        scenario = _scenario()
        f0 = scenario.make_stream(0, scenario.client_rng(0)).take(80)
        f1 = scenario.make_stream(1, scenario.client_rng(1)).take(80)
        assert [f.class_id for f in f0] != [f.class_id for f in f1]

    def test_client_rng_bounds(self):
        scenario = _scenario()
        with pytest.raises(IndexError):
            scenario.client_rng(3)

    def test_fresh_scenario_resets_state(self):
        scenario = _scenario()
        _ = scenario.model  # materialize
        fresh = fresh_scenario(scenario)
        assert fresh._model is None
        assert fresh.seed == scenario.seed
        # And rebuilds identically.
        assert np.allclose(
            fresh.model.ideal_centroids(1), scenario.model.ideal_centroids(1)
        )

    def test_multi_client_model_has_drift(self):
        scenario = _scenario()
        assert scenario.model.feature_space.config.client_drift_scale > 0
