"""Unit + property tests for non-IID and long-tail constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    apply_longtail,
    dirichlet_class_distribution,
    dirichlet_partition,
    head_mass,
    longtail_weights,
)


class TestDirichlet:
    def test_iid_level_is_uniform(self, rng):
        probs = dirichlet_class_distribution(10, 0.0, rng)
        assert np.allclose(probs, 0.1)

    def test_returns_probability_vector(self, rng):
        probs = dirichlet_class_distribution(20, 2.0, rng)
        assert probs.shape == (20,)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_higher_level_concentrates_mass(self):
        rng = np.random.default_rng(0)
        mild = [
            head_mass(dirichlet_class_distribution(50, 1.0, rng)) for _ in range(30)
        ]
        harsh = [
            head_mass(dirichlet_class_distribution(50, 10.0, rng)) for _ in range(30)
        ]
        assert np.mean(harsh) > np.mean(mild)

    def test_partition_shape(self, rng):
        dists = dirichlet_partition(12, 5, 1.0, rng)
        assert dists.shape == (5, 12)
        assert np.allclose(dists.sum(axis=1), 1.0)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            dirichlet_class_distribution(0, 1.0, rng)
        with pytest.raises(ValueError):
            dirichlet_class_distribution(5, -1.0, rng)
        with pytest.raises(ValueError):
            dirichlet_partition(5, 0, 1.0, rng)


class TestLongtail:
    def test_imbalance_ratio_exact(self):
        weights = longtail_weights(100, 90.0)
        assert weights.max() / weights.min() == pytest.approx(90.0)

    def test_paper_head_mass_property(self):
        """rho=90 over 100 classes: top 20% of classes hold ~60% of mass."""
        weights = longtail_weights(100, 90.0)
        assert head_mass(weights, 0.2) == pytest.approx(0.60, abs=0.03)

    def test_uniform_when_rho_one(self):
        weights = longtail_weights(10, 1.0)
        assert np.allclose(weights, 0.1)

    def test_single_class(self):
        assert longtail_weights(1, 5.0) == pytest.approx(1.0)

    def test_rejects_rho_below_one(self):
        with pytest.raises(ValueError):
            longtail_weights(10, 0.5)

    def test_apply_longtail_preserves_normalization(self, rng):
        base = np.full(40, 1 / 40)
        tailed = apply_longtail(base, 50.0, rng)
        assert tailed.sum() == pytest.approx(1.0)
        assert head_mass(tailed, 0.2) > head_mass(base, 0.2)

    def test_apply_longtail_deterministic_head(self, rng):
        base = np.full(10, 0.1)
        tailed = apply_longtail(base, 10.0, rng, shuffle_classes=False)
        assert tailed[0] == tailed.max()

    def test_apply_longtail_validates_input(self, rng):
        with pytest.raises(ValueError):
            apply_longtail(np.array([0.5, 0.6]), 10.0, rng)  # not normalized
        with pytest.raises(ValueError):
            apply_longtail(np.ones((2, 2)) / 4, 10.0, rng)  # not 1-D


class TestProperties:
    @given(
        num_classes=st.integers(min_value=2, max_value=80),
        rho=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_longtail_weights_always_valid(self, num_classes, rho):
        weights = longtail_weights(num_classes, rho)
        assert weights.shape == (num_classes,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)
        # Monotone non-increasing by construction.
        assert np.all(np.diff(weights) <= 1e-12)

    @given(
        num_classes=st.integers(min_value=1, max_value=60),
        level=st.floats(min_value=0.0, max_value=20.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_dirichlet_always_probability_vector(self, num_classes, level, seed):
        rng = np.random.default_rng(seed)
        probs = dirichlet_class_distribution(num_classes, level, rng)
        assert probs.shape == (num_classes,)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)
