"""Tests for ASCII plotting and CSV export."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_line, ascii_scatter, to_csv


class TestAsciiScatter:
    def test_renders_grid_of_requested_size(self, rng):
        points = rng.standard_normal((30, 2))
        plot = ascii_scatter(points, width=40, height=10, title="t")
        lines = plot.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 1 + 10 + 1  # title + top + rows + bottom
        assert all(len(line) == 42 for line in lines[1:])

    def test_labels_get_distinct_markers(self, rng):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        plot = ascii_scatter(points, labels=np.array([0, 1]))
        assert "o" in plot and "x" in plot
        assert "legend" in plot

    def test_single_point(self):
        plot = ascii_scatter(np.array([[2.0, 3.0]]))
        assert "o" in plot

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((3, 2)), labels=np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((3, 2)), width=2)


class TestAsciiLine:
    def test_renders_series(self):
        plot = ascii_line([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "a" in plot and "b" in plot
        assert "y: [1, 3]" in plot

    def test_constant_series(self):
        plot = ascii_line([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in plot

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line([], {"a": []})
        with pytest.raises(ValueError):
            ascii_line([1, 2], {"a": [1.0]})


class TestToCsv:
    def test_serializes_rows(self):
        csv = to_csv([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
        assert csv.splitlines() == ["x,y", "1,a", "2,b"]

    def test_explicit_column_order(self):
        csv = to_csv([{"x": 1, "y": 2}], columns=["y", "x"])
        assert csv.splitlines()[0] == "y,x"

    def test_quotes_commas(self):
        csv = to_csv([{"v": "a,b"}])
        assert '"a,b"' in csv

    def test_dataclass_rows(self):
        from repro.experiments import CacheSizePoint

        point = CacheSizePoint(0.1, 3, 100, 20.0, 80.0, 50.0)
        csv = to_csv([point.__dict__])
        assert "size_fraction" in csv

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            to_csv([])
