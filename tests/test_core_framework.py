"""Integration tests of the multi-client CoCa framework."""

import numpy as np
import pytest

from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.data.datasets import get_dataset


@pytest.fixture(scope="module")
def small_setup():
    dataset = get_dataset("ucf101", 20)
    config = CoCaConfig(theta=0.05, frames_per_round=80)
    return dataset, config


def _framework(dataset, config, **kwargs):
    defaults = dict(num_clients=3, seed=4, non_iid_level=1.0)
    defaults.update(kwargs)
    return CoCaFramework(dataset, model_name="resnet50", config=config, **defaults)


class TestFrameworkConstruction:
    def test_builds_clients_and_server(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config)
        assert len(fw.clients) == 3
        assert fw.server.table.filled.all()
        # Every client got the reference hit-ratio vector.
        for client in fw.clients:
            assert np.allclose(client.hit_ratio, fw.server.reference_hit_ratio)

    def test_invalid_client_count(self, small_setup):
        dataset, config = small_setup
        with pytest.raises(ValueError):
            _framework(dataset, config, num_clients=0)

    def test_deterministic_given_seed(self, small_setup):
        dataset, config = small_setup
        a = _framework(dataset, config).run(1).summary()
        b = _framework(dataset, config).run(1).summary()
        assert a.avg_latency_ms == pytest.approx(b.avg_latency_ms)
        assert a.accuracy == pytest.approx(b.accuracy)

    def test_different_seeds_differ(self, small_setup):
        dataset, config = small_setup
        a = _framework(dataset, config, seed=1).run(1).summary()
        b = _framework(dataset, config, seed=2).run(1).summary()
        assert a.avg_latency_ms != pytest.approx(b.avg_latency_ms)


class TestFrameworkRuns:
    def test_run_shape(self, small_setup):
        dataset, config = small_setup
        result = _framework(dataset, config).run(2, warmup_rounds=1)
        # 2 measured rounds x 3 clients x 80 frames.
        assert result.summary().num_samples == 2 * 3 * 80
        assert len(result.rounds) == 2
        assert result.rounds[0].round_index == 1

    def test_caching_reduces_latency(self, small_setup):
        dataset, config = small_setup
        result = _framework(dataset, config).run(2, warmup_rounds=1)
        summary = result.summary()
        edge_latency = result.clients[0].model.total_compute_ms
        assert summary.avg_latency_ms < edge_latency
        assert summary.hit_ratio > 0.2

    def test_accuracy_loss_is_bounded(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config)
        result = fw.run(2, warmup_rounds=1)
        rng = np.random.default_rng(0)
        edge_acc = fw.model.measure_accuracy(800, rng)
        assert result.summary().accuracy > edge_acc - 0.08

    def test_global_frequencies_accumulate(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config)
        before = fw.server.table.class_freq.sum()
        fw.run_round(0)
        after = fw.server.table.class_freq.sum()
        assert after == pytest.approx(before + 3 * 80)

    def test_gcu_disabled_freezes_entries(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config, enable_gcu=False)
        before = fw.server.table.entries.copy()
        fw.run_round(0)
        assert np.allclose(fw.server.table.entries, before)
        # Frequencies still accumulate (bookkeeping).
        assert fw.server.table.class_freq.sum() > before.shape[0]

    def test_gcu_enabled_moves_entries(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config, enable_gcu=True)
        before = fw.server.table.entries.copy()
        fw.run_round(0)
        assert not np.allclose(fw.server.table.entries, before)

    def test_dca_disabled_uses_static_allocation(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config, enable_dca=False)
        assert fw._static_allocation is not None
        fw.run_round(0)
        # All clients share the static allocation's layer set.
        layer_sets = {
            tuple(client.engine.cache.active_layers) for client in fw.clients
        }
        assert len(layer_sets) == 1

    def test_longtail_workload_runs(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config, longtail_rho=20.0)
        summary = fw.run(1).summary()
        assert summary.num_samples == 3 * 80

    def test_invalid_round_count(self, small_setup):
        dataset, config = small_setup
        with pytest.raises(ValueError):
            _framework(dataset, config).run(0)


class TestWorkspaceAndTimings:
    def test_clients_share_the_framework_workspace(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config)
        assert all(
            client.batch_engine.workspace is fw.workspace
            for client in fw.clients
        )

    def test_run_round_accumulates_stage_timings(self, small_setup):
        dataset, config = small_setup
        fw = _framework(dataset, config)
        timings = {}
        fw.run_round(0, timings=timings)
        for stage in ("allocate", "sample-gen", "probe", "collect", "merge"):
            assert timings[stage] >= 0.0
        # A second instrumented round accumulates (doesn't reset).
        first_probe = timings["probe"]
        fw.run_round(1, timings=timings)
        assert timings["probe"] >= first_probe
