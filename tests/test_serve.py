"""Tests for the real-concurrency serving front-end (:mod:`repro.serve`).

Covers the pure cache-walk kernel the workers run, worker lifecycle
(initialize / probe / shutdown over a snapshot path), the asyncio
admission path (success, shed, timeout, retry, conservation ledger,
armed contracts), the load generator and its analytic cross-check, and
the ``repro serve`` / ``repro loadgen`` CLI round-trip.

Everything here runs wall-clock (this is the one package where that is
the point); floors and durations are kept to tens of milliseconds so
the suite stays fast on one core.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro import contracts
from repro.cli import main as cli_main
from repro.contracts import ContractViolation
from repro.core.cache import LookupWorkspace
from repro.core.probe import walk_cache_batch
from repro.core.server import GlobalCacheTable
from repro.serve import (
    LoadgenConfig,
    ServeConfig,
    ServeFrontend,
    WorkerOptions,
    analytic_wait_ms,
    initialize_worker,
    probe_chunk,
    run_loadgen,
    shutdown_worker,
    synthesize_requests,
    worker_info,
)
from repro.serve.worker import _state
from repro.store import MappedTableStore, write_snapshot

NUM_CLASSES, NUM_LAYERS, DIM = 24, 10, 8


def unit_rows(shape: tuple[int, ...], seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal(shape)
    return rows / np.linalg.norm(rows, axis=-1, keepdims=True)


@pytest.fixture
def snapshot(tmp_path) -> str:
    table = GlobalCacheTable(NUM_CLASSES, NUM_LAYERS, DIM)
    table.entries = unit_rows((NUM_CLASSES, NUM_LAYERS, DIM), seed=0)
    table.filled[:] = True
    table.class_freq = np.full(NUM_CLASSES, 4.0)
    write_snapshot(tmp_path / "snap", table, epoch=1)
    return str(tmp_path / "snap")


def centroid_queries(snapshot: str, classes: list[int]) -> np.ndarray:
    """Exact stored centroids as queries: guaranteed first-layer hits."""
    with MappedTableStore(snapshot) as store:
        vectors = np.empty(
            (len(classes), store.num_layers, store.dim), dtype=store.dtype
        )
        for layer in range(store.num_layers):
            vectors[:, layer, :] = store.layer_view(layer)[classes]
    return vectors


# ----------------------------------------------------------------------
# Pure walk kernel (what the workers run)
# ----------------------------------------------------------------------


class TestWalkCacheBatch:
    def test_exact_centroids_hit_their_class(self, snapshot):
        classes = [0, 5, 11, 23]
        vectors = centroid_queries(snapshot, classes)
        with MappedTableStore(snapshot) as store:
            cache = store.serving_cache()
            with LookupWorkspace() as workspace:
                walk = walk_cache_batch(cache, vectors, workspace)
                assert walk.hit.all()
                assert np.array_equal(walk.predicted, classes)
                assert (walk.layers_probed >= 1).all()

    def test_impossible_theta_misses_everywhere(self, snapshot):
        vectors = centroid_queries(snapshot, [3, 7])
        with MappedTableStore(snapshot) as store:
            # An unreachable theta: no Eq. 2 score can ever early-exit.
            cache = store.serving_cache(theta=1e6)
            with LookupWorkspace() as workspace:
                walk = walk_cache_batch(cache, vectors, workspace)
                assert not walk.hit.any()
                assert (walk.hit_layer == -1).all()
                assert np.isnan(walk.hit_score).all()
                # Misses still carry the deepest layer's best guess.
                assert (walk.predicted >= 0).all()
                assert (walk.layers_probed == len(cache.active_layers)).all()

    def test_empty_batch(self, snapshot):
        with MappedTableStore(snapshot) as store:
            cache = store.serving_cache()
            with LookupWorkspace() as workspace:
                empty = np.empty((0, NUM_LAYERS, DIM))
                walk = walk_cache_batch(cache, empty, workspace)
                assert walk.predicted.shape == (0,)


# ----------------------------------------------------------------------
# Worker lifecycle
# ----------------------------------------------------------------------


class TestWorker:
    def test_probe_before_initialize_raises(self):
        shutdown_worker()  # ensure this thread's slate is clean
        with pytest.raises(RuntimeError, match="not initialized"):
            probe_chunk(np.zeros((1, NUM_LAYERS, DIM)))

    def test_serve_cycle_in_thread(self, snapshot):
        initialize_worker(snapshot, WorkerOptions(service_floor_ms=10.0))
        try:
            vectors = centroid_queries(snapshot, [1, 2, 3])
            reply = probe_chunk(vectors)
            assert np.array_equal(reply.predicted, [1, 2, 3])
            assert reply.hits == 3
            assert reply.worker_pid == os.getpid()
            # Replies are owned copies, not workspace views.
            assert reply.predicted.base is None
            assert reply.hit_layer.base is None
            # The emulated device floor dominates the service time.
            assert reply.service_ms >= 9.0
            assert reply.probe_ms <= reply.service_ms
            info = worker_info()
            assert info["requests_served"] == 1
            assert info["epoch"] == 1
            assert info["view_backed_layers"] == info["active_layers"]
        finally:
            shutdown_worker()
        with pytest.raises(RuntimeError):
            probe_chunk(vectors)

    def test_shutdown_is_idempotent_and_joins_probe_threads(self, snapshot):
        initialize_worker(snapshot, WorkerOptions())
        state = _state()
        state.workspace.executor(2)  # spin up probe threads
        shutdown_worker()
        shutdown_worker()
        assert state.workspace._executor is None


# ----------------------------------------------------------------------
# Admission front-end
# ----------------------------------------------------------------------


def drive(coro):
    return asyncio.run(coro)


class TestFrontend:
    def test_round_trip_and_routing(self, snapshot):
        async def scenario():
            config = ServeConfig(snapshot_path=snapshot, num_workers=2)
            async with ServeFrontend(config) as frontend:
                vectors = centroid_queries(snapshot, [4])
                result = await frontend.submit(4, vectors)
                assert result.ok
                assert result.shard == frontend.shard_of(4)
                assert result.hits == 1
                assert result.frames == 1
                stats = frontend.stats()
                assert stats["submitted"] == 1
                assert stats["success"] == 1
                assert stats["lanes"][result.shard]["served"] == 1
                assert stats["lanes"][result.shard]["worker"]["pid"] > 0
            return frontend.stats()

        stats = drive(scenario())
        assert stats["queued"] == 0 and stats["in_flight"] == 0

    def test_overload_sheds_and_conserves(self, snapshot):
        async def scenario():
            config = ServeConfig(
                snapshot_path=snapshot,
                num_workers=1,
                queue_depth=1,
                deadline_ms=2000.0,
                worker=WorkerOptions(service_floor_ms=30.0),
            )
            async with ServeFrontend(config) as frontend:
                vectors = centroid_queries(snapshot, [0])
                results = await asyncio.gather(
                    *(frontend.submit(0, vectors) for _ in range(6))
                )
                stats = frontend.stats()
            return results, stats

        results, stats = drive(scenario())
        outcomes = [r.outcome for r in results]
        assert outcomes.count("shed") >= 1
        shed = next(r for r in results if r.outcome == "shed")
        assert shed.retry_after_ms > 0
        # Every request got exactly one terminal outcome.
        assert stats["submitted"] == 6
        assert stats["success"] + stats["timeout"] + stats["shed"] == 6

    def test_deadline_timeout_and_late_response(self, snapshot):
        async def scenario():
            config = ServeConfig(
                snapshot_path=snapshot,
                num_workers=1,
                deadline_ms=10.0,
                worker=WorkerOptions(service_floor_ms=80.0),
            )
            async with ServeFrontend(config) as frontend:
                vectors = centroid_queries(snapshot, [0])
                result = await frontend.submit(0, vectors)
                assert result.outcome == "timeout"
                assert result.latency_ms < 80.0
            # close() joined the worker, so the late completion landed.
            return frontend.stats()

        stats = drive(scenario())
        assert stats["timeout"] == 1
        assert stats["late_responses"] == 1
        assert stats["submitted"] == 1

    def test_retry_turns_shed_into_success(self, snapshot):
        async def scenario():
            config = ServeConfig(
                snapshot_path=snapshot,
                num_workers=1,
                queue_depth=1,
                deadline_ms=2000.0,
                max_retries=8,
                backoff_base_ms=2.0,
                worker=WorkerOptions(service_floor_ms=30.0),
            )
            async with ServeFrontend(config) as frontend:
                vectors = centroid_queries(snapshot, [0])
                # Stagger the fillers so one holds the service slot and
                # the other holds the single queue seat — a third
                # arrival must shed until the lane drains.
                in_service = asyncio.create_task(frontend.submit(0, vectors))
                await asyncio.sleep(0.015)
                waiter = asyncio.create_task(frontend.submit(0, vectors))
                await asyncio.sleep(0.005)
                retried = await frontend.submit_with_retry(0, vectors)
                await asyncio.gather(in_service, waiter)
                stats = frontend.stats()
            return retried, stats

        retried, stats = drive(scenario())
        assert retried.ok
        assert retried.attempts >= 2
        assert stats["retries"] >= 1

    def test_admission_contract_armed_and_fires(self, snapshot):
        async def scenario():
            config = ServeConfig(snapshot_path=snapshot, num_workers=1)
            async with ServeFrontend(config) as frontend:
                vectors = centroid_queries(snapshot, [0])
                with contracts.activated():
                    # Clean traffic passes under the armed contract.
                    result = await frontend.submit(0, vectors)
                    assert result.ok
                    # A cooked ledger (a lost response) must fire it.
                    frontend.submitted += 1
                    with pytest.raises(ContractViolation):
                        await frontend.submit(0, vectors)

        drive(scenario())

    def test_process_mode_uses_distinct_processes(self, snapshot):
        async def scenario():
            config = ServeConfig(
                snapshot_path=snapshot, num_workers=2, mode="process"
            )
            async with ServeFrontend(config) as frontend:
                pids = {
                    info["pid"] for info in frontend.worker_infos
                }
                # Both shards answer, from their own processes.
                results = await asyncio.gather(
                    *(
                        frontend.submit(c, centroid_queries(snapshot, [c]))
                        for c in range(6)
                    )
                )
            return pids, results

        pids, results = drive(scenario())
        assert len(pids) == 2
        assert os.getpid() not in pids
        assert all(r.ok for r in results)
        assert {r.worker_pid for r in results} == pids


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------


class TestLoadgen:
    def test_synthesized_requests_are_deterministic_units(self, snapshot):
        a = synthesize_requests(snapshot, num_requests=5, batch=4, seed=7)
        b = synthesize_requests(snapshot, num_requests=5, batch=4, seed=7)
        assert len(a) == 5
        for ra, rb in zip(a, b):
            assert ra.class_hint == rb.class_hint
            assert np.array_equal(ra.vectors, rb.vectors)
            norms = np.linalg.norm(ra.vectors, axis=2)
            assert np.allclose(norms, 1.0)

    def test_open_loop_resolves_every_request(self, snapshot):
        config = ServeConfig(
            snapshot_path=snapshot,
            num_workers=1,
            deadline_ms=2000.0,
            worker=WorkerOptions(service_floor_ms=2.0),
        )
        load = LoadgenConfig(rate_per_s=400.0, num_requests=40, batch=4, seed=3)
        report = run_loadgen(config, load)
        assert report.offered == 40
        assert report.resolved == 40
        assert report.latency is not None
        assert report.latency.count == report.success
        assert report.hit_ratio > 0.9  # low-noise traffic mostly hits

    def test_closed_loop_saturates_and_conserves(self, snapshot):
        config = ServeConfig(
            snapshot_path=snapshot,
            num_workers=2,
            deadline_ms=2000.0,
            worker=WorkerOptions(service_floor_ms=3.0),
        )
        load = LoadgenConfig(
            rate_per_s=None,
            concurrency=4,
            duration_s=0.15,
            num_requests=16,
            batch=4,
            seed=5,
        )
        report = run_loadgen(config, load)
        assert report.mode == "closed-loop"
        assert report.offered > 0
        assert report.resolved == report.offered
        assert report.throughput_rps > 0

    def test_analytic_wait_matches_md1_closed_form(self):
        # rho = 100/s * 5ms = 0.5; M/D/1 wait = rho*s / (2*(1-rho)).
        rho, wait = analytic_wait_ms(100.0, 5.0)
        assert rho == pytest.approx(0.5)
        assert wait == pytest.approx(2.5)
        with pytest.raises(ValueError):
            analytic_wait_ms(0.0, 5.0)


# ----------------------------------------------------------------------
# CLI round-trip
# ----------------------------------------------------------------------


class TestServeCli:
    def test_serve_smoke_json(self, snapshot, capsys):
        rc = cli_main(
            ["serve", snapshot, "--workers", "2", "--requests", "8", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 2
        assert payload["smoke"]["success"] == 8
        assert len(payload["lanes"]) == 2
        assert all(l["worker"]["pid"] > 0 for l in payload["lanes"])

    def test_loadgen_open_loop_json_with_analytic(self, snapshot, capsys):
        rc = cli_main(
            [
                "loadgen", snapshot,
                "--workers", "1",
                "--rate", "300",
                "--requests", "30",
                "--service-floor-ms", "2",
                "--deadline-ms", "2000",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["offered"] == 30
        assert payload["success"] + payload["timeout"] + payload["shed"] == 30
        assert payload["latency_ms"]["count"] == payload["success"]
        assert "analytic" in payload
        assert payload["analytic"]["utilization"] is not None
