"""Smoke + shape tests for the per-figure experiment drivers.

These use miniature workloads (few rounds, small subsets) so the full
suite stays fast; the benchmarks run the paper-scale versions.
"""

import numpy as np
import pytest

from repro.core.config import CoCaConfig
from repro.data.datasets import get_dataset
from repro.experiments import (
    Scenario,
    format_ablation_table,
    format_allocation_table,
    format_method_points,
    format_slo_table,
    run_ablation,
    run_allocation_comparison,
    run_cache_size_sweep,
    run_client_load_sweep,
    run_delta_sweep,
    run_gamma_sweep,
    run_global_update_study,
    run_hotspot_count_sweep,
    run_longtail_comparison,
    run_noniid_sweep,
    run_per_layer_stats,
    run_slo_experiment,
    run_theta_sweep,
    run_update_cycle_sweep,
)


@pytest.fixture(scope="module")
def dataset():
    return get_dataset("ucf101", 20)


@pytest.fixture(scope="module")
def scenario(dataset):
    return Scenario(
        dataset=dataset,
        model_name="resnet50",
        num_clients=2,
        non_iid_level=1.0,
        seed=33,
    )


class TestMotivationDrivers:
    def test_cache_size_sweep_shape(self, dataset):
        points = run_cache_size_sweep(
            dataset, model_name="resnet50",
            layer_counts=(0, 3, 9, 17), num_samples=400,
        )
        assert len(points) == 4
        assert points[0].size_fraction == 0.0
        assert points[-1].size_fraction == pytest.approx(1.0)
        # No-cache latency equals the model budget; a moderate cache wins.
        assert points[0].latency_ms == pytest.approx(30.50, abs=0.01)
        assert min(p.latency_ms for p in points[1:]) < points[0].latency_ms

    def test_per_layer_stats_cover_all_layers(self, dataset):
        points = run_per_layer_stats(
            dataset, model_name="resnet50", num_samples=400
        )
        assert len(points) == 17
        assert all(0 <= p.hit_ratio_pct <= 100 for p in points)

    def test_hotspot_count_clamps_to_task(self, dataset):
        points = run_hotspot_count_sweep(
            dataset, model_name="resnet50",
            class_counts=(0, 5, 20, 90), num_samples=300,
        )
        assert [p.num_hotspot_classes for p in points] == [0, 5, 20, 90]
        # Count 0 means no cache: full-model latency.
        assert points[0].latency_ms == pytest.approx(30.50, abs=0.01)


class TestThresholdDrivers:
    def test_theta_sweep_monotone_hit_ratio(self, scenario):
        points = run_theta_sweep(scenario, thetas=(0.03, 0.10), rounds=1, warmup=1)
        assert len(points) == 2
        assert points[0].hit_ratio_pct >= points[1].hit_ratio_pct

    def test_gamma_sweep_monotone_absorption(self, scenario):
        points = run_gamma_sweep(scenario, gammas=(0.02, 0.30), rounds=1, warmup=0)
        assert points[0].absorption_ratio_pct >= points[1].absorption_ratio_pct

    def test_delta_sweep_monotone_absorption(self, scenario):
        points = run_delta_sweep(scenario, deltas=(0.05, 0.60), rounds=1, warmup=0)
        assert points[0].absorption_ratio_pct >= points[1].absorption_ratio_pct


class TestSloDriver:
    def test_slo_rows_and_formatting(self, scenario):
        results = run_slo_experiment(
            scenario,
            accuracy_loss_budgets=(0.05,),
            methods=("SMTM", "CoCa"),
            rounds=1,
            warmup=1,
            grids={"SMTM": [0.05], "CoCa": [0.05]},
        )
        rows = results[0.05]
        assert [r.method for r in rows] == ["Edge-Only", "SMTM", "CoCa"]
        assert rows[0].latency_ms == pytest.approx(30.50, abs=0.01)
        table = format_slo_table(results, "Table II (smoke)")
        assert "Edge-Only" in table and "CoCa" in table


class TestDistributionDrivers:
    def test_noniid_sweep_rows(self, scenario):
        points = run_noniid_sweep(
            scenario, levels=(0.0, 10.0), methods=("Edge-Only", "CoCa"),
            rounds=1, warmup=1,
        )
        assert len(points) == 4
        table = format_method_points(points, "Fig 7 (smoke)")
        assert "p=0" in table and "p=10" in table

    def test_edge_only_insensitive_to_noniid(self, scenario):
        points = run_noniid_sweep(
            scenario, levels=(0.0, 10.0), methods=("Edge-Only",),
            rounds=1, warmup=0,
        )
        lats = [p.latency_ms for p in points]
        assert lats[0] == pytest.approx(lats[1])

    def test_longtail_comparison_rows(self, scenario):
        points = run_longtail_comparison(
            scenario, methods=("Edge-Only", "CoCa"), rounds=1, warmup=1
        )
        settings = {p.setting for p in points}
        assert settings == {"uniform", "long-tail"}


class TestAllocationDriver:
    def test_policies_and_aca_compared(self, scenario):
        points = run_allocation_comparison(
            scenario, cache_sizes=(8,), rounds=1, warmup=1
        )
        policies = [p.policy for p in points]
        assert policies == ["LRU", "FIFO", "RAND", "ACA"]
        table = format_allocation_table(points, "Fig 8 (smoke)")
        assert "ACA" in table


class TestAblationDriver:
    def test_four_variants_per_model(self, scenario):
        points = run_ablation(
            scenario, model_names=("resnet50",), rounds=1, warmup=1
        )
        assert [p.variant for p in points] == ["Normal", "GCU", "DCA", "DCA+GCU"]
        table = format_ablation_table(points, "Fig 9 (smoke)")
        assert "DCA+GCU" in table


class TestSystemLoadDrivers:
    def test_update_cycle_sweep(self, scenario):
        points = run_update_cycle_sweep(
            scenario, cycles=(100, 400), total_frames=800, warmup_frames=0
        )
        assert [p.frames_per_round for p in points] == [100, 400]

    def test_client_load_matches_network_model(self):
        points = run_client_load_sweep(client_counts=(60, 160))
        assert points[0].response_latency_ms < points[1].response_latency_ms
        assert points[0].response_latency_ms == pytest.approx(56.7, abs=1.0)


class TestGlobalUpdateDriver:
    def test_study_produces_metrics_and_embeddings(self, scenario):
        result = run_global_update_study(
            scenario,
            num_classes_shown=3,
            samples_per_class=10,
            rounds=2,
            compute_embedding=True,
        )
        assert 0 <= result.layer < scenario.model.num_cache_layers
        assert -1.0 <= result.silhouette_with <= 1.0
        assert -1.0 <= result.silhouette_without <= 1.0
        n_points = 3 * 10 + 3
        assert result.embedding_with.shape == (n_points, 2)
        assert result.embedding_without.shape == (n_points, 2)
        assert result.labels.shape == (30,)
