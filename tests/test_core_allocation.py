"""Unit + property tests for the ACA allocation algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    aca_allocate,
    class_scores,
    select_hotspot_classes,
)


class TestClassScores:
    def test_fresh_classes_keep_full_frequency(self):
        scores = class_scores(
            global_freq=np.array([10.0, 20.0]),
            timestamps=np.array([0.0, 10.0]),
            frames_per_round=300,
        )
        # Both tau < F: no discount; scores proportional to frequency.
        assert scores[1] == pytest.approx(2 * scores[0])

    def test_stale_classes_discounted_per_round(self):
        scores = class_scores(
            global_freq=np.array([10.0, 10.0, 10.0]),
            timestamps=np.array([0.0, 300.0, 600.0]),
            frames_per_round=300,
            recency_base=0.2,
        )
        assert scores[1] == pytest.approx(0.2 * scores[0])
        assert scores[2] == pytest.approx(0.04 * scores[0])

    def test_local_blend_rescues_local_classes(self):
        """A globally-rare but locally-dominant class outranks a globally
        common but locally-absent one when local frequencies are blended."""
        global_freq = np.array([100.0, 1.0])
        tau = np.zeros(2)
        local = np.array([0.0, 50.0])
        blended = class_scores(
            global_freq, tau, 300, local_freq=local, local_weight=0.5
        )
        pure = class_scores(global_freq, tau, 300)
        assert pure[0] > pure[1]
        assert blended[1] > 0.4  # local class carries ~half the mass

    def test_validation(self):
        with pytest.raises(ValueError):
            class_scores(np.ones(3), np.ones(2), 300)
        with pytest.raises(ValueError):
            class_scores(np.ones(3), np.ones(3), 0)
        with pytest.raises(ValueError):
            class_scores(np.ones(3), np.ones(3), 300, recency_base=1.0)
        with pytest.raises(ValueError):
            class_scores(np.ones(3), np.ones(3), 300, local_freq=np.ones(2))


class TestHotspotSelection:
    def test_covers_requested_mass(self):
        scores = np.array([50.0, 30.0, 15.0, 4.0, 1.0])
        hot = select_hotspot_classes(scores, 0.95)
        assert list(hot) == [0, 1, 2]  # 95/100 reaches the mass exactly
        hot = select_hotspot_classes(scores, 0.96)
        assert list(hot) == [0, 1, 2, 3]  # needs the next class

    def test_single_dominant_class(self):
        hot = select_hotspot_classes(np.array([100.0, 0.1, 0.1]), 0.9)
        assert list(hot) == [0]

    def test_all_zero_scores_selects_everything(self):
        hot = select_hotspot_classes(np.zeros(6), 0.95)
        assert list(hot) == list(range(6))

    def test_mass_one_selects_everything_with_positive_scores(self):
        hot = select_hotspot_classes(np.array([3.0, 2.0, 1.0]), 1.0)
        assert set(hot) == {0, 1, 2}

    def test_order_is_descending_score(self):
        hot = select_hotspot_classes(np.array([1.0, 5.0, 3.0]), 1.0)
        assert list(hot) == [1, 2, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            select_hotspot_classes(np.array([-1.0, 2.0]), 0.9)
        with pytest.raises(ValueError):
            select_hotspot_classes(np.ones(3), 0.0)


def _basic_inputs(num_classes=6, num_layers=5):
    return dict(
        global_freq=np.ones(num_classes),
        timestamps=np.zeros(num_classes),
        hit_ratio=np.linspace(0.2, 0.8, num_layers),
        saved_time_ms=np.linspace(10.0, 1.0, num_layers),
        entry_sizes_bytes=np.full(num_layers, 10),
        budget_bytes=10_000,
        frames_per_round=300,
    )


class TestAcaAllocate:
    def test_allocates_within_budget(self):
        result = aca_allocate(**{**_basic_inputs(), "budget_bytes": 125})
        assert result.size_bytes <= 125
        assert result.layer_classes  # something allocated

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            aca_allocate(**{**_basic_inputs(), "budget_bytes": 0})

    def test_tiny_budget_allocates_nothing(self):
        result = aca_allocate(**{**_basic_inputs(), "budget_bytes": 5})
        assert result.layer_classes == {}
        assert result.size_bytes == 0

    def test_all_layers_filled_with_hotspots(self):
        result = aca_allocate(**_basic_inputs())
        for ids in result.layer_classes.values():
            assert set(ids) == set(result.hotspot_classes)

    def test_first_pick_maximizes_benefit(self):
        inputs = _basic_inputs()
        # Benefit = saved * ratio; compute the argmax directly.
        benefit = inputs["saved_time_ms"] * inputs["hit_ratio"]
        best = int(np.argmax(benefit))
        result = aca_allocate(**{**inputs, "budget_bytes": 70})
        assert best in result.layer_classes

    def test_discount_spreads_layers(self):
        """After picking layer b, deeper layers lose R[b]; the next pick
        should not be the immediate neighbour with nearly equal stats."""
        inputs = _basic_inputs(num_layers=6)
        inputs["hit_ratio"] = np.array([0.3, 0.31, 0.32, 0.6, 0.61, 0.62])
        inputs["saved_time_ms"] = np.array([10.0, 9.0, 8.0, 5.0, 4.0, 3.0])
        result = aca_allocate(**inputs)
        layers = result.selected_layers
        assert len(layers) >= 2
        # The discount zeroes out the two layers right after the first deep
        # pick, so selections cannot be three consecutive deep layers.
        assert layers != [3, 4, 5]

    def test_allowed_layers_respected(self):
        result = aca_allocate(**_basic_inputs(), allowed_layers=np.array([2, 3]))
        assert set(result.selected_layers).issubset({2, 3})

    def test_allowed_layers_bounds_checked(self):
        with pytest.raises(ValueError):
            aca_allocate(**_basic_inputs(), allowed_layers=np.array([99]))

    def test_available_classes_mask_filters_entries(self):
        inputs = _basic_inputs(num_classes=4, num_layers=3)
        available = np.ones((4, 3), dtype=bool)
        available[2, :] = False  # class 2 has no entries anywhere
        result = aca_allocate(**inputs, available_classes=available)
        for ids in result.layer_classes.values():
            assert 2 not in ids

    def test_zero_benefit_stops_allocation(self):
        inputs = _basic_inputs()
        inputs["hit_ratio"] = np.zeros(5)
        result = aca_allocate(**inputs)
        assert result.layer_classes == {}

    def test_recency_narrows_hotspots(self):
        inputs = _basic_inputs(num_classes=6)
        inputs["timestamps"] = np.array([0.0, 0.0, 900.0, 900.0, 900.0, 900.0])
        result = aca_allocate(**inputs)
        assert set(result.hotspot_classes) == {0, 1}

    def test_length_mismatch_rejected(self):
        inputs = _basic_inputs()
        inputs["saved_time_ms"] = inputs["saved_time_ms"][:-1]
        with pytest.raises(ValueError):
            aca_allocate(**inputs)

    def test_lookup_cost_fn_is_honoured(self):
        """The greedy optimizes the caller's lookup-cost model, not a
        hard-coded surrogate: ruinous lookups suppress every layer."""
        inputs = _basic_inputs()
        free = aca_allocate(**inputs, lookup_cost_ms=lambda n: 0.0)
        ruinous = aca_allocate(**inputs, lookup_cost_ms=lambda n: 1e9)
        assert ruinous.layer_classes == {}
        assert free.layer_classes  # free lookups leave layers worth adding

    def test_default_cost_matches_default_profile(self):
        """Without an explicit cost fn, ACA's default equals the default
        LatencyProfile calibration — one definition, no drift."""
        from repro.models.profiles import LookupCostModel, build_profile

        profile = build_profile(40.0, 4, [8] * 4)
        model = LookupCostModel()
        for n in (1, 10, 500):
            assert model(n) == pytest.approx(profile.lookup_cost_ms(n))
        default = aca_allocate(**_basic_inputs())
        explicit = aca_allocate(
            **_basic_inputs(), lookup_cost_ms=LookupCostModel()
        )
        assert default.layer_classes.keys() == explicit.layer_classes.keys()


class TestAcaProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        budget=st.integers(min_value=1, max_value=5_000),
        num_layers=st.integers(min_value=1, max_value=12),
        num_classes=st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_budget(self, seed, budget, num_layers, num_classes):
        rng = np.random.default_rng(seed)
        result = aca_allocate(
            global_freq=rng.uniform(0, 10, num_classes),
            timestamps=rng.uniform(0, 1000, num_classes),
            hit_ratio=rng.uniform(0, 1, num_layers),
            saved_time_ms=np.sort(rng.uniform(0, 50, num_layers))[::-1],
            entry_sizes_bytes=rng.integers(1, 64, num_layers),
            budget_bytes=budget,
            frames_per_round=300,
        )
        assert result.size_bytes <= budget
        # Each layer appears at most once and ids are valid.
        for layer, ids in result.layer_classes.items():
            assert 0 <= layer < num_layers
            assert np.unique(ids).size == ids.size
            assert np.all((ids >= 0) & (ids < num_classes))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_hotspots_are_score_prefix(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.uniform(0, 10, 20)
        hot = select_hotspot_classes(scores, 0.95)
        # Every selected class scores >= every unselected class.
        unselected = np.setdiff1d(np.arange(20), hot)
        if unselected.size:
            assert scores[hot].min() >= scores[unselected].max() - 1e-12
