"""Debug-gated runtime contracts for invariants static analysis can't see.

``repro lint`` proves *syntactic* discipline (no stray allocations, no
implicit dtypes); this module asserts the *semantic* invariants those
conventions exist to protect, at the moments they can actually break:

* cache layer storage after :meth:`SemanticCache.set_layer_entries` —
  C-contiguous, cache-dtype, unit-norm rows, unique in-range class ids;
* quantized-tier storage — positive float32 scales, symmetric int8 code
  range, bit-exact staged dequantization, a recorded error bound that
  dominates the measured worst-row reconstruction error, and the
  ``d * 127**2 < 2**24`` precondition of exact int8 scoring on the
  float32 BLAS path;
* the Eq. 4 merge's flat ``(class, layer)`` indices — in bounds and
  unique — and post-merge row normalization;
* :class:`VirtualClock` monotonicity (virtual time never runs backwards,
  not even by float error);
* workspace buffer aliasing — the views a probe kernel writes through
  ``out=`` must be pairwise disjoint, or results are silently corrupted;
* snapshot-store integrity — manifest checksums match the stored bytes,
  epochs stay monotonic, geometry matches the model, and a shipped
  :class:`~repro.store.delta.SnapshotDelta` covers exactly the dirty
  row set (a changed row outside the delta is a silent divergence).

Contracts are **off by default** (every check site is one truthy test of
:data:`ENABLED`).  Set ``REPRO_CONTRACTS=1`` in the environment before
interpreter start — CI runs the tier-1 suite that way — or toggle
programmatically with :func:`set_enabled` (tests use the
:func:`activated` context manager).  A violated contract raises
:class:`ContractViolation`, an ``AssertionError`` subclass, so contract
failures are loud in pytest and clearly not user errors.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "ContractViolation",
    "ENABLED",
    "activated",
    "check_admission_invariants",
    "check_candidate_ids",
    "check_clock_monotonic",
    "check_delta_apply",
    "check_distinct_views",
    "check_layer_entries",
    "check_merge_flat_indices",
    "check_merged_rows_normalized",
    "check_quantized_tier",
    "check_snapshot_manifest",
    "enabled",
    "require",
    "set_enabled",
]


class ContractViolation(AssertionError):
    """A runtime invariant the codebase promises was broken."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "") not in ("", "0")


#: Module-level gate read by every call site; repointed by set_enabled().
ENABLED: bool = _env_enabled()


def enabled() -> bool:
    """Whether contract checks currently run."""
    return ENABLED


def set_enabled(flag: bool) -> bool:
    """Set the gate programmatically; returns the previous value."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(flag)
    return previous


@contextmanager
def activated(flag: bool = True) -> Iterator[None]:
    """Temporarily force contracts on (or off) — the test-suite hook."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)


def require(condition: bool, message: str) -> None:
    """Raise :class:`ContractViolation` unless ``condition`` holds."""
    if not condition:
        raise ContractViolation(message)


# ----------------------------------------------------------------------
# Cache table contracts
# ----------------------------------------------------------------------

#: Unit-norm slack: float32 storage carries ~1e-7 relative rounding per
#: element; 1e-4 on the norm is orders of magnitude above that while
#: still catching any genuinely unnormalized row.
_NORM_ATOL = 1e-4


def check_layer_entries(
    layer: int,
    ids: np.ndarray,
    stored: np.ndarray,
    expected_dtype: np.dtype,
    num_classes: int,
) -> None:
    """Invariants of one installed cache layer's storage."""
    require(
        ids.ndim == 1 and stored.ndim == 2,
        f"layer {layer}: ids must be 1-D and centroids 2-D, got "
        f"{ids.shape} / {stored.shape}",
    )
    require(
        ids.shape[0] == stored.shape[0],
        f"layer {layer}: {ids.shape[0]} ids vs {stored.shape[0]} centroid rows",
    )
    require(
        stored.dtype == expected_dtype,
        f"layer {layer}: centroids stored as {stored.dtype}, cache dtype "
        f"is {expected_dtype} (implicit upcast destroys dtype parity)",
    )
    require(
        stored.flags.c_contiguous,
        f"layer {layer}: centroid matrix is not C-contiguous (the probe "
        "kernel's flat-index paths assume row-major storage)",
    )
    require(
        np.unique(ids).size == ids.size,
        f"layer {layer}: duplicate class ids",
    )
    if ids.size:
        require(
            bool((ids >= 0).all() and (ids < num_classes).all()),
            f"layer {layer}: class id out of [0, {num_classes})",
        )
        norms = np.linalg.norm(stored.astype(np.float64, copy=False), axis=1)
        worst = float(np.abs(norms - 1.0).max())
        require(
            worst <= _NORM_ATOL,
            f"layer {layer}: centroid row norm off unit by {worst:.2e} "
            f"(> {_NORM_ATOL:.0e})",
        )


# ----------------------------------------------------------------------
# Quantized-tier contracts
# ----------------------------------------------------------------------

#: Slack on the re-verified worst-row reconstruction error: the bound is
#: recomputed here in float64 exactly as the builder computed it, so any
#: excess beyond tiny re-summation rounding is a real violation.
_BOUND_ATOL = 1e-9


def check_quantized_tier(
    layer: int,
    stored: np.ndarray,
    codes: np.ndarray,
    scales: np.ndarray,
    staged: np.ndarray,
    bound: float,
) -> None:
    """Invariants of one layer's quantized companion storage.

    The two-tier kernel's correctness argument rests on exactly these:
    positive float32 per-row scales, codes inside the symmetric int8
    range, a staged matrix that is *bit-exactly* ``codes * scales`` in
    float32 (the matrix the coarse matmul consumes), a ``bound`` that
    really dominates the worst row's reconstruction error, and — for
    int8 codes — a centroid dimension small enough that float32 BLAS
    evaluates the integer dot products exactly (``d * 127**2 < 2**24``).
    """
    e, d = stored.shape
    require(
        codes.shape == (e, d) and staged.shape == (e, d),
        f"layer {layer}: quantized shapes {codes.shape} / {staged.shape} "
        f"do not match stored {stored.shape}",
    )
    require(
        codes.dtype in (np.dtype(np.int8), np.dtype(np.float16)),
        f"layer {layer}: quantized codes stored as {codes.dtype}, "
        "expected int8 or float16",
    )
    require(
        scales.dtype == np.dtype(np.float32)
        and staged.dtype == np.dtype(np.float32),
        f"layer {layer}: scales/staged must be float32, got "
        f"{scales.dtype} / {staged.dtype}",
    )
    require(
        scales.shape == (e,),
        f"layer {layer}: expected ({e},) scales, got {scales.shape}",
    )
    require(
        staged.flags.c_contiguous,
        f"layer {layer}: staged dequantization is not C-contiguous "
        "(the coarse matmul assumes row-major storage)",
    )
    if e == 0:
        return
    require(
        bool((scales > 0).all()),
        f"layer {layer}: non-positive quantization scale",
    )
    if codes.dtype == np.dtype(np.int8):
        require(
            bool((codes >= -127).all()),
            f"layer {layer}: int8 code below -127 (symmetric range)",
        )
        require(
            d * 127 * 127 < 2**24,
            f"layer {layer}: dim {d} breaks exact int8-in-float32 "
            f"arithmetic (d * 127**2 must stay below 2**24)",
        )
    expected = codes.astype(np.float32) * scales[:, None]
    require(
        np.array_equal(staged, expected),
        f"layer {layer}: staged dequantization is not bit-exactly "
        "codes * scales in float32",
    )
    err = stored.astype(np.float64, copy=False) - staged.astype(np.float64)
    worst = float(np.sqrt(np.max(np.einsum("ij,ij->i", err, err))))
    require(
        worst <= bound + _BOUND_ATOL,
        f"layer {layer}: worst-row reconstruction error {worst:.3e} "
        f"exceeds the recorded bound {bound:.3e}",
    )


def check_candidate_ids(candidates: np.ndarray, num_classes: int) -> None:
    """A pinned coarse-tier candidate set: unique, in-range class ids."""
    require(
        candidates.ndim == 1 and candidates.size >= 2,
        f"candidate set must be 1-D with >= 2 ids, got shape "
        f"{candidates.shape}",
    )
    require(
        bool((candidates >= 0).all() and (candidates < num_classes).all()),
        f"candidate class id out of [0, {num_classes})",
    )
    require(
        np.unique(candidates).size == candidates.size,
        "duplicate class ids in the coarse-tier candidate set",
    )


# ----------------------------------------------------------------------
# Eq. 4 merge contracts
# ----------------------------------------------------------------------

def check_merge_flat_indices(flat: np.ndarray, num_slots: int) -> None:
    """Flat ``(class, layer)`` scatter indices: in bounds and unique."""
    if flat.size == 0:
        return
    require(
        bool((flat >= 0).all() and (flat < num_slots).all()),
        f"merge flat index out of [0, {num_slots})",
    )
    require(
        np.unique(flat).size == flat.size,
        "duplicate flat (class, layer) keys reached the merge scatter",
    )


def check_merged_rows_normalized(
    entries_flat: np.ndarray, rows: np.ndarray
) -> None:
    """Rows touched by an Eq. 4 merge must come out unit-norm."""
    if rows.size == 0:
        return
    norms = np.linalg.norm(entries_flat[rows], axis=1)
    worst = float(np.abs(norms - 1.0).max())
    require(
        worst <= _NORM_ATOL,
        f"merged table row norm off unit by {worst:.2e} (> {_NORM_ATOL:.0e})",
    )


# ----------------------------------------------------------------------
# Snapshot-store contracts
# ----------------------------------------------------------------------

def check_snapshot_manifest(
    layout_version: int,
    epoch: int,
    geometry: tuple[int, int, int],
    expected_geometry: tuple[int, int, int] | None,
    checksums: dict[str, str],
    recomputed: dict[str, str],
    previous_epoch: int | None = None,
) -> None:
    """Invariants of a snapshot manifest against its stored arrays.

    Takes plain data (no store types) so this module stays dependency
    free: the caller supplies the manifest's recorded checksums and the
    freshly recomputed ones, its geometry, and — at a load site — the
    model geometry the snapshot must match.

    Checks: a supported layout version, a non-negative epoch that is
    strictly larger than ``previous_epoch`` when rewriting an existing
    snapshot (epoch monotonicity), geometry agreement with the model,
    and a recomputed checksum equal to the recorded one per array.
    """
    require(
        layout_version >= 1,
        f"snapshot layout version must be >= 1, got {layout_version}",
    )
    require(epoch >= 0, f"snapshot epoch must be >= 0, got {epoch}")
    if previous_epoch is not None:
        require(
            epoch > previous_epoch,
            f"snapshot epoch is not monotonic: {previous_epoch} -> {epoch}",
        )
    if expected_geometry is not None:
        require(
            tuple(geometry) == tuple(expected_geometry),
            f"snapshot geometry {tuple(geometry)} does not match the "
            f"model geometry {tuple(expected_geometry)}",
        )
    for name, recorded in checksums.items():
        actual = recomputed.get(name)
        require(
            actual is not None,
            f"snapshot array {name} has no recomputed checksum",
        )
        require(
            actual == recorded,
            f"snapshot array {name} fails its checksum: manifest records "
            f"{recorded[:12]}, stored bytes hash to {str(actual)[:12]}",
        )


def check_delta_apply(
    delta_entry_rows: np.ndarray,
    delta_freq_rows: np.ndarray,
    dirty_entry_rows: np.ndarray,
    dirty_freq_rows: np.ndarray,
    changed_entry_rows: np.ndarray | None = None,
    changed_freq_rows: np.ndarray | None = None,
) -> None:
    """A shipped snapshot delta must cover exactly the dirty row set.

    ``dirty_*`` are the rows the shard's epoch bookkeeping marks dirty
    since the receiver's base epoch; ``changed_*`` (optional, computed
    by the caller by value comparison *before* applying) are the rows
    where replica and shard actually differed.  The delta's rows must
    equal the dirty set, and every actually-changed row must be shipped
    — a changed row outside the delta means the epoch tracking missed a
    write and the replica would silently diverge.
    """
    require(
        np.array_equal(np.sort(delta_entry_rows), np.sort(dirty_entry_rows)),
        f"delta ships {delta_entry_rows.size} entry rows but the dirty "
        f"set has {dirty_entry_rows.size} (sets differ)",
    )
    require(
        np.array_equal(np.sort(delta_freq_rows), np.sort(dirty_freq_rows)),
        f"delta ships {delta_freq_rows.size} freq rows but the dirty "
        f"set has {dirty_freq_rows.size} (sets differ)",
    )
    if changed_entry_rows is not None and changed_entry_rows.size:
        missed = np.setdiff1d(changed_entry_rows, delta_entry_rows)
        require(
            missed.size == 0,
            f"delta misses {missed.size} entry rows that actually "
            f"changed (first: {missed[:5].tolist() if missed.size else []})",
        )
    if changed_freq_rows is not None and changed_freq_rows.size:
        missed = np.setdiff1d(changed_freq_rows, delta_freq_rows)
        require(
            missed.size == 0,
            f"delta misses {missed.size} freq rows that actually changed "
            f"(first: {missed[:5].tolist() if missed.size else []})",
        )


# ----------------------------------------------------------------------
# Serving admission contracts
# ----------------------------------------------------------------------

def check_admission_invariants(
    queue_depth: int,
    queue_bound: int,
    submitted: int,
    in_flight: int,
    outcomes: dict[str, int],
    total_queued: int | None = None,
) -> None:
    """Bookkeeping invariants of the serving front-end's admission control.

    Called by :class:`~repro.serve.frontend.ServeFrontend` at every
    admission and terminal event (under ``REPRO_CONTRACTS=1``):

    * the admission queue never holds more than its configured bound,
      and its depth is never negative;
    * terminal outcomes are exactly the three the API promises
      (``success`` / ``timeout`` / ``shed``), each with a non-negative
      count;
    * conservation: every submitted request is either still queued,
      in service, or resolved with **exactly one** terminal outcome —
      a lost response or a double-resolved request breaks the equality
      in one direction or the other.

    ``queue_depth``/``queue_bound`` describe the *one* queue an event
    touched; the ledger totals (``submitted``, ``in_flight``, and the
    conservation law) span the whole front-end, so a sharded caller
    must pass the queue depth summed over every shard as
    ``total_queued`` (defaults to ``queue_depth`` for the single-queue
    case).
    """
    require(
        0 <= queue_depth <= queue_bound,
        f"admission queue depth {queue_depth} outside [0, {queue_bound}]",
    )
    unknown = set(outcomes) - {"success", "timeout", "shed"}
    require(
        not unknown,
        f"unknown terminal outcome(s) {sorted(unknown)}; a request must "
        "resolve as success, timeout, or shed",
    )
    require(
        all(count >= 0 for count in outcomes.values()),
        f"negative terminal outcome count in {outcomes}",
    )
    require(in_flight >= 0, f"in-flight count is negative: {in_flight}")
    queued = queue_depth if total_queued is None else total_queued
    require(
        queued >= queue_depth,
        f"total queued {queued} is less than one queue's depth {queue_depth}",
    )
    resolved = sum(outcomes.values())
    require(
        submitted == resolved + queued + in_flight,
        f"admission conservation broken: {submitted} submitted != "
        f"{resolved} resolved + {queued} queued + "
        f"{in_flight} in flight (a request was lost or resolved twice)",
    )


# ----------------------------------------------------------------------
# Clock and workspace contracts
# ----------------------------------------------------------------------

def check_clock_monotonic(previous_ms: float, now_ms: float) -> None:
    """Virtual time may never decrease."""
    require(
        now_ms >= previous_ms,
        f"virtual clock ran backwards: {previous_ms} -> {now_ms}",
    )


def check_distinct_views(**views: np.ndarray) -> None:
    """Named workspace views must be pairwise non-overlapping.

    Two pool views sharing memory means one ``out=`` write corrupts
    another buffer mid-kernel — the exact failure mode the named-pool
    convention exists to prevent.
    """
    items = list(views.items())
    for i in range(len(items)):
        name_a, a = items[i]
        for name_b, b in items[i + 1:]:
            if a.size == 0 or b.size == 0:
                continue
            require(
                not np.shares_memory(a, b),
                f"workspace views {name_a!r} and {name_b!r} alias the "
                "same pool memory",
            )
