"""Adaptive locality-sensitive hashing (A-LSH), after FoggyCache.

FoggyCache (Guo et al., MobiCom'18) organizes cached feature vectors with
an LSH variant that *adapts the bucket granularity to the data density*:
when a bucket overflows, its resolution is increased locally by extending
the hash with additional hyperplanes, keeping lookup candidate lists short
without global rehashing.

This implementation uses signed random projections (hyperplane LSH, the
natural choice for cosine similarity): a key is the sign pattern of the
vector against ``base_bits`` hyperplanes; buckets exceeding
``max_bucket_size`` are split by locally extending the pattern with
reserve hyperplanes, recursively, up to ``max_bits``.

:meth:`AdaptiveLSH.query_batch` resolves many queries with one batched
sign-hash matmul, so FoggyCache-style consumers can probe the index
array-at-a-time, matching per-vector :meth:`AdaptiveLSH.query` result
for result.
"""

from __future__ import annotations

import numpy as np


class AdaptiveLSH:
    """Cosine LSH index with density-adaptive bucket splitting.

    Args:
        dim: dimensionality of indexed vectors.
        rng: generator for the (fixed) random hyperplanes.
        base_bits: initial hash length.
        max_bits: maximum hash length after local splits.
        max_bucket_size: a bucket larger than this is split (if bits
            remain) before further insertions.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        base_bits: int = 6,
        max_bits: int = 14,
        max_bucket_size: int = 24,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not 1 <= base_bits <= max_bits:
            raise ValueError("need 1 <= base_bits <= max_bits")
        if max_bucket_size < 1:
            raise ValueError("max_bucket_size must be >= 1")
        self.dim = dim
        self.base_bits = base_bits
        self.max_bits = max_bits
        self.max_bucket_size = max_bucket_size
        self._planes = rng.standard_normal((max_bits, dim))
        # bucket key: tuple of sign bits (variable length >= base_bits).
        # Keys in _split are interior trie nodes: their contents moved to
        # longer-key children and nothing may be stored there again.
        self._buckets: dict[tuple[int, ...], list[int]] = {}
        self._split: set[tuple[int, ...]] = set()
        self._vectors: list[np.ndarray] = []
        self._alive: list[bool] = []

    def __len__(self) -> int:
        return sum(self._alive)

    def _signs(self, vector: np.ndarray, bits: int) -> tuple[int, ...]:
        return tuple((self._planes[:bits] @ vector > 0).astype(int))

    def _locate_bucket(self, vector: np.ndarray) -> tuple[int, ...]:
        """Find the leaf bucket key a vector belongs to.

        Descends through split (interior) nodes; the returned key is never
        a split node, so inserts cannot resurrect a split parent.
        """
        bits = self.base_bits
        key = self._signs(vector, bits)
        while key in self._split and bits < self.max_bits:
            bits += 1
            key = self._signs(vector, bits)
        return key

    def insert(self, vector: np.ndarray) -> int:
        """Index a vector; returns its id (for deletion)."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.dim,):
            raise ValueError(f"vector shape {vec.shape} != ({self.dim},)")
        item_id = len(self._vectors)
        self._vectors.append(vec.copy())
        self._alive.append(True)
        key = self._locate_bucket(vec)
        bucket = self._buckets.setdefault(key, [])
        bucket.append(item_id)
        self._maybe_split(key)
        return item_id

    def delete(self, item_id: int) -> None:
        """Remove a vector by id (lazy: purged from its bucket on split/query)."""
        if not 0 <= item_id < len(self._alive):
            raise KeyError(f"unknown item id {item_id}")
        self._alive[item_id] = False

    def _maybe_split(self, key: tuple[int, ...]) -> None:
        bucket = self._buckets.get(key, [])
        live = [i for i in bucket if self._alive[i]]
        if len(live) <= self.max_bucket_size or len(key) >= self.max_bits:
            self._buckets[key] = live
            return
        bits = len(key) + 1
        del self._buckets[key]
        self._split.add(key)
        for item in live:
            child = self._signs(self._vectors[item], bits)
            self._buckets.setdefault(child, []).append(item)
        # Recurse in case one child still overflows.
        for child_key in {self._signs(self._vectors[i], bits) for i in live}:
            self._maybe_split(child_key)

    def query(self, vector: np.ndarray) -> list[int]:
        """Candidate ids in the query's bucket (dead entries purged)."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.dim,):
            raise ValueError(f"vector shape {vec.shape} != ({self.dim},)")
        key = self._locate_bucket(vec)
        return self._live_bucket(key)

    def query_batch(self, vectors: np.ndarray) -> list[list[int]]:
        """Candidate ids for many queries at once.

        The sign patterns of all queries against *all* hyperplanes come
        from a single ``(n, dim) @ (dim, max_bits)`` product — the
        dominant per-query cost of :meth:`query` — after which the trie
        descent per query is a few dict probes on precomputed bits.
        Result ``k`` equals ``query(vectors[k])`` (dead entries purged
        the same way).
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.dim:
            raise ValueError(f"vectors shape {vecs.shape} != (n, {self.dim})")
        signs = (vecs @ self._planes.T > 0).astype(int)  # (n, max_bits)
        results: list[list[int]] = []
        for row in signs.tolist():
            bits = self.base_bits
            key = tuple(row[:bits])
            while key in self._split and bits < self.max_bits:
                bits += 1
                key = tuple(row[:bits])
            results.append(self._live_bucket(key))
        return results

    def _live_bucket(self, key: tuple[int, ...]) -> list[int]:
        """Live ids of one bucket, purging dead entries in place."""
        bucket = self._buckets.get(key, [])
        live = [i for i in bucket if self._alive[i]]
        if len(live) != len(bucket):
            self._buckets[key] = live
        return list(live)

    def vector(self, item_id: int) -> np.ndarray:
        return self._vectors[item_id].copy()

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)
