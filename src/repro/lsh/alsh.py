"""Adaptive locality-sensitive hashing (A-LSH), after FoggyCache.

FoggyCache (Guo et al., MobiCom'18) organizes cached feature vectors with
an LSH variant that *adapts the bucket granularity to the data density*:
when a bucket overflows, its resolution is increased locally by extending
the hash with additional hyperplanes, keeping lookup candidate lists short
without global rehashing.

This implementation uses signed random projections (hyperplane LSH, the
natural choice for cosine similarity): a key is the sign pattern of the
vector against ``base_bits`` hyperplanes; buckets exceeding
``max_bucket_size`` are split by locally extending the pattern with
reserve hyperplanes, recursively, up to ``max_bits``.

The index is array-backed: vectors live in one ``(capacity, dim)``
matrix, each row's full sign pattern is packed into a single ``uint64``
code at insertion, and bucket keys are ``(bits, code & mask)`` pairs —
so locating a bucket is integer masking, never a re-hash.  Item ids are
stable across deletions via an id -> row indirection; when dead rows
outnumber live ones the storage compacts automatically (and
:meth:`AdaptiveLSH.rebuild` replaces the whole content in one shot,
purging every dead row).  :meth:`AdaptiveLSH.query_batch` resolves many
queries with one batched sign-hash matmul and a per-*level* vectorized
trie descent (``np.isin`` against the split keys of each bit length),
matching per-vector :meth:`AdaptiveLSH.query` result for result.

An optional ``center`` shifts the hyperplanes to pass through the data
centroid instead of the origin.  Cached semantic vectors share a large
common component (see :mod:`repro.models.feature`), so origin-anchored
hyperplanes would put almost every vector on the same side of almost
every plane; centering makes the planes cut through the class-specific
structure — the same standardization trick FoggyCache's homogenized
kNN applies before voting.
"""

from __future__ import annotations

import numpy as np

_MIN_COMPACT_ROWS = 32


class AdaptiveLSH:
    """Cosine LSH index with density-adaptive bucket splitting.

    Args:
        dim: dimensionality of indexed vectors.
        rng: generator for the (fixed) random hyperplanes.
        base_bits: initial hash length.
        max_bits: maximum hash length after local splits (<= 64, codes
            are packed into one ``uint64`` per vector).
        max_bucket_size: a bucket larger than this is split (if bits
            remain) before further insertions.
        center: optional ``(dim,)`` point the hyperplanes pass through
            (default: the origin).  See the module docstring.
        multi_probe: queries additionally probe the buckets reached by
            flipping every subset of their ``multi_probe``
            lowest-|margin| base bits — the hyperplanes the query sits
            closest to, i.e. the hash bits most likely to disagree with
            a true neighbour's.  ``2**multi_probe`` keys are probed and
            their (disjoint) buckets concatenated; 0 = single-bucket
            lookup.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        base_bits: int = 6,
        max_bits: int = 14,
        max_bucket_size: int = 24,
        center: np.ndarray | None = None,
        multi_probe: int = 0,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not 1 <= base_bits <= max_bits:
            raise ValueError("need 1 <= base_bits <= max_bits")
        if max_bits > 57:
            # Batch lookups pack (bits, code) into one uint64 as
            # (bits << max_bits) | code; the bit-length field needs the
            # remaining headroom, so 57 is the packing limit.
            raise ValueError(f"max_bits must be <= 57, got {max_bits}")
        if max_bucket_size < 1:
            raise ValueError("max_bucket_size must be >= 1")
        if not 0 <= multi_probe <= base_bits:
            raise ValueError(
                f"multi_probe must be in [0, base_bits], got {multi_probe}"
            )
        self.dim = dim
        self.base_bits = base_bits
        self.max_bits = max_bits
        self.max_bucket_size = max_bucket_size
        self.multi_probe = multi_probe
        self._planes = rng.standard_normal((max_bits, dim))
        self._bit_values = np.uint64(1) << np.arange(max_bits, dtype=np.uint64)
        self._offsets = np.zeros(max_bits, dtype=np.float64)
        # Flip-subset table for multi-probe: row s selects which of the
        # t chosen low-margin bits subset s flips.
        t = multi_probe
        self._flip_subsets = np.array(
            [[(s >> j) & 1 for j in range(t)] for s in range(1 << t)],
            dtype=np.uint64,
        )
        if center is not None:
            self.set_center(center)
        # Row storage: vectors, packed sign codes and the owning item id
        # per row (-1 = dead).  Ids stay stable through compaction via the
        # id -> row map; rows are recycled wholesale, never individually.
        self._matrix = np.empty((0, dim), dtype=np.float64)
        self._codes = np.empty(0, dtype=np.uint64)
        self._row_ids = np.empty(0, dtype=np.int64)
        self._rows = 0
        self._row_of: dict[int, int] = {}
        self._next_id = 0
        # bucket key: (bits, code masked to that length).  Keys in _split
        # are interior trie nodes: their contents moved to longer-key
        # children and nothing may be stored there again.  _split_by_bits
        # mirrors _split per bit length for the vectorized batch descent.
        self._buckets: dict[tuple[int, int], list[int]] = {}
        self._split: set[tuple[int, int]] = set()
        self._split_by_bits: dict[int, set[int]] = {}
        # Per-level split-code arrays for the vectorized trie descent,
        # built lazily from _split_by_bits and invalidated on split.
        self._split_arrays: dict[int, np.ndarray] = {}
        # Deletions whose ids may still linger in bucket lists (purged
        # lazily).  0 means every bucket list is clean — the common
        # rebuild-only lifecycle — so _live_bucket can skip the purge
        # scan entirely.
        self._lazy_dead = 0

    def __len__(self) -> int:
        return len(self._row_of)

    @property
    def storage_rows(self) -> int:
        """Rows currently held in the backing matrix (live + dead)."""
        return self._rows

    def set_center(self, center: np.ndarray) -> None:
        """Anchor the hyperplanes at ``center`` (affects future hashes).

        Call before indexing (or let :meth:`rebuild` re-hash everything);
        changing the center of a populated index would silently orphan
        the existing codes.
        """
        point = np.asarray(center, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"center shape {point.shape} != ({self.dim},)")
        self._offsets = self._planes @ point

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _code_of(self, vector: np.ndarray) -> np.uint64:
        signs = (self._planes @ vector) > self._offsets
        return np.uint64(np.sum(self._bit_values[signs], dtype=np.uint64))

    def _codes_of(self, vectors: np.ndarray) -> np.ndarray:
        signs = (vectors @ self._planes.T) > self._offsets
        return (signs * self._bit_values).sum(axis=1, dtype=np.uint64)

    def _probe_codes(
        self, codes: np.ndarray, projections: np.ndarray
    ) -> np.ndarray:
        """``(n, 2**multi_probe)`` probe codes per query.

        Flips every subset of each query's ``multi_probe``
        lowest-|margin| base bits (distinct powers of two, so the
        subset xor is a plain integer matmul).
        """
        t = self.multi_probe
        if t == 0:
            return codes[:, None]
        margins = np.abs(projections[:, : self.base_bits])
        if t < self.base_bits:
            chosen = np.argpartition(margins, t - 1, axis=1)[:, :t]
        else:
            chosen = np.argsort(margins, axis=1)
        bit_values = self._bit_values[chosen]  # (n, t)
        flips = bit_values @ self._flip_subsets.T  # (n, 2**t)
        return codes[:, None] ^ flips

    @staticmethod
    def _mask(bits: int) -> int:
        return (1 << bits) - 1

    def _locate_key(self, code: int) -> tuple[int, int]:
        """Leaf bucket key of a code: descend through split nodes."""
        bits = self.base_bits
        key = (bits, int(code) & self._mask(bits))
        while key in self._split and bits < self.max_bits:
            bits += 1
            key = (bits, int(code) & self._mask(bits))
        return key

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------

    def _append_row(self, vector: np.ndarray, code: np.uint64) -> int:
        if self._rows == self._matrix.shape[0]:
            grow = max(2 * self._matrix.shape[0], _MIN_COMPACT_ROWS)
            matrix = np.empty((grow, self.dim), dtype=np.float64)
            matrix[: self._rows] = self._matrix[: self._rows]
            self._matrix = matrix
            self._codes = np.resize(self._codes, grow)
            row_ids = np.full(grow, -1, dtype=np.int64)
            row_ids[: self._rows] = self._row_ids[: self._rows]
            self._row_ids = row_ids
        row = self._rows
        item_id = self._next_id
        self._matrix[row] = vector
        self._codes[row] = code
        self._row_ids[row] = item_id
        self._row_of[item_id] = row
        self._rows += 1
        self._next_id += 1
        return item_id

    def insert(self, vector: np.ndarray) -> int:
        """Index a vector; returns its id (for deletion)."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.dim,):
            raise ValueError(f"vector shape {vec.shape} != ({self.dim},)")
        code = self._code_of(vec)
        item_id = self._append_row(vec, code)
        key = self._locate_key(int(code))
        self._buckets.setdefault(key, []).append(item_id)
        self._maybe_split(key)
        return item_id

    def insert_many(self, vectors: np.ndarray) -> np.ndarray:
        """Bulk-index many vectors with one batched sign-hash matmul."""
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.dim:
            raise ValueError(f"vectors shape {vecs.shape} != (n, {self.dim})")
        codes = self._codes_of(vecs)
        ids = np.empty(len(vecs), dtype=np.int64)
        touched: set[tuple[int, int]] = set()
        for k, (vec, code) in enumerate(zip(vecs, codes)):
            ids[k] = self._append_row(vec, code)
            key = self._locate_key(int(code))
            self._buckets.setdefault(key, []).append(int(ids[k]))
            touched.add(key)
        for key in touched:
            if key in self._buckets:
                self._maybe_split(key)
        return ids

    def delete(self, item_id: int) -> None:
        """Remove a vector by id (lazy: purged from its bucket on
        split/query; the backing row is reclaimed when dead rows
        outnumber live ones, or at the next :meth:`rebuild`)."""
        if not 0 <= item_id < self._next_id:
            raise KeyError(f"unknown item id {item_id}")
        row = self._row_of.pop(item_id, None)
        if row is None:
            return  # already dead — deletion is idempotent
        self._row_ids[row] = -1
        self._lazy_dead += 1
        dead = self._rows - len(self._row_of)
        if self._rows >= _MIN_COMPACT_ROWS and dead > len(self._row_of):
            self._compact()

    def _compact(self) -> None:
        """Drop dead rows from the backing arrays (ids keep working)."""
        live = self._row_ids[: self._rows] >= 0
        self._matrix = self._matrix[: self._rows][live]
        self._codes = self._codes[: self._rows][live]
        self._row_ids = self._row_ids[: self._rows][live]
        self._rows = int(self._row_ids.size)
        self._row_of = {
            int(item_id): row for row, item_id in enumerate(self._row_ids)
        }

    def rebuild(self, vectors: np.ndarray) -> np.ndarray:
        """Replace the whole content, reusing the hyperplanes.

        Storage shrinks to exactly ``len(vectors)`` rows (every dead row
        from prior deletions is purged) and fresh ids ``0..n-1`` are
        returned.  This is how an incrementally maintained consumer —
        :meth:`repro.core.cache.SemanticCache.set_layer_entries` — swaps
        a layer's entries without re-drawing hyperplanes.

        Rebuilding into an empty trie means every vector's leaf is its
        base-bits key, so buckets are built by one vectorized group-by
        on the packed codes (no per-row trie descent); splits then run
        per overflowing bucket.  The trie fixpoint — a node is interior
        iff more than ``max_bucket_size`` codes share its prefix — is
        the same one sequential insertion reaches.
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.dim:
            raise ValueError(f"vectors shape {vecs.shape} != (n, {self.dim})")
        n = vecs.shape[0]
        self._buckets = {}
        self._split = set()
        self._split_by_bits = {}
        self._split_arrays = {}
        self._lazy_dead = 0
        if n == 0:
            self._matrix = np.empty((0, self.dim), dtype=np.float64)
            self._codes = np.empty(0, dtype=np.uint64)
            self._row_ids = np.empty(0, dtype=np.int64)
            self._rows = 0
            self._row_of = {}
            self._next_id = 0
            return np.empty(0, dtype=np.int64)
        self._matrix = vecs.copy()
        self._codes = self._codes_of(vecs)
        self._row_ids = np.arange(n, dtype=np.int64)
        self._rows = n
        self._row_of = {item: item for item in range(n)}
        self._next_id = n
        base_keys = self._codes & np.uint64(self._mask(self.base_bits))
        order = np.argsort(base_keys, kind="stable")  # id order within key
        uniq, starts = np.unique(base_keys[order], return_index=True)
        bounds = np.append(starts, n)
        for k, key_code in enumerate(uniq.tolist()):
            key = (self.base_bits, int(key_code))
            self._buckets[key] = order[bounds[k] : bounds[k + 1]].tolist()
            self._maybe_split(key)
        return np.arange(n, dtype=np.int64)

    def _maybe_split(self, key: tuple[int, int]) -> None:
        bucket = self._buckets.get(key, [])
        if self._lazy_dead:
            live = [i for i in bucket if i in self._row_of]
            # Buckets partition ids, so every purge retires its dead
            # ids for good and the pending-purge count can shrink.
            self._lazy_dead -= len(bucket) - len(live)
        else:
            live = bucket
        bits, _ = key
        if len(live) <= self.max_bucket_size or bits >= self.max_bits:
            self._buckets[key] = live
            return
        child_bits = bits + 1
        mask = self._mask(child_bits)
        del self._buckets[key]
        self._split.add(key)
        self._split_by_bits.setdefault(bits, set()).add(key[1])
        self._split_arrays.pop(bits, None)
        child_keys = set()
        for item in live:
            code = int(self._codes[self._row_of[item]])
            child = (child_bits, code & mask)
            self._buckets.setdefault(child, []).append(item)
            child_keys.add(child)
        # Recurse in case one child still overflows.
        for child_key in child_keys:
            self._maybe_split(child_key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, vector: np.ndarray) -> list[int]:
        """Candidate ids in the query's bucket(s) (dead entries purged).

        With ``multi_probe`` set, the concatenation of every probed
        bucket in deterministic (sorted-key) order; buckets partition
        the ids, so the result is duplicate-free.  The returned list
        may alias a bucket's live view — treat it as read-only.
        """
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.dim,):
            raise ValueError(f"vector shape {vec.shape} != ({self.dim},)")
        if self.multi_probe == 0:
            key = self._locate_key(int(self._code_of(vec)))
            return self._live_bucket(key)
        raw = self._planes @ vec
        codes = np.array(
            [np.sum(self._bit_values[raw > self._offsets], dtype=np.uint64)]
        )
        probe_codes = self._probe_codes(codes, (raw - self._offsets)[None, :])[0]
        keys = sorted({self._locate_key(int(code)) for code in probe_codes})
        if len(keys) == 1:
            return self._live_bucket(keys[0])
        merged: list[int] = []
        for key in keys:
            merged.extend(self._live_bucket(key))
        return merged

    def _resolve_keys(self, codes: np.ndarray) -> np.ndarray:
        """Trie-descend every code at once; returns per-query bit length.

        One pass per bit *level*: rows sitting at a split key of that
        length extend by one bit, everyone else has found their leaf.
        """
        bits = np.full(codes.size, self.base_bits, dtype=np.int64)
        for level in range(self.base_bits, self.max_bits):
            split_codes = self._split_by_bits.get(level)
            if not split_codes:
                continue
            at = np.flatnonzero(bits == level)
            if at.size == 0:
                continue
            keys = codes[at] & np.uint64(self._mask(level))
            split_array = self._split_arrays.get(level)
            if split_array is None:
                split_array = np.fromiter(split_codes, dtype=np.uint64)
                self._split_arrays[level] = split_array
            promote = np.isin(keys, split_array)
            bits[at[promote]] += 1
        return bits

    def _leaf_combos(self, vecs: np.ndarray) -> tuple[np.ndarray, int]:
        """Resolved leaf keys of every probe of every query, packed.

        One batched sign-hash matmul, multi-probe code expansion, and
        per-bit-level trie descent; returns ``(combos, num_probes)``
        where ``combos`` is the flat ``(n * num_probes,)`` array of
        ``(bits << max_bits) | masked_code`` leaf keys.  The single
        implementation behind :meth:`query_batch` and
        :meth:`shortlist`.
        """
        raw = vecs @ self._planes.T
        codes = ((raw > self._offsets) * self._bit_values).sum(
            axis=1, dtype=np.uint64
        )
        probe_codes = self._probe_codes(codes, raw - self._offsets)  # (n, P)
        flat = np.ascontiguousarray(probe_codes.reshape(-1))
        bits = self._resolve_keys(flat)
        masked = flat & (
            (np.uint64(1) << bits.astype(np.uint64, copy=False)) - np.uint64(1)
        )
        combos = (
            bits.astype(np.uint64, copy=False) << np.uint64(self.max_bits)
        ) | masked
        return combos, probe_codes.shape[1]

    def query_batch(self, vectors: np.ndarray) -> list[list[int]]:
        """Candidate ids for many queries at once.

        The sign patterns of all queries against *all* hyperplanes come
        from a single ``(n, dim) @ (dim, max_bits)`` product, the trie
        descent runs vectorized per bit level over every probe code, and
        each distinct leaf bucket is resolved exactly once (queries
        sharing a bucket share the returned list — treat the lists as
        read-only).  Result ``k`` equals ``query(vectors[k])`` (same
        multi-probe union, same ordering, dead entries purged the same
        way).
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.dim:
            raise ValueError(f"vectors shape {vecs.shape} != (n, {self.dim})")
        n = vecs.shape[0]
        if n == 0:
            return []
        combo, num_probes = self._leaf_combos(vecs)
        bucket_of: dict[int, list[int]] = {}

        def resolve(combo_key: int) -> list[int]:
            bucket = bucket_of.get(combo_key)
            if bucket is None:
                bucket = self._live_bucket(
                    (combo_key >> self.max_bits,
                     combo_key & self._mask(self.max_bits))
                )
                bucket_of[combo_key] = bucket
            return bucket

        if num_probes == 1:
            return [resolve(int(c)) for c in combo]
        results: list[list[int]] = []
        combo_rows = combo.reshape(n, num_probes).tolist()
        merged_of: dict[tuple[int, ...], list[int]] = {}
        for row in combo_rows:
            keys = tuple(sorted(set(row)))
            if len(keys) == 1:
                results.append(resolve(keys[0]))
                continue
            merged = merged_of.get(keys)
            if merged is None:
                merged = []
                for combo_key in keys:
                    merged.extend(resolve(combo_key))
                merged_of[keys] = merged
            results.append(merged)
        return results

    def shortlist(self, vectors: np.ndarray) -> np.ndarray:
        """Sorted unique candidate ids across *all* queries at once.

        The union of every query's (multi-probe) buckets, computed at
        bucket granularity: the batched sign-hash matmul and trie
        descent run once, the distinct probe keys are deduplicated with
        one ``np.unique``, and each distinct bucket is touched exactly
        once — far cheaper than unioning :meth:`query_batch`'s per-row
        lists.  This is the per-session candidate shortlist of the
        pruned probe kernel: a batch dominated by hot-spot runs touches
        few distinct buckets.
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.dim:
            raise ValueError(f"vectors shape {vecs.shape} != (n, {self.dim})")
        if vecs.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        combo = np.unique(self._leaf_combos(vecs)[0])
        merged: list[int] = []
        for combo_key in combo.tolist():
            merged.extend(
                self._live_bucket(
                    (combo_key >> self.max_bits,
                     combo_key & self._mask(self.max_bits))
                )
            )
        if not merged:
            return np.empty(0, dtype=np.int64)
        # Buckets partition the ids and the probed keys are distinct, so
        # the concatenation is already duplicate-free: a sort (not the
        # hash-dedup of ``np.unique``) restores the documented order.
        return np.sort(np.asarray(merged, dtype=np.int64))

    def _live_bucket(self, key: tuple[int, int]) -> list[int]:
        """Live ids of one bucket, purging dead entries in place.

        Returns the live list itself (single pass, no defensive copy) —
        callers must not mutate it.
        """
        bucket = self._buckets.get(key, [])
        if not self._lazy_dead:
            # No deletion since the last rebuild: every bucket list is
            # clean, and the purge scan (which dominates shortlist cost
            # on hot caches) is skipped outright.
            return bucket
        live = [i for i in bucket if i in self._row_of]
        if len(live) != len(bucket):
            self._buckets[key] = live
            self._lazy_dead -= len(bucket) - len(live)
        return live

    def vector(self, item_id: int) -> np.ndarray:
        row = self._row_of.get(item_id)
        if row is None:
            raise KeyError(f"unknown or deleted item id {item_id}")
        return self._matrix[row].copy()

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)
