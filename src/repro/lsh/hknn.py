"""Homogenized k-nearest-neighbour voting (H-kNN), after FoggyCache.

Plain kNN over cached feature vectors returns the majority label of the k
closest entries.  FoggyCache's *homogenized* variant additionally demands
that the neighbourhood be dominated by one label, weighting votes by
proximity — an approximate-reuse result is only returned when the cache
is genuinely confident, otherwise the query falls through to the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KnnVote:
    """Outcome of a homogenized kNN vote.

    Attributes:
        label: winning label (meaningful only when ``hit``).
        homogeneity: proximity-weighted share of the winning label in the
            neighbourhood, in [0, 1].
        hit: whether homogeneity reached the decision threshold.
        num_candidates: entries actually scanned.
    """

    label: int
    homogeneity: float
    hit: bool
    num_candidates: int


def homogenized_knn(
    query: np.ndarray,
    vectors: np.ndarray,
    labels: np.ndarray,
    k: int = 8,
    threshold: float = 0.8,
    center: np.ndarray | None = None,
    min_similarity: float = -1.0,
) -> KnnVote:
    """Vote among the ``k`` nearest candidates (cosine distance).

    Args:
        query: query vector, shape (d,).
        vectors: candidate matrix, shape (n, d); rows need not be unit
            norm (they are normalized internally).
        labels: candidate labels, shape (n,).
        k: neighbourhood size.
        threshold: minimum proximity-weighted majority share for a hit.
        center: optional mean vector subtracted from the query and every
            candidate before comparison.  FoggyCache standardizes raw
            features the same way: pooled activations share a large common
            component that otherwise swamps the class-specific geometry.
        min_similarity: candidates whose (centered) cosine similarity to
            the query falls below this are excluded before voting — the
            distance criterion of FoggyCache's homogenization.  A
            neighbourhood of merely-related entries (e.g. sibling classes)
            is then too small to vote, instead of voting wrongly with
            perfect homogeneity.

    Returns:
        A :class:`KnnVote`; with no candidates, a guaranteed miss.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    mat = np.asarray(vectors, dtype=float)
    labs = np.asarray(labels)
    if mat.ndim != 2 or mat.shape[0] != labs.shape[0]:
        raise ValueError("vectors and labels disagree in length")
    n = mat.shape[0]
    if n < k:
        # Too few candidates for a trustworthy vote: a 1-2 entry bucket is
        # trivially "homogeneous" whatever its label, so require a full
        # neighbourhood before reusing a result.
        return KnnVote(label=-1, homogeneity=0.0, hit=False, num_candidates=int(n))

    q = np.asarray(query, dtype=float)
    if center is not None:
        ctr = np.asarray(center, dtype=float)
        q = q - ctr
        mat = mat - ctr
    qn = np.linalg.norm(q)
    norms = np.linalg.norm(mat, axis=1)
    valid = (norms > 0) & np.isfinite(norms)
    if qn == 0 or not np.any(valid):
        return KnnVote(label=-1, homogeneity=0.0, hit=False, num_candidates=int(n))
    sims = np.full(n, -np.inf)
    sims[valid] = (mat[valid] @ q) / (norms[valid] * qn)
    close = sims >= min_similarity
    if int(close.sum()) < k:
        return KnnVote(label=-1, homogeneity=0.0, hit=False, num_candidates=int(n))
    sims = np.where(close, sims, -np.inf)

    top = np.argsort(sims)[-min(k, int(close.sum())):]
    # Proximity weights: map cosine in [-1, 1] to a positive weight.
    weights = np.clip(sims[top], 0.0, None) + 1e-9
    vote_weights: dict[int, float] = {}
    for idx, wgt in zip(top, weights):
        lab = int(labs[idx])
        vote_weights[lab] = vote_weights.get(lab, 0.0) + float(wgt)
    winner = max(vote_weights, key=vote_weights.get)
    total = sum(vote_weights.values())
    homogeneity = vote_weights[winner] / total if total > 0 else 0.0
    return KnnVote(
        label=winner,
        homogeneity=homogeneity,
        hit=homogeneity >= threshold,
        num_candidates=int(n),
    )
