"""LSH substrate for the FoggyCache baseline: A-LSH index + H-kNN voting."""

from repro.lsh.alsh import AdaptiveLSH
from repro.lsh.hknn import KnnVote, homogenized_knn

__all__ = ["AdaptiveLSH", "KnnVote", "homogenized_knn"]
