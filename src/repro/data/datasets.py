"""Dataset descriptors mirroring the paper's three evaluation datasets.

The paper evaluates on UCF101 (101-class action recognition video),
ImageNet-100 (100-class image subset) and ESC-50 (50-class environmental
audio).  The caching algorithms never look at pixels or waveforms — they
consume a *class-labelled frame stream* plus per-layer semantic vectors
produced by the model substrate — so the reproduction replaces each dataset
with a :class:`DatasetSpec` capturing the properties that matter:

* the class count (and subset size used by each experiment),
* how temporally coherent the stream is (video >> shuffled images), and
* the base difficulty, which calibrates the no-cache model accuracy to the
  paper's Edge-Only numbers.

``subset(n)`` models the paper's "subset of N classes from X" constructions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a classification stream workload.

    Attributes:
        name: human-readable identifier, e.g. ``"ucf101-50"``.
        num_classes: number of distinct classes in the task.
        mean_run_length: expected number of consecutive frames sharing one
            class.  Video streams (UCF101) have long runs — the temporal
            locality that makes result caching effective; batched image
            datasets are organized into same-class batches by the paper's
            own protocol ("our test dataset is organized into batches, with
            all samples in a batch sharing the same class label").
        difficulty: in [0, 1); scales the feature-noise level of the model
            substrate so that full-model accuracy lands near the paper's
            Edge-Only accuracy for this dataset.
        modality: ``"video"``, ``"image"`` or ``"audio"`` (documentation
            only; the simulator treats all modalities identically).
    """

    name: str
    num_classes: int
    mean_run_length: float
    difficulty: float
    modality: str = "video"

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"{self.name}: need >= 2 classes, got {self.num_classes}")
        if self.mean_run_length < 1.0:
            raise ValueError(
                f"{self.name}: mean_run_length must be >= 1, got {self.mean_run_length}"
            )
        if not 0.0 <= self.difficulty < 1.0:
            raise ValueError(
                f"{self.name}: difficulty must be in [0, 1), got {self.difficulty}"
            )

    def subset(self, num_classes: int) -> "DatasetSpec":
        """A same-distribution task restricted to ``num_classes`` classes.

        Mirrors the paper's "subset of 50 classes from UCF101" style
        constructions used throughout the motivation and evaluation.
        """
        if not 2 <= num_classes <= self.num_classes:
            raise ValueError(
                f"subset size must be in [2, {self.num_classes}], got {num_classes}"
            )
        return replace(self, name=f"{self.name.split('-')[0]}-{num_classes}", num_classes=num_classes)


#: Full UCF101: 101 human-action classes collected from YouTube video.
UCF101 = DatasetSpec(
    name="ucf101-101",
    num_classes=101,
    mean_run_length=24.0,
    difficulty=0.34,
    modality="video",
)

#: ImageNet-100: 100-class ImageNet subset, batched by class in the paper.
IMAGENET100 = DatasetSpec(
    name="imagenet-100",
    num_classes=100,
    mean_run_length=18.0,
    difficulty=0.29,
    modality="image",
)

#: ESC-50: 2 000 five-second environmental audio clips over 50 classes.
ESC50 = DatasetSpec(
    name="esc50-50",
    num_classes=50,
    mean_run_length=14.0,
    difficulty=0.30,
    modality="audio",
)

_REGISTRY: dict[str, DatasetSpec] = {
    "ucf101": UCF101,
    "imagenet100": IMAGENET100,
    "esc50": ESC50,
}


def get_dataset(name: str, num_classes: int | None = None) -> DatasetSpec:
    """Look up a dataset spec by name, optionally restricted to a subset.

    Args:
        name: one of ``"ucf101"``, ``"imagenet100"``, ``"esc50"``.
        num_classes: optional subset size (the paper uses 20/50/100-class
            subsets of UCF101 and the full ImageNet-100).

    Raises:
        KeyError: for an unknown dataset name.
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}")
    spec = _REGISTRY[key]
    if num_classes is not None:
        spec = spec.subset(num_classes)
    return spec
