"""Class-distribution constructions: Dirichlet non-IID and long tail.

Two constructions from Sec. VI-A of the paper:

* **Non-IID** — per-client class proportions drawn from a Dirichlet prior
  ``Dir(eps)`` with concentration ``eps``; the paper parameterizes the
  non-IID *level* as ``p = 1 / eps`` with ``p in {0, 1, 2, 10}`` and
  ``p = 0`` denoting the IID (uniform) case.  Smaller ``eps`` (larger
  ``p``) concentrates each client's mass on fewer classes.

* **Long tail** — class sample counts decay exponentially across the class
  index, with imbalance ratio ``rho = max_i d_i / min_j d_j``.  With
  ``rho = 90`` over 100 classes the top 20% of classes hold roughly 60% of
  the samples, matching the paper's construction.
"""

from __future__ import annotations

import numpy as np


def dirichlet_class_distribution(
    num_classes: int,
    non_iid_level: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one client's class-probability vector at a given non-IID level.

    Args:
        num_classes: number of classes in the task.
        non_iid_level: the paper's ``p = 1 / eps``; ``0`` returns the exact
            uniform (IID) distribution, larger values concentrate mass on
            fewer classes.
        rng: numpy random generator (callers own seeding for determinism).

    Returns:
        A probability vector of shape ``(num_classes,)`` summing to 1.
    """
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if non_iid_level < 0:
        raise ValueError(f"non_iid_level must be >= 0, got {non_iid_level}")
    if non_iid_level < 1e-9:
        # Includes exact 0 and denormal levels whose reciprocal overflows.
        return np.full(num_classes, 1.0 / num_classes)
    eps = 1.0 / non_iid_level
    probs = rng.dirichlet(np.full(num_classes, eps))
    # Guard against numerically-zero components that would make a class
    # unsampleable and later break stream generation edge cases.
    probs = np.clip(probs, 1e-12, None)
    return probs / probs.sum()


def dirichlet_partition(
    num_classes: int,
    num_clients: int,
    non_iid_level: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-client class distributions under a shared non-IID level.

    Returns:
        Array of shape ``(num_clients, num_classes)``; row ``k`` is client
        ``k``'s class-probability vector.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    return np.stack(
        [
            dirichlet_class_distribution(num_classes, non_iid_level, rng)
            for _ in range(num_clients)
        ]
    )


def longtail_weights(num_classes: int, imbalance_ratio: float) -> np.ndarray:
    """Exponentially decaying class weights with a given imbalance ratio.

    Following Cao et al. (LDAM), the weight of class ``i`` is
    ``rho ** (-i / (num_classes - 1))`` so the most frequent class is
    exactly ``rho`` times the least frequent.  Weights are normalized to a
    probability vector (class 0 is the head of the tail).

    Args:
        num_classes: number of classes.
        imbalance_ratio: ``rho >= 1``; ``1`` yields the uniform distribution.
    """
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if imbalance_ratio < 1.0:
        raise ValueError(f"imbalance_ratio must be >= 1, got {imbalance_ratio}")
    if num_classes == 1:
        return np.ones(1)
    exponents = np.arange(num_classes) / (num_classes - 1)
    weights = imbalance_ratio ** (-exponents)
    return weights / weights.sum()


def apply_longtail(
    base_distribution: np.ndarray,
    imbalance_ratio: float,
    rng: np.random.Generator,
    shuffle_classes: bool = True,
) -> np.ndarray:
    """Impose a long tail on top of an existing class distribution.

    The long-tail weights are (optionally) assigned to classes in a random
    order so that "head" classes differ across experiments, then multiplied
    into the base distribution and renormalized.

    Args:
        base_distribution: probability vector to reshape.
        imbalance_ratio: tail steepness ``rho``.
        rng: numpy generator used for the head-class shuffle.
        shuffle_classes: if ``False``, class 0 is always the head class
            (useful for deterministic unit tests).
    """
    base = np.asarray(base_distribution, dtype=float)
    if base.ndim != 1:
        raise ValueError(f"base_distribution must be 1-D, got shape {base.shape}")
    if not np.isclose(base.sum(), 1.0, atol=1e-6):
        raise ValueError("base_distribution must sum to 1")
    tail = longtail_weights(base.size, imbalance_ratio)
    if shuffle_classes:
        tail = tail[rng.permutation(base.size)]
    mixed = base * tail
    total = mixed.sum()
    if total <= 0:
        raise ValueError("long-tail reweighting produced an empty distribution")
    return mixed / total


def head_mass(distribution: np.ndarray, head_fraction: float = 0.2) -> float:
    """Fraction of probability mass held by the most frequent classes.

    Used to verify the paper's "top 20% of classes hold ~60% of samples"
    property of the rho=90 construction.
    """
    probs = np.sort(np.asarray(distribution, dtype=float))[::-1]
    k = max(1, int(round(head_fraction * probs.size)))
    return float(probs[:k].sum())
