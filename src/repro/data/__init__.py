"""Data substrate: dataset specs, non-IID / long-tail constructions, streams."""

from repro.data.datasets import ESC50, IMAGENET100, UCF101, DatasetSpec, get_dataset
from repro.data.partition import (
    apply_longtail,
    dirichlet_class_distribution,
    dirichlet_partition,
    head_mass,
    longtail_weights,
)
from repro.data.stream import (
    Frame,
    FrameBlock,
    StreamGenerator,
    empirical_class_frequencies,
)

__all__ = [
    "ESC50",
    "IMAGENET100",
    "UCF101",
    "DatasetSpec",
    "Frame",
    "FrameBlock",
    "StreamGenerator",
    "apply_longtail",
    "dirichlet_class_distribution",
    "dirichlet_partition",
    "empirical_class_frequencies",
    "get_dataset",
    "head_mass",
    "longtail_weights",
]
