"""Temporally-local class streams — the workload the cache exploits.

Result caching pays off because consecutive frames of a video stream are
highly correlated: the same class persists for many frames ("temporal
locality", Sec. II-2).  We model a client's stream with *two levels* of
locality, matching how a camera feed actually behaves:

* a **working set** of classes — the handful of things currently in view
  of the camera (sampled from the client's class distribution) — which
  churns slowly: each run replaces one member with a fresh class with a
  small probability (a "scene change");
* **runs** — geometric-length bursts of consecutive same-class frames
  (mean = ``mean_run_length``), drawn from the working set weighted by
  the client distribution.

The working set is what makes recency-based caching (Eq. 10) effective:
classes recur within a few hundred frames while in the set, and a class
that newly enters the set first misses the cache (the full model handles
it) and is cached from the next round on.

Each frame also carries a *difficulty* in [0, 1): frames early in a run
are slightly harder (scene transitions), and a per-frame random component
models intra-class variation.  The model substrate turns difficulty into
feature confusion, which is what produces the paper's "easy samples hit
at shallow cache layers" behaviour (Fig. 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class Frame:
    """One element of a client's inference stream.

    Attributes:
        class_id: ground-truth class of the frame.
        difficulty: in [0, 1); scales feature noise in the model substrate.
        run_position: 0-based index of the frame within its same-class run.
        stream_index: 0-based global index of the frame within the stream.
    """

    class_id: int
    difficulty: float
    run_position: int
    stream_index: int


class StreamGenerator:
    """Generates an endless temporally-local frame stream for one client.

    Args:
        class_distribution: probability vector over classes for this client
            (from :func:`repro.data.partition.dirichlet_partition`, possibly
            long-tailed).
        mean_run_length: expected frames per same-class run; larger values
            mean stronger temporal locality.
        rng: numpy generator; streams with equal seeds are identical.
        base_difficulty: dataset-level difficulty offset (see
            :class:`repro.data.datasets.DatasetSpec`).
        difficulty_jitter: width of the per-frame uniform difficulty
            component.
        transition_penalty: extra difficulty applied to the first frames of
            a run, decaying geometrically with run position.
        working_set_size: number of classes simultaneously "in view";
            ``None`` or a value >= the class count disables the working
            set (every run samples the full distribution).
        churn_probability: per-run probability that one working-set member
            is replaced by a fresh class (a scene change).
    """

    def __init__(
        self,
        class_distribution: np.ndarray,
        mean_run_length: float,
        rng: np.random.Generator,
        base_difficulty: float = 0.3,
        difficulty_jitter: float = 0.25,
        transition_penalty: float = 0.08,
        working_set_size: int | None = 10,
        churn_probability: float = 0.08,
    ) -> None:
        probs = np.asarray(class_distribution, dtype=float)
        if probs.ndim != 1 or probs.size < 1:
            raise ValueError("class_distribution must be a non-empty 1-D vector")
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0, atol=1e-6):
            raise ValueError("class_distribution must be a probability vector")
        if mean_run_length < 1.0:
            raise ValueError(f"mean_run_length must be >= 1, got {mean_run_length}")
        if not 0.0 <= base_difficulty < 1.0:
            raise ValueError(f"base_difficulty must be in [0, 1), got {base_difficulty}")

        if not 0.0 <= churn_probability <= 1.0:
            raise ValueError(
                f"churn_probability must be in [0, 1], got {churn_probability}"
            )
        self._probs = probs / probs.sum()
        self._classes = np.arange(probs.size)
        self._mean_run_length = float(mean_run_length)
        self._rng = rng
        self._base_difficulty = float(base_difficulty)
        self._jitter = float(difficulty_jitter)
        self._transition_penalty = float(transition_penalty)
        self._churn = float(churn_probability)
        self._index = 0
        self._current_class: int | None = None
        self._remaining_in_run = 0
        self._run_position = 0

        if working_set_size is None or working_set_size >= probs.size:
            self._working_set: np.ndarray | None = None
        else:
            if working_set_size < 1:
                raise ValueError(
                    f"working_set_size must be >= 1, got {working_set_size}"
                )
            self._working_set = rng.choice(
                self._classes, size=working_set_size, replace=False, p=self._probs
            )

    @property
    def num_classes(self) -> int:
        return int(self._probs.size)

    @property
    def working_set(self) -> np.ndarray | None:
        """Classes currently "in view" (``None`` when disabled)."""
        return None if self._working_set is None else self._working_set.copy()

    def _maybe_churn_working_set(self) -> None:
        if self._working_set is None or self._rng.random() >= self._churn:
            return
        outside = np.setdiff1d(self._classes, self._working_set)
        if outside.size == 0:
            return
        weights = self._probs[outside]
        total = weights.sum()
        if total <= 0:
            return
        newcomer = int(self._rng.choice(outside, p=weights / total))
        slot = int(self._rng.integers(self._working_set.size))
        self._working_set[slot] = newcomer

    def _draw_run_class(self) -> int:
        if self._working_set is None:
            return int(self._rng.choice(self._classes, p=self._probs))
        weights = self._probs[self._working_set]
        total = weights.sum()
        if total <= 0:
            return int(self._rng.choice(self._working_set))
        return int(self._rng.choice(self._working_set, p=weights / total))

    def _start_new_run(self) -> None:
        self._maybe_churn_working_set()
        self._current_class = self._draw_run_class()
        # Geometric run length with the configured mean (support >= 1).
        p_stop = 1.0 / self._mean_run_length
        self._remaining_in_run = int(self._rng.geometric(p_stop))
        self._run_position = 0

    def _frame_difficulty(self, run_position: int) -> float:
        transition = self._transition_penalty * (0.5 ** run_position)
        jitter = self._rng.uniform(0.0, self._jitter)
        return float(min(0.999, self._base_difficulty + transition + jitter))

    def next_frame(self) -> Frame:
        """Produce the next frame of the stream."""
        if self._remaining_in_run <= 0:
            self._start_new_run()
        assert self._current_class is not None
        frame = Frame(
            class_id=self._current_class,
            difficulty=self._frame_difficulty(self._run_position),
            run_position=self._run_position,
            stream_index=self._index,
        )
        self._remaining_in_run -= 1
        self._run_position += 1
        self._index += 1
        return frame

    def take(self, count: int) -> list[Frame]:
        """Produce the next ``count`` frames as a list."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next_frame() for _ in range(count)]

    def __iter__(self) -> Iterator[Frame]:
        while True:
            yield self.next_frame()


def empirical_class_frequencies(frames: list[Frame], num_classes: int) -> np.ndarray:
    """Observed class frequency vector of a frame batch (sums to 1)."""
    counts = np.zeros(num_classes, dtype=float)
    for frame in frames:
        if not 0 <= frame.class_id < num_classes:
            raise ValueError(
                f"frame class {frame.class_id} out of range [0, {num_classes})"
            )
        counts[frame.class_id] += 1.0
    total = counts.sum()
    return counts / total if total > 0 else counts
