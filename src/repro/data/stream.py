"""Temporally-local class streams — the workload the cache exploits.

Result caching pays off because consecutive frames of a video stream are
highly correlated: the same class persists for many frames ("temporal
locality", Sec. II-2).  We model a client's stream with *two levels* of
locality, matching how a camera feed actually behaves:

* a **working set** of classes — the handful of things currently in view
  of the camera (sampled from the client's class distribution) — which
  churns slowly: each run replaces one member with a fresh class with a
  small probability (a "scene change");
* **runs** — geometric-length bursts of consecutive same-class frames
  (mean = ``mean_run_length``), drawn from the working set weighted by
  the client distribution.

The working set is what makes recency-based caching (Eq. 10) effective:
classes recur within a few hundred frames while in the set, and a class
that newly enters the set first misses the cache (the full model handles
it) and is cached from the next round on.

Each frame also carries a *difficulty* in [0, 1): frames early in a run
are slightly harder (scene transitions), and a per-frame random component
models intra-class variation.  The model substrate turns difficulty into
feature confusion, which is what produces the paper's "easy samples hit
at shallow cache layers" behaviour (Fig. 1b).

Two generation granularities share the run machinery:
:meth:`StreamGenerator.next_frame` / :meth:`StreamGenerator.take` produce
:class:`Frame` objects one at a time (the reference scalar path), while
:meth:`StreamGenerator.take_block` produces a :class:`FrameBlock` —
a structure-of-arrays view of the same two-level process, generated one
*run* at a time with the per-frame difficulty arithmetic vectorized.
Blocks feed :meth:`repro.models.feature.SemanticFeatureSpace.draw_samples`
without ever materializing per-frame Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class Frame:
    """One element of a client's inference stream.

    Attributes:
        class_id: ground-truth class of the frame.
        difficulty: in [0, 1); scales feature noise in the model substrate.
        run_position: 0-based index of the frame within its same-class run.
        stream_index: 0-based global index of the frame within the stream.
    """

    class_id: int
    difficulty: float
    run_position: int
    stream_index: int


@dataclass(frozen=True)
class FrameBlock:
    """A contiguous block of stream frames as a structure of arrays.

    The batched counterpart of a ``list[Frame]``: four aligned arrays of
    equal length, indexable without constructing per-frame objects.
    Produced by :meth:`StreamGenerator.take_block` and consumed directly
    by :meth:`repro.models.feature.SemanticFeatureSpace.draw_samples`.

    Attributes:
        class_ids: ground-truth class per frame, shape ``(n,)``.
        difficulties: per-frame difficulty in [0, 1), shape ``(n,)``.
        run_positions: 0-based index within the same-class run, ``(n,)``.
        stream_indices: global stream index per frame, ``(n,)``.
    """

    class_ids: np.ndarray
    difficulties: np.ndarray
    run_positions: np.ndarray
    stream_indices: np.ndarray

    def __post_init__(self) -> None:
        n = self.class_ids.shape
        for name in ("difficulties", "run_positions", "stream_indices"):
            if getattr(self, name).shape != n:
                raise ValueError(f"{name} shape {getattr(self, name).shape} != {n}")

    def __len__(self) -> int:
        return int(self.class_ids.size)

    def frame(self, index: int) -> Frame:
        """Materialize one frame as a scalar :class:`Frame` object."""
        return Frame(
            class_id=int(self.class_ids[index]),
            difficulty=float(self.difficulties[index]),
            run_position=int(self.run_positions[index]),
            stream_index=int(self.stream_indices[index]),
        )

    def frames(self) -> list[Frame]:
        """Materialize the whole block as scalar :class:`Frame` objects."""
        return [self.frame(i) for i in range(len(self))]

    @classmethod
    def from_frames(cls, frames: Sequence[Frame]) -> "FrameBlock":
        """Pack scalar frames into a block (for mixed-granularity callers)."""
        return cls(
            class_ids=np.fromiter(
                (f.class_id for f in frames), dtype=np.int64, count=len(frames)
            ),
            difficulties=np.fromiter(
                (f.difficulty for f in frames), dtype=float, count=len(frames)
            ),
            run_positions=np.fromiter(
                (f.run_position for f in frames), dtype=np.int64, count=len(frames)
            ),
            stream_indices=np.fromiter(
                (f.stream_index for f in frames), dtype=np.int64, count=len(frames)
            ),
        )


class StreamGenerator:
    """Generates an endless temporally-local frame stream for one client.

    Args:
        class_distribution: probability vector over classes for this client
            (from :func:`repro.data.partition.dirichlet_partition`, possibly
            long-tailed).
        mean_run_length: expected frames per same-class run; larger values
            mean stronger temporal locality.
        rng: numpy generator; streams with equal seeds are identical.
        base_difficulty: dataset-level difficulty offset (see
            :class:`repro.data.datasets.DatasetSpec`).
        difficulty_jitter: width of the per-frame uniform difficulty
            component.
        transition_penalty: extra difficulty applied to the first frames of
            a run, decaying geometrically with run position.
        working_set_size: number of classes simultaneously "in view";
            ``None`` or a value >= the class count disables the working
            set (every run samples the full distribution).
        churn_probability: per-run probability that one working-set member
            is replaced by a fresh class (a scene change).
    """

    def __init__(
        self,
        class_distribution: np.ndarray,
        mean_run_length: float,
        rng: np.random.Generator,
        base_difficulty: float = 0.3,
        difficulty_jitter: float = 0.25,
        transition_penalty: float = 0.08,
        working_set_size: int | None = 10,
        churn_probability: float = 0.08,
    ) -> None:
        probs = np.asarray(class_distribution, dtype=float)
        if probs.ndim != 1 or probs.size < 1:
            raise ValueError("class_distribution must be a non-empty 1-D vector")
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0, atol=1e-6):
            raise ValueError("class_distribution must be a probability vector")
        if mean_run_length < 1.0:
            raise ValueError(f"mean_run_length must be >= 1, got {mean_run_length}")
        if not 0.0 <= base_difficulty < 1.0:
            raise ValueError(f"base_difficulty must be in [0, 1), got {base_difficulty}")

        if not 0.0 <= churn_probability <= 1.0:
            raise ValueError(
                f"churn_probability must be in [0, 1], got {churn_probability}"
            )
        self._probs = probs / probs.sum()
        self._classes = np.arange(probs.size)
        self._mean_run_length = float(mean_run_length)
        self._rng = rng
        self._base_difficulty = float(base_difficulty)
        self._jitter = float(difficulty_jitter)
        self._transition_penalty = float(transition_penalty)
        self._churn = float(churn_probability)
        self._index = 0
        self._current_class: int | None = None
        self._remaining_in_run = 0
        self._run_position = 0

        if working_set_size is None or working_set_size >= probs.size:
            self._working_set: np.ndarray | None = None
        else:
            if working_set_size < 1:
                raise ValueError(
                    f"working_set_size must be >= 1, got {working_set_size}"
                )
            self._working_set = rng.choice(
                self._classes, size=working_set_size, replace=False, p=self._probs
            )

    @property
    def num_classes(self) -> int:
        return int(self._probs.size)

    @property
    def working_set(self) -> np.ndarray | None:
        """Classes currently "in view" (``None`` when disabled)."""
        return None if self._working_set is None else self._working_set.copy()

    def _maybe_churn_working_set(self) -> None:
        if self._working_set is None or self._rng.random() >= self._churn:
            return
        outside = np.setdiff1d(self._classes, self._working_set)
        if outside.size == 0:
            return
        weights = self._probs[outside]
        total = weights.sum()
        if total <= 0:
            return
        newcomer = int(self._rng.choice(outside, p=weights / total))
        slot = int(self._rng.integers(self._working_set.size))
        self._working_set[slot] = newcomer

    def _draw_run_class(self) -> int:
        if self._working_set is None:
            return int(self._rng.choice(self._classes, p=self._probs))
        weights = self._probs[self._working_set]
        total = weights.sum()
        if total <= 0:
            return int(self._rng.choice(self._working_set))
        return int(self._rng.choice(self._working_set, p=weights / total))

    def _start_new_run(self) -> None:
        self._maybe_churn_working_set()
        self._current_class = self._draw_run_class()
        # Geometric run length with the configured mean (support >= 1).
        p_stop = 1.0 / self._mean_run_length
        self._remaining_in_run = int(self._rng.geometric(p_stop))
        self._run_position = 0

    def _frame_difficulty(self, run_position: int) -> float:
        transition = self._transition_penalty * (0.5 ** run_position)
        jitter = self._rng.uniform(0.0, self._jitter)
        return float(min(0.999, self._base_difficulty + transition + jitter))

    def next_frame(self) -> Frame:
        """Produce the next frame of the stream."""
        if self._remaining_in_run <= 0:
            self._start_new_run()
        assert self._current_class is not None
        frame = Frame(
            class_id=self._current_class,
            difficulty=self._frame_difficulty(self._run_position),
            run_position=self._run_position,
            stream_index=self._index,
        )
        self._remaining_in_run -= 1
        self._run_position += 1
        self._index += 1
        return frame

    def take(self, count: int) -> list[Frame]:
        """Produce the next ``count`` frames as a list."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next_frame() for _ in range(count)]

    def take_block(self, count: int) -> FrameBlock:
        """Produce the next ``count`` frames as a :class:`FrameBlock`.

        The two-level process (working-set churn, run class/length draws)
        advances run by run exactly as :meth:`next_frame` does, but the
        per-frame work — difficulty transition decay plus uniform jitter —
        is computed as one array operation per run, so the Python cost is
        proportional to the number of *runs*, not frames.  The stream
        state afterwards is as if ``count`` frames had been consumed, so
        block and scalar granularities can be mixed freely (the random
        streams differ, but the process distribution is identical).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        class_parts: list[np.ndarray] = []
        diff_parts: list[np.ndarray] = []
        pos_parts: list[np.ndarray] = []
        produced = 0
        while produced < count:
            if self._remaining_in_run <= 0:
                self._start_new_run()
            assert self._current_class is not None
            n = min(self._remaining_in_run, count - produced)
            positions = self._run_position + np.arange(n)
            transition = self._transition_penalty * np.power(0.5, positions)
            jitter = self._rng.uniform(0.0, self._jitter, size=n)
            difficulties = np.minimum(
                0.999, self._base_difficulty + transition + jitter
            )
            class_parts.append(np.full(n, self._current_class, dtype=np.int64))
            diff_parts.append(difficulties)
            pos_parts.append(positions)
            self._remaining_in_run -= n
            self._run_position += n
            produced += n
        indices = np.arange(self._index, self._index + count, dtype=np.int64)
        self._index += count
        if not class_parts:
            return FrameBlock(
                class_ids=np.zeros(0, dtype=np.int64),
                difficulties=np.zeros(0),
                run_positions=np.zeros(0, dtype=np.int64),
                stream_indices=indices,
            )
        return FrameBlock(
            class_ids=np.concatenate(class_parts),
            difficulties=np.concatenate(diff_parts),
            run_positions=np.concatenate(pos_parts),
            stream_indices=indices,
        )

    def __iter__(self) -> Iterator[Frame]:
        while True:
            yield self.next_frame()


def empirical_class_frequencies(
    frames: Sequence[Frame] | FrameBlock, num_classes: int
) -> np.ndarray:
    """Observed class frequency vector of a frame batch (sums to 1).

    Accepts a ``list[Frame]`` or a :class:`FrameBlock`; counting is one
    ``np.bincount`` either way.
    """
    if isinstance(frames, FrameBlock):
        ids = frames.class_ids.astype(np.int64, copy=False)
    else:
        ids = np.fromiter(
            (f.class_id for f in frames), dtype=np.int64, count=len(frames)
        )
    if ids.size:
        low, high = int(ids.min()), int(ids.max())
        if low < 0 or high >= num_classes:
            offending = low if low < 0 else high
            raise ValueError(
                f"frame class {offending} out of range [0, {num_classes})"
            )
    counts = np.bincount(ids, minlength=num_classes).astype(float)
    total = counts.sum()
    return counts / total if total > 0 else counts
