"""Ablations of CoCa design choices beyond the paper's own Fig. 9.

DESIGN.md calls out four choices worth isolating:

* **Eq. 1 decay alpha** — cross-layer accumulation (alpha=0.5) vs
  per-layer-only scores (alpha=0) vs undamped accumulation (alpha=1).
* **Hot-spot mass** — the 95% score-mass rule vs tighter/looser masses.
* **Local-frequency blending** — the Sec. IV-B use of the client's own
  class distribution in Eq. 10 scoring vs global-only frequencies.
* **Eq. 4 frequency weighting** — frequency-proportional global updates
  vs a fixed-rate exponential moving average.

Each ablation runs full CoCa with one knob changed, on the same scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines import CoCaRunner
from repro.core.config import CoCaConfig
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario


@dataclass(frozen=True)
class DesignPoint:
    """One ablation measurement."""

    knob: str
    value: str
    latency_ms: float
    accuracy_pct: float
    hit_ratio_pct: float


def _measure(scenario: Scenario, config: CoCaConfig, rounds: int, warmup: int,
             knob: str, value: str, **runner_kwargs) -> DesignPoint:
    runner = CoCaRunner(fresh_scenario(scenario), config=config, **runner_kwargs)
    summary = runner.run(rounds, warmup_rounds=warmup).summary()
    return DesignPoint(
        knob=knob,
        value=value,
        latency_ms=summary.avg_latency_ms,
        accuracy_pct=100 * summary.accuracy,
        hit_ratio_pct=100 * summary.hit_ratio,
    )


def run_alpha_ablation(
    scenario: Scenario,
    alphas: tuple[float, ...] = (0.0, 0.5, 1.0),
    theta: float = 0.05,
    rounds: int = 2,
    warmup: int = 1,
) -> list[DesignPoint]:
    """Eq. 1 decay: per-layer-only vs damped vs undamped accumulation."""
    base = CoCaConfig(theta=theta)
    return [
        _measure(
            scenario,
            replace(base, alpha=alpha),
            rounds,
            warmup,
            knob="alpha",
            value=f"{alpha:g}",
        )
        for alpha in alphas
    ]


def run_hotspot_mass_ablation(
    scenario: Scenario,
    masses: tuple[float, ...] = (0.80, 0.95, 0.999),
    theta: float = 0.05,
    rounds: int = 2,
    warmup: int = 1,
) -> list[DesignPoint]:
    """The 95% score-mass rule vs tighter and near-total coverage."""
    base = CoCaConfig(theta=theta)
    return [
        _measure(
            scenario,
            replace(base, hotspot_mass=mass),
            rounds,
            warmup,
            knob="hotspot_mass",
            value=f"{mass:g}",
        )
        for mass in masses
    ]


def run_local_blend_ablation(
    scenario: Scenario,
    theta: float = 0.05,
    rounds: int = 2,
    warmup: int = 1,
) -> list[DesignPoint]:
    """Client-distribution blending in Eq. 10 scoring vs global-only.

    Implemented by monkey-toggling the framework's local-frequency upload:
    the "global-only" variant simply never reports local frequencies.
    """
    points = []
    for label, use_local in (("global+local", True), ("global-only", False)):
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=theta))
        if not use_local:
            for client in runner.framework.clients:
                # Suppress the local distribution in every future status.
                client.last_frequencies = np.zeros_like(client.last_frequencies)
                original = client.run_round

                def wrapped(num_frames=None, _client=client, _orig=original):
                    report = _orig(num_frames)
                    _client.last_frequencies = np.zeros_like(
                        _client.last_frequencies
                    )
                    return report

                client.run_round = wrapped
        summary = runner.run(rounds, warmup_rounds=warmup).summary()
        points.append(
            DesignPoint(
                knob="eq10_frequency",
                value=label,
                latency_ms=summary.avg_latency_ms,
                accuracy_pct=100 * summary.accuracy,
                hit_ratio_pct=100 * summary.hit_ratio,
            )
        )
    return points


def run_update_weighting_ablation(
    scenario: Scenario,
    theta: float = 0.05,
    rounds: int = 3,
    warmup: int = 1,
    fixed_rate: float = 0.5,
) -> list[DesignPoint]:
    """Eq. 4's frequency-proportional merge vs a fixed-rate EMA.

    The fixed-rate variant replaces the Phi/(Phi+phi) weights with a
    constant blend, removing the convergence (weights shrink as evidence
    accumulates) the paper's rule provides.
    """
    points = []
    for label, fixed in (("frequency-weighted (Eq. 4)", False), ("fixed-rate EMA", True)):
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=theta))
        if fixed:
            table = runner.framework.server.table

            def fixed_merge(class_id, layer, update_vector, local_freq, gamma,
                            _table=table, _rate=fixed_rate):
                if local_freq <= 0:
                    return
                old = _table.entries[class_id, layer]
                merged = (1 - _rate) * old + _rate * np.asarray(update_vector)
                norm = np.linalg.norm(merged)
                if norm > 0:
                    _table.entries[class_id, layer] = merged / norm

            table.merge_update = fixed_merge
        summary = runner.run(rounds, warmup_rounds=warmup).summary()
        points.append(
            DesignPoint(
                knob="eq4_weighting",
                value=label,
                latency_ms=summary.avg_latency_ms,
                accuracy_pct=100 * summary.accuracy,
                hit_ratio_pct=100 * summary.hit_ratio,
            )
        )
    return points


def format_design_points(points: list[DesignPoint], title: str) -> str:
    lines = [title, f"{'knob':18s} {'value':>26s} {'lat(ms)':>9s} {'acc(%)':>8s} {'HR(%)':>7s}"]
    for p in points:
        lines.append(
            f"{p.knob:18s} {p.value:>26s} {p.latency_ms:9.2f} "
            f"{p.accuracy_pct:8.2f} {p.hit_ratio_pct:7.1f}"
        )
    return "\n".join(lines)
