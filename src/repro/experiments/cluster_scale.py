"""Cluster scale-out study: aggregate throughput vs shard count.

The single-server deployment serializes every cache-allocation request
and every Eq. 4 merge on one edge server; under a request-heavy regime
(short update cycles F — the left end of Fig. 10a — and many connected
clients — beyond the right end of Fig. 10b) that serialization, not
client compute, bounds aggregate throughput.  The study runs the same
deployment as a 1..N-shard cluster under one
:class:`~repro.sim.network.ServerLoadModel` and reads the event-driven
virtual timeline: aggregate inferences per virtual second, mean request
queueing wait, and the quality metrics (which sharding must *not* move
at sync interval 1, since the sharded Eq. 4 write path is exact).

The per-request service time here is deliberately heavier than the
Fig. 10b calibration (25 ms vs 1.35 ms): the scale-out regime ships the
full preset table (the "Normal" configuration of Fig. 1a) instead of an
ACA-pruned sub-table, and the study's point is the *mechanism* — work a
single node serializes, N nodes split — not the absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterFramework
from repro.core.config import CoCaConfig
from repro.data.datasets import DatasetSpec
from repro.sim.network import ServerLoadModel

#: The request-heavy regime the scale-out study runs under.
SCALE_OUT_LOAD = ServerLoadModel(
    base_latency_ms=52.8,
    service_time_ms=25.0,
    round_duration_ms=800.0,
    contention_ms_per_client=0.042,
)


@dataclass(frozen=True)
class ClusterScalePoint:
    """One shard-count point of the scale-out sweep."""

    num_shards: int
    throughput_inferences_per_s: float
    speedup: float  # vs the 1-shard (single-server) pipeline
    mean_response_wait_ms: float
    hit_ratio: float
    accuracy: float
    avg_latency_ms: float


def run_cluster_scale(
    dataset: DatasetSpec,
    model_name: str = "resnet101",
    shard_counts: tuple[int, ...] = (1, 2, 4),
    num_clients: int = 128,
    frames_per_round: int = 30,
    rounds: int = 2,
    seed: int = 3,
    enable_dca: bool = False,
    sync_interval: int = 1,
    assignment_policy: str = "hash",
    load: ServerLoadModel | None = None,
    merge_service_ms: float = 5.0,
    theta: float | None = None,
) -> list[ClusterScalePoint]:
    """Aggregate throughput and quality per shard count.

    Every shard count runs an identically-seeded deployment (same
    geometry, streams, and initial table), so at ``sync_interval=1`` the
    quality columns are constant across rows by construction and only
    the virtual timeline changes.
    """
    if not shard_counts:
        raise ValueError("shard_counts must not be empty")
    if 1 not in shard_counts:
        raise ValueError("shard_counts must include 1 (the speedup baseline)")
    config = CoCaConfig(frames_per_round=frames_per_round)
    if theta is not None:
        config = config.with_theta(theta)
    load = load if load is not None else SCALE_OUT_LOAD
    runs = []
    for shards in shard_counts:
        cluster = ClusterFramework(
            dataset=dataset,
            model_name=model_name,
            num_shards=shards,
            num_clients=num_clients,
            config=config,
            seed=seed,
            enable_dca=enable_dca,
            sync_interval=sync_interval,
            assignment_policy=assignment_policy,
            load=load,
            merge_service_ms=merge_service_ms,
        )
        runs.append((shards, cluster.run(rounds)))
    baseline = next(
        result.throughput_inferences_per_s
        for shards, result in runs
        if shards == 1
    )
    points: list[ClusterScalePoint] = []
    for shards, result in runs:
        summary = result.summary()
        throughput = result.throughput_inferences_per_s
        points.append(
            ClusterScalePoint(
                num_shards=shards,
                throughput_inferences_per_s=throughput,
                speedup=throughput / baseline if baseline > 0 else 0.0,
                mean_response_wait_ms=float(
                    np.mean([r.mean_response_wait_ms for r in result.rounds])
                ),
                hit_ratio=summary.hit_ratio,
                accuracy=summary.accuracy,
                avg_latency_ms=summary.avg_latency_ms,
            )
        )
    return points


def format_cluster_table(points: list[ClusterScalePoint]) -> str:
    """Fixed-width table of the scale-out sweep."""
    lines = [
        f"{'shards':>7s}{'throughput':>13s}{'speedup':>9s}"
        f"{'mean wait':>11s}{'hit ratio':>11s}{'accuracy':>10s}"
    ]
    for p in points:
        lines.append(
            f"{p.num_shards:7d}{p.throughput_inferences_per_s:10.0f}/vs"
            f"{p.speedup:8.2f}x{p.mean_response_wait_ms:9.1f}ms"
            f"{100 * p.hit_ratio:10.1f}%{100 * p.accuracy:9.1f}%"
        )
    return "\n".join(lines)
