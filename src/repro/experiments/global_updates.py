"""Global-cache-update study — Fig. 2 (Sec. III-3 and VI-H).

Ten clients run CoCa with and without global updates; afterwards we draw
an equal number of samples per class from one client at a chosen cache
layer and compare how well the *cached* centroids align with the client's
sample clusters — numerically (centroid alignment, cosine silhouette) and
visually (a t-SNE embedding of samples plus centroids, as in the figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import centroid_alignment, cosine_silhouette, tsne_embed
from repro.baselines import CoCaRunner
from repro.core.config import CoCaConfig
from repro.core.rng import derive_rng
from repro.data.stream import Frame
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario


@dataclass
class GlobalUpdateResult:
    """Clustering quality with and without global updates.

    Attributes:
        layer: probed cache layer.
        classes: the classes visualized.
        alignment_with / alignment_without: mean cosine between cached
            entries and per-class sample means, with / without GCU.
        silhouette_with / silhouette_without: cosine silhouette of
            (samples + centroids), with / without GCU.
        embedding_with / embedding_without: 2-D t-SNE coordinates of the
            samples followed by one centroid per class.
        labels: class labels of the embedded samples (centroids follow in
            class order).
        accuracy_with / accuracy_without: overall accuracy of the two
            runs (Sec. VI-H cross-check).
    """

    layer: int
    classes: list[int]
    alignment_with: float
    alignment_without: float
    silhouette_with: float
    silhouette_without: float
    accuracy_with: float
    accuracy_without: float
    embedding_with: np.ndarray = field(repr=False, default=None)
    embedding_without: np.ndarray = field(repr=False, default=None)
    labels: np.ndarray = field(repr=False, default=None)


def run_global_update_study(
    scenario: Scenario,
    layer_fraction: float = 0.53,
    num_classes_shown: int = 4,
    samples_per_class: int = 25,
    theta: float = 0.05,
    rounds: int = 4,
    probe_client: int = 0,
    compute_embedding: bool = True,
) -> GlobalUpdateResult:
    """Fig. 2: compare cached-centroid clustering with/without GCU."""
    layer = None
    runs: dict[bool, tuple[np.ndarray, float]] = {}
    for gcu in (True, False):
        runner = CoCaRunner(
            fresh_scenario(scenario),
            config=CoCaConfig(theta=theta),
            enable_gcu=gcu,
        )
        model = runner.model
        if layer is None:
            layer = int(round(layer_fraction * (model.num_cache_layers - 1)))
        summary = runner.run(rounds).summary()
        entries = runner.framework.server.table.entries[:, layer, :].copy()
        runs[gcu] = (entries, summary.accuracy)

    model = runner.model  # same geometry for both runs (same scenario seed)
    classes = list(range(min(num_classes_shown, model.num_classes)))

    # Draw equal per-class samples from the probe client's distribution.
    rng = derive_rng(scenario.seed, "experiments.global-updates-probe")
    sample_vectors = []
    sample_labels = []
    for row, class_id in enumerate(classes):
        for i in range(samples_per_class):
            frame = Frame(
                class_id=class_id,
                difficulty=scenario.dataset.difficulty + 0.1 * rng.random(),
                run_position=5,
                stream_index=i,
            )
            sample = model.draw_sample(frame, probe_client, rng)
            sample_vectors.append(sample.vector(layer))
            sample_labels.append(row)
    samples = np.stack(sample_vectors)
    labels = np.array(sample_labels)

    metrics = {}
    embeddings = {}
    for gcu in (True, False):
        entries, _ = runs[gcu]
        class_entries = entries[classes]
        alignment = centroid_alignment(class_entries, samples, labels)
        stacked = np.vstack([samples, class_entries])
        stacked_labels = np.concatenate([labels, np.arange(len(classes))])
        silhouette = cosine_silhouette(stacked, stacked_labels)
        metrics[gcu] = (alignment, silhouette)
        if compute_embedding:
            normed = stacked / np.linalg.norm(stacked, axis=1, keepdims=True)
            embeddings[gcu] = tsne_embed(normed, perplexity=15.0, num_iters=250)

    return GlobalUpdateResult(
        layer=layer,
        classes=classes,
        alignment_with=metrics[True][0],
        alignment_without=metrics[False][0],
        silhouette_with=metrics[True][1],
        silhouette_without=metrics[False][1],
        accuracy_with=runs[True][1],
        accuracy_without=runs[False][1],
        embedding_with=embeddings.get(True),
        embedding_without=embeddings.get(False),
        labels=labels,
    )
