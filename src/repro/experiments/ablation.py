"""Component ablation — Fig. 9 (DCA and GCU, on four models).

Four variants are compared on the same scenario:

* **Normal** — static allocation (all classes, layers fixed once from the
  shared-dataset statistics), frozen global cache;
* **GCU** — static allocation + global cache updates;
* **DCA** — dynamic allocation, frozen global cache;
* **DCA+GCU** — full CoCa.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines import CoCaRunner
from repro.core.config import CoCaConfig, recommended_theta
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario

VARIANTS: tuple[tuple[str, bool, bool], ...] = (
    ("Normal", False, False),
    ("GCU", False, True),
    ("DCA", True, False),
    ("DCA+GCU", True, True),
)


@dataclass(frozen=True)
class AblationPoint:
    """One (model, variant) measurement."""

    model: str
    variant: str
    latency_ms: float
    accuracy_pct: float
    hit_ratio_pct: float


def run_ablation(
    scenario: Scenario,
    model_names: tuple[str, ...] = ("vgg16_bn", "resnet50", "resnet101", "resnet152"),
    theta: float | None = None,
    rounds: int = 3,
    warmup: int = 1,
) -> list[AblationPoint]:
    """Fig. 9: every variant on every model.

    ``theta=None`` uses each model's recommended 3%-SLO threshold.
    """
    points = []
    for model_name in model_names:
        model_theta = theta if theta is not None else recommended_theta(model_name)
        model_scenario = replace(fresh_scenario(scenario), model_name=model_name)
        for variant, dca, gcu in VARIANTS:
            runner = CoCaRunner(
                fresh_scenario(model_scenario),
                config=CoCaConfig(theta=model_theta),
                enable_dca=dca,
                enable_gcu=gcu,
            )
            summary = runner.run(rounds, warmup_rounds=warmup).summary()
            points.append(
                AblationPoint(
                    model=model_name,
                    variant=variant,
                    latency_ms=summary.avg_latency_ms,
                    accuracy_pct=100 * summary.accuracy,
                    hit_ratio_pct=100 * summary.hit_ratio,
                )
            )
    return points


def format_ablation_table(points: list[AblationPoint], title: str) -> str:
    lines = [title]
    models = list(dict.fromkeys(p.model for p in points))
    variants = [v for v, _, _ in VARIANTS]
    header = f"{'Model':10s}" + "".join(f" | {v:>8s} lat  acc%" for v in variants)
    lines.append(header)
    lines.append("-" * len(header))
    index = {(p.model, p.variant): p for p in points}
    for model in models:
        cells = []
        for variant in variants:
            p = index[(model, variant)]
            cells.append(f" | {p.latency_ms:8.2f} {p.accuracy_pct:5.1f}")
        lines.append(f"{model:10s}" + "".join(cells))
    return "\n".join(lines)
