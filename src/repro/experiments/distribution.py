"""Data-distribution studies — Fig. 7 (non-IID) and Table III (long tail).

Fig. 7 runs every method across non-IID levels ``p in {0, 1, 2, 10}``:
methods without caching are insensitive, cache-based methods speed up as
heterogeneity concentrates each client's stream, and CoCa stays ahead.

Table III compares a uniform and a long-tailed (rho = 90) class
distribution on ImageNet-100: the adaptive allocation exploits the tail's
concentration, LRU-style reuse does not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines import CoCaRunner, EdgeOnly, FoggyCache, LearnedCache, SMTM
from repro.core.config import CoCaConfig
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario

#: Default per-method operating points for the distribution studies (the
#: thresholds selected by the 3%-SLO protocol on the reference scenario).
DEFAULT_OPERATING_POINTS: dict[str, float] = {
    "LearnedCache": 0.12,
    "FoggyCache": 0.70,
    "SMTM": 0.08,
    "CoCa": 0.05,
}


@dataclass(frozen=True)
class MethodPoint:
    """One (method, setting) measurement."""

    method: str
    setting: str
    latency_ms: float
    accuracy_pct: float
    hit_ratio_pct: float


def _build_runner(method: str, scenario: Scenario, operating_points: dict[str, float]):
    if method == "Edge-Only":
        return EdgeOnly(scenario)
    if method == "LearnedCache":
        return LearnedCache(scenario, exit_margin=operating_points[method])
    if method == "FoggyCache":
        return FoggyCache(scenario, min_similarity=operating_points[method])
    if method == "SMTM":
        return SMTM(scenario, theta=operating_points[method])
    if method == "CoCa":
        return CoCaRunner(
            scenario, config=CoCaConfig(theta=operating_points[method])
        )
    raise KeyError(f"unknown method {method!r}")


def run_noniid_sweep(
    scenario: Scenario,
    levels: tuple[float, ...] = (0.0, 1.0, 2.0, 10.0),
    methods: tuple[str, ...] = (
        "Edge-Only",
        "LearnedCache",
        "FoggyCache",
        "SMTM",
        "CoCa",
    ),
    rounds: int = 3,
    warmup: int = 1,
    operating_points: dict[str, float] | None = None,
) -> list[MethodPoint]:
    """Fig. 7: every method at every non-IID level."""
    ops = dict(DEFAULT_OPERATING_POINTS, **(operating_points or {}))
    points = []
    for level in levels:
        level_scenario = replace(fresh_scenario(scenario), non_iid_level=level)
        for method in methods:
            runner = _build_runner(method, fresh_scenario(level_scenario), ops)
            summary = runner.run(rounds, warmup_rounds=warmup).summary()
            points.append(
                MethodPoint(
                    method=method,
                    setting=f"p={level:g}",
                    latency_ms=summary.avg_latency_ms,
                    accuracy_pct=100 * summary.accuracy,
                    hit_ratio_pct=100 * summary.hit_ratio,
                )
            )
    return points


def run_longtail_comparison(
    scenario: Scenario,
    imbalance_ratio: float = 90.0,
    methods: tuple[str, ...] = (
        "Edge-Only",
        "LearnedCache",
        "FoggyCache",
        "SMTM",
        "CoCa",
    ),
    rounds: int = 3,
    warmup: int = 1,
    operating_points: dict[str, float] | None = None,
) -> list[MethodPoint]:
    """Table III: uniform vs long-tail groups for every method."""
    ops = dict(DEFAULT_OPERATING_POINTS, **(operating_points or {}))
    points = []
    for setting, rho in (("uniform", 1.0), ("long-tail", imbalance_ratio)):
        group_scenario = replace(fresh_scenario(scenario), longtail_rho=rho)
        for method in methods:
            runner = _build_runner(method, fresh_scenario(group_scenario), ops)
            summary = runner.run(rounds, warmup_rounds=warmup).summary()
            points.append(
                MethodPoint(
                    method=method,
                    setting=setting,
                    latency_ms=summary.avg_latency_ms,
                    accuracy_pct=100 * summary.accuracy,
                    hit_ratio_pct=100 * summary.hit_ratio,
                )
            )
    return points


def format_method_points(points: list[MethodPoint], title: str) -> str:
    """Render method x setting measurements as a text table."""
    lines = [title]
    settings = sorted({p.setting for p in points})
    methods = list(dict.fromkeys(p.method for p in points))
    header = f"{'Method':14s}" + "".join(
        f" | {s:>9s} Lat  Acc%" for s in settings
    )
    lines.append(header)
    lines.append("-" * len(header))
    index = {(p.method, p.setting): p for p in points}
    for method in methods:
        cells = []
        for setting in settings:
            p = index[(method, setting)]
            cells.append(f" | {p.latency_ms:9.2f} {p.accuracy_pct:8.2f}")
        lines.append(f"{method:14s}" + "".join(cells))
    return "\n".join(lines)
