"""Motivation studies — Fig. 1a, Fig. 1b and Table I (Sec. III).

These single-client studies use an all-class cache built from the
shared-dataset centroids (no allocation algorithm, no global updates) to
expose the raw trade-offs CoCa's design responds to:

* Fig. 1a — latency/accuracy as a function of *cache size*, controlled by
  activating evenly spaced subsets of the preset layers;
* Fig. 1b — per-layer hit ratio and hit accuracy with every layer active;
* Table I — latency/accuracy as a function of the number of hot-spot
  classes in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import SemanticCache
from repro.core.engine import CachedInferenceEngine
from repro.data.datasets import DatasetSpec
from repro.data.stream import StreamGenerator
from repro.models.base import SimulatedModel
from repro.models.zoo import build_model
from repro.sim.metrics import InferenceRecord, MetricsCollector, MetricsSummary


@dataclass(frozen=True)
class CacheSizePoint:
    """One Fig. 1a sweep point."""

    size_fraction: float
    num_layers: int
    cache_bytes: int
    latency_ms: float
    accuracy_pct: float
    hit_ratio_pct: float


def _evenly_spaced_layers(
    num_layers_total: int, count: int, min_relative_depth: float = 0.0
) -> list[int]:
    if count <= 0:
        return []
    start = int(round(min_relative_depth * (num_layers_total - 1)))
    return sorted(
        {int(round(x)) for x in np.linspace(start, num_layers_total - 1, count)}
    )


def _run_static_cache(
    model: SimulatedModel,
    dataset: DatasetSpec,
    layers: list[int],
    class_ids: np.ndarray,
    theta: float,
    num_samples: int,
    seed: int,
) -> MetricsSummary:
    cache = SemanticCache(model.num_classes, alpha=0.5, theta=theta)
    for layer in layers:
        cache.set_layer_entries(
            layer, class_ids, model.ideal_centroids(layer)[class_ids]
        )
    engine = CachedInferenceEngine(model, cache if layers else None)
    rng = np.random.default_rng(seed)
    stream = StreamGenerator(
        class_distribution=np.full(model.num_classes, 1.0 / model.num_classes),
        mean_run_length=dataset.mean_run_length,
        rng=rng,
        base_difficulty=dataset.difficulty,
    )
    metrics = MetricsCollector()
    for frame in stream.take(num_samples):
        sample = model.draw_sample(frame, 0, rng)
        outcome = engine.infer(sample)
        metrics.record(
            InferenceRecord(
                true_class=frame.class_id,
                predicted_class=outcome.predicted_class,
                latency_ms=outcome.latency_ms,
                hit_layer=outcome.hit_layer,
            )
        )
    return metrics.summary()


def run_cache_size_sweep(
    dataset: DatasetSpec,
    model_name: str = "resnet101",
    layer_counts: tuple[int, ...] = (0, 2, 3, 7, 10, 17, 24, 34),
    theta: float = 0.05,
    num_samples: int = 1500,
    seed: int = 0,
) -> list[CacheSizePoint]:
    """Fig. 1a: vary cache size via the number of active layers.

    Hot-spot classes are fixed to *all* classes (as in the paper, to
    isolate the size effect from the entry-selection algorithm).
    """
    model = build_model(model_name, dataset, seed=seed)
    all_classes = np.arange(model.num_classes)
    total_layers = model.num_cache_layers
    full_bytes = model.num_classes * sum(
        model.profile.entry_size_bytes(j) for j in range(total_layers)
    )
    points: list[CacheSizePoint] = []
    for count in layer_counts:
        layers = _evenly_spaced_layers(total_layers, count)
        cache_bytes = model.num_classes * sum(
            model.profile.entry_size_bytes(j) for j in layers
        )
        summary = _run_static_cache(
            model, dataset, layers, all_classes, theta, num_samples, seed + 1
        )
        points.append(
            CacheSizePoint(
                size_fraction=cache_bytes / full_bytes,
                num_layers=len(layers),
                cache_bytes=cache_bytes,
                latency_ms=summary.avg_latency_ms,
                accuracy_pct=100 * summary.accuracy,
                hit_ratio_pct=100 * summary.hit_ratio,
            )
        )
    return points


@dataclass(frozen=True)
class LayerStatPoint:
    """One Fig. 1b layer."""

    layer: int
    hit_ratio_pct: float
    hit_accuracy_pct: float


def run_per_layer_stats(
    dataset: DatasetSpec,
    model_name: str = "resnet101",
    theta: float = 0.05,
    num_samples: int = 1500,
    seed: int = 0,
) -> list[LayerStatPoint]:
    """Fig. 1b: marginal hit ratio / hit accuracy per layer, all active."""
    model = build_model(model_name, dataset, seed=seed)
    all_classes = np.arange(model.num_classes)
    layers = list(range(model.num_cache_layers))
    summary = _run_static_cache(
        model, dataset, layers, all_classes, theta, num_samples, seed + 1
    )
    total = summary.num_samples
    points = []
    for layer in layers:
        hits = summary.per_layer_hits.get(layer, 0)
        acc = summary.per_layer_hit_accuracy.get(layer, 0.0)
        points.append(
            LayerStatPoint(
                layer=layer,
                hit_ratio_pct=100 * hits / total,
                hit_accuracy_pct=100 * acc,
            )
        )
    return points


@dataclass(frozen=True)
class HotspotCountPoint:
    """One Table I row."""

    num_hotspot_classes: int
    latency_ms: float
    accuracy_pct: float


def run_hotspot_count_sweep(
    dataset: DatasetSpec,
    model_name: str = "resnet101",
    class_counts: tuple[int, ...] = (0, 10, 30, 50, 70, 90),
    num_layers_active: int = 8,
    theta: float = 0.05,
    num_samples: int = 1500,
    seed: int = 0,
    min_relative_depth: float = 0.2,
) -> list[HotspotCountPoint]:
    """Table I: vary the number of hot-spot classes in a fixed-layer cache.

    Counts exceeding the task's class count are clamped (the paper's
    UCF101 subset has 50 classes, so its 70/90 rows equal the 50 row up to
    lookup-time differences — we keep the clamp explicit instead).
    """
    model = build_model(model_name, dataset, seed=seed)
    layers = _evenly_spaced_layers(
        model.num_cache_layers, num_layers_active, min_relative_depth
    )
    # The most frequent classes of a uniform stream are arbitrary; use the
    # first k ids (the stream is symmetric under class relabeling).
    points: list[HotspotCountPoint] = []
    for count in class_counts:
        k = min(count, model.num_classes)
        class_ids = np.arange(k)
        use_layers = layers if k >= 2 else []
        summary = _run_static_cache(
            model, dataset, use_layers, class_ids, theta, num_samples, seed + 1
        )
        points.append(
            HotspotCountPoint(
                num_hotspot_classes=count,
                latency_ms=summary.avg_latency_ms,
                accuracy_pct=100 * summary.accuracy,
            )
        )
    return points
