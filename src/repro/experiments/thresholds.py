"""Threshold studies — Fig. 5 (Theta) and Fig. 6 (Gamma, Delta).

Fig. 5 sweeps the hit threshold Theta and reports hit ratio, hit accuracy,
overall accuracy and average latency: stricter thresholds trade hits for
reliability.

Fig. 6 sweeps the two sample-collection thresholds and reports, for each,
the *absorption ratio* (fraction of precondition-satisfying samples that
were actually collected for the global update) and the *accuracy* of the
collected samples' inferred labels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines import CoCaRunner
from repro.core.config import CoCaConfig
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario


@dataclass(frozen=True)
class ThetaPoint:
    """One Fig. 5 sweep point."""

    theta: float
    latency_ms: float
    total_accuracy_pct: float
    hit_accuracy_pct: float
    hit_ratio_pct: float


def run_theta_sweep(
    scenario: Scenario,
    thetas: tuple[float, ...] = (0.02, 0.035, 0.05, 0.065, 0.08),
    rounds: int = 3,
    warmup: int = 1,
) -> list[ThetaPoint]:
    """Fig. 5: CoCa under a range of hit thresholds.

    The sweep explores the full trade-off, so the server's SLO layer
    filter is relaxed (accuracy_loss_budget=0.5) — otherwise a loose
    threshold would simply disable all layers instead of showing the
    inaccurate-but-fast regime the figure documents.
    """
    points = []
    for theta in thetas:
        runner = CoCaRunner(
            fresh_scenario(scenario),
            config=CoCaConfig(theta=theta, accuracy_loss_budget=0.5),
        )
        summary = runner.run(rounds, warmup_rounds=warmup).summary()
        points.append(
            ThetaPoint(
                theta=theta,
                latency_ms=summary.avg_latency_ms,
                total_accuracy_pct=100 * summary.accuracy,
                hit_accuracy_pct=100 * summary.hit_accuracy,
                hit_ratio_pct=100 * summary.hit_ratio,
            )
        )
    return points


@dataclass(frozen=True)
class CollectionPoint:
    """One Fig. 6 sweep point (for Gamma or Delta)."""

    threshold: float
    absorption_ratio_pct: float
    collected_accuracy_pct: float


def _collection_stats(
    scenario: Scenario, config: CoCaConfig, rounds: int, warmup: int
) -> tuple[float, float, float, float]:
    """(hit absorption, miss absorption, collected accuracy, collected)."""
    runner = CoCaRunner(fresh_scenario(scenario), config=config)
    result = runner.framework.run(rounds, warmup_rounds=warmup)
    reports = result.reports
    eligible_hits = sum(r.eligible_hits for r in reports)
    eligible_misses = sum(r.eligible_misses for r in reports)
    absorbed_hits = sum(r.absorbed_hits for r in reports)
    absorbed_misses = sum(r.absorbed_misses for r in reports)
    collected = sum(r.collected_total for r in reports)
    collected_ok = sum(r.collected_correct for r in reports)
    hit_absorption = absorbed_hits / eligible_hits if eligible_hits else 0.0
    miss_absorption = absorbed_misses / eligible_misses if eligible_misses else 0.0
    accuracy = collected_ok / collected if collected else 0.0
    return hit_absorption, miss_absorption, accuracy, collected


def run_gamma_sweep(
    scenario: Scenario,
    gammas: tuple[float, ...] = (0.02, 0.06, 0.10, 0.14, 0.20),
    rounds: int = 2,
    warmup: int = 1,
    base_config: CoCaConfig | None = None,
) -> list[CollectionPoint]:
    """Fig. 6a: absorption ratio / collected accuracy vs Gamma."""
    base = base_config if base_config is not None else CoCaConfig(theta=0.05)
    points = []
    for gamma in gammas:
        config = replace(base, collect_gamma=gamma, collect_delta=10.0)
        hit_abs, _, accuracy, _ = _collection_stats(scenario, config, rounds, warmup)
        points.append(
            CollectionPoint(
                threshold=gamma,
                absorption_ratio_pct=100 * hit_abs,
                collected_accuracy_pct=100 * accuracy,
            )
        )
    return points


def run_delta_sweep(
    scenario: Scenario,
    deltas: tuple[float, ...] = (0.05, 0.15, 0.25, 0.35, 0.50),
    rounds: int = 2,
    warmup: int = 1,
    base_config: CoCaConfig | None = None,
) -> list[CollectionPoint]:
    """Fig. 6b: absorption ratio / collected accuracy vs Delta."""
    base = base_config if base_config is not None else CoCaConfig(theta=0.05)
    points = []
    for delta in deltas:
        config = replace(base, collect_delta=delta, collect_gamma=10.0)
        _, miss_abs, accuracy, _ = _collection_stats(scenario, config, rounds, warmup)
        points.append(
            CollectionPoint(
                threshold=delta,
                absorption_ratio_pct=100 * miss_abs,
                collected_accuracy_pct=100 * accuracy,
            )
        )
    return points
