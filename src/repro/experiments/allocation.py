"""Cache-allocation comparison — Fig. 8 (ACA vs LRU / FIFO / RAND).

All policies manage the same cache structure (a static set of high-benefit
layers, each holding at most ``cache_size`` class entries); ACA runs with
the *same total memory* so the comparison isolates the allocation policy.
The workload is long-tailed (Sec. VI-G uses a 100-class long-tail UCF101
stream).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CoCaRunner, ReplacementPolicyCache
from repro.core.config import CoCaConfig
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario


@dataclass(frozen=True)
class AllocationPoint:
    """One (policy, cache size) measurement."""

    policy: str
    cache_size: int
    latency_ms: float
    accuracy_pct: float
    hit_ratio_pct: float


def run_allocation_comparison(
    scenario: Scenario,
    cache_sizes: tuple[int, ...] = (10, 30, 50, 70, 90),
    theta: float = 0.05,
    rounds: int = 3,
    warmup: int = 1,
) -> list[AllocationPoint]:
    """Fig. 8: latency of each policy across cache sizes."""
    points: list[AllocationPoint] = []
    for size in cache_sizes:
        size = min(size, scenario.dataset.num_classes)
        memory_bytes = None
        for policy in ("lru", "fifo", "rand"):
            runner = ReplacementPolicyCache(
                fresh_scenario(scenario),
                policy=policy,
                cache_size=size,
                theta=theta,
            )
            memory_bytes = runner.memory_bytes()
            summary = runner.run(rounds, warmup_rounds=warmup).summary()
            points.append(
                AllocationPoint(
                    policy=policy.upper(),
                    cache_size=size,
                    latency_ms=summary.avg_latency_ms,
                    accuracy_pct=100 * summary.accuracy,
                    hit_ratio_pct=100 * summary.hit_ratio,
                )
            )
        assert memory_bytes is not None
        aca = CoCaRunner(
            fresh_scenario(scenario),
            config=CoCaConfig(theta=theta),
            budget_bytes=memory_bytes,
        )
        summary = aca.run(rounds, warmup_rounds=warmup).summary()
        points.append(
            AllocationPoint(
                policy="ACA",
                cache_size=size,
                latency_ms=summary.avg_latency_ms,
                accuracy_pct=100 * summary.accuracy,
                hit_ratio_pct=100 * summary.hit_ratio,
            )
        )
    return points


def format_allocation_table(points: list[AllocationPoint], title: str) -> str:
    lines = [title]
    sizes = sorted({p.cache_size for p in points})
    policies = list(dict.fromkeys(p.policy for p in points))
    header = f"{'Policy':8s}" + "".join(f" | size={s:<3d} lat(ms)" for s in sizes)
    lines.append(header)
    lines.append("-" * len(header))
    index = {(p.policy, p.cache_size): p for p in points}
    for policy in policies:
        cells = []
        for size in sizes:
            p = index[(policy, size)]
            cells.append(f" | {p.latency_ms:14.2f}")
        lines.append(f"{policy:8s}" + "".join(cells))
    return "\n".join(lines)
