"""Experiment drivers shared by benchmarks and examples (one per paper result)."""

from repro.experiments.ablation import AblationPoint, format_ablation_table, run_ablation
from repro.experiments.allocation import (
    AllocationPoint,
    format_allocation_table,
    run_allocation_comparison,
)
from repro.experiments.design_ablations import (
    DesignPoint,
    format_design_points,
    run_alpha_ablation,
    run_hotspot_mass_ablation,
    run_local_blend_ablation,
    run_update_weighting_ablation,
)
from repro.experiments.distribution import (
    MethodPoint,
    format_method_points,
    run_longtail_comparison,
    run_noniid_sweep,
)
from repro.experiments.cluster_scale import (
    ClusterScalePoint,
    format_cluster_table,
    run_cluster_scale,
)
from repro.experiments.global_updates import GlobalUpdateResult, run_global_update_study
from repro.experiments.motivation import (
    CacheSizePoint,
    HotspotCountPoint,
    LayerStatPoint,
    run_cache_size_sweep,
    run_hotspot_count_sweep,
    run_per_layer_stats,
)
from repro.experiments.scenario import Scenario
from repro.experiments.slo import SloRow, format_slo_table, fresh_scenario, run_slo_experiment
from repro.experiments.system_load import (
    ClientLoadPoint,
    UpdateCyclePoint,
    run_client_load_sweep,
    run_update_cycle_sweep,
)
from repro.experiments.thresholds import (
    CollectionPoint,
    ThetaPoint,
    run_delta_sweep,
    run_gamma_sweep,
    run_theta_sweep,
)

__all__ = [
    "AblationPoint",
    "DesignPoint",
    "AllocationPoint",
    "CacheSizePoint",
    "ClientLoadPoint",
    "ClusterScalePoint",
    "CollectionPoint",
    "GlobalUpdateResult",
    "HotspotCountPoint",
    "LayerStatPoint",
    "MethodPoint",
    "Scenario",
    "SloRow",
    "ThetaPoint",
    "UpdateCyclePoint",
    "format_ablation_table",
    "format_cluster_table",
    "format_design_points",
    "format_allocation_table",
    "format_method_points",
    "format_slo_table",
    "fresh_scenario",
    "run_ablation",
    "run_allocation_comparison",
    "run_alpha_ablation",
    "run_cache_size_sweep",
    "run_client_load_sweep",
    "run_cluster_scale",
    "run_delta_sweep",
    "run_gamma_sweep",
    "run_global_update_study",
    "run_hotspot_count_sweep",
    "run_hotspot_mass_ablation",
    "run_local_blend_ablation",
    "run_longtail_comparison",
    "run_noniid_sweep",
    "run_per_layer_stats",
    "run_slo_experiment",
    "run_theta_sweep",
    "run_update_weighting_ablation",
    "run_update_cycle_sweep",
]
