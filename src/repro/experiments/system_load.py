"""System-load studies — Fig. 10a (update cycle F) and Fig. 10b (clients).

Fig. 10a varies the round length ``F`` (frames between cache-allocation
requests): short cycles give fresh caches but add per-frame request
overhead (clients contend for the server); long cycles amortize the
overhead but serve staler caches.

Fig. 10b reads the server queueing model: mean cache-request response
latency as the number of connected clients grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CoCaRunner
from repro.core.config import CoCaConfig
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario
from repro.sim.network import ServerLoadModel


@dataclass(frozen=True)
class UpdateCyclePoint:
    """One Fig. 10a sweep point."""

    frames_per_round: int
    latency_ms: float
    accuracy_pct: float


def run_update_cycle_sweep(
    scenario: Scenario,
    cycles: tuple[int, ...] = (150, 300, 450, 600, 750, 900),
    theta: float = 0.05,
    total_frames: int = 2400,
    warmup_frames: int = 600,
    response_model: ServerLoadModel | None = None,
) -> list[UpdateCyclePoint]:
    """Fig. 10a: latency/accuracy vs the update cycle F.

    The per-frame amortized request overhead is the response latency of a
    cache request (from the server load model, at this scenario's client
    count) divided by F — short cycles pay it often.
    """
    load = response_model if response_model is not None else ServerLoadModel()
    points = []
    for cycle in cycles:
        config = CoCaConfig(theta=theta, frames_per_round=cycle)
        runner = CoCaRunner(fresh_scenario(scenario), config=config)
        rounds = max(1, total_frames // cycle)
        warmup = max(0, warmup_frames // cycle)
        summary = runner.run(rounds, warmup_rounds=warmup).summary()
        request_overhead = load.response_latency_ms(scenario.num_clients) / cycle
        points.append(
            UpdateCyclePoint(
                frames_per_round=cycle,
                latency_ms=summary.avg_latency_ms + request_overhead,
                accuracy_pct=100 * summary.accuracy,
            )
        )
    return points


@dataclass(frozen=True)
class ClientLoadPoint:
    """One Fig. 10b sweep point."""

    num_clients: int
    response_latency_ms: float


def run_client_load_sweep(
    client_counts: tuple[int, ...] = (60, 80, 100, 120, 140, 160),
    model: ServerLoadModel | None = None,
) -> list[ClientLoadPoint]:
    """Fig. 10b: cache-request response latency vs client count."""
    load = model if model is not None else ServerLoadModel()
    return [
        ClientLoadPoint(num_clients=n, response_latency_ms=load.response_latency_ms(n))
        for n in client_counts
    ]
