"""Latency under accuracy-loss SLOs — Table II.

The paper tunes each method's decision threshold to its best latency
*subject to* an accuracy-loss constraint (3% / 5% below Edge-Only), then
reports the achieved latency and accuracy.  This driver reproduces that
protocol: for each method it searches a small threshold grid, keeps the
configurations meeting the constraint, and reports the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines import CoCaRunner, EdgeOnly, FoggyCache, LearnedCache, SMTM
from repro.core.config import CoCaConfig
from repro.experiments.scenario import Scenario
from repro.sim.metrics import MetricsSummary

#: Per-method threshold grids searched by the SLO protocol.  Each entry is
#: (parameter name, values); the remaining parameters stay at defaults.
DEFAULT_GRIDS: dict[str, list[float]] = {
    "LearnedCache": [0.06, 0.09, 0.12, 0.15],
    "FoggyCache": [0.62, 0.68, 0.74, 0.80],  # min_similarity
    "SMTM": [0.03, 0.05, 0.08, 0.12],
    "CoCa": [0.035, 0.05, 0.07, 0.09, 0.11],
}


@dataclass(frozen=True)
class SloRow:
    """One method's result under one accuracy-loss constraint."""

    method: str
    latency_ms: float
    accuracy_pct: float
    hit_ratio_pct: float
    threshold: float | None
    met_constraint: bool


def _run_method(
    method: str, scenario: Scenario, threshold: float, rounds: int, warmup: int
) -> MetricsSummary:
    if method == "Edge-Only":
        runner = EdgeOnly(scenario)
    elif method == "LearnedCache":
        runner = LearnedCache(scenario, exit_margin=threshold)
    elif method == "FoggyCache":
        runner = FoggyCache(scenario, min_similarity=threshold)
    elif method == "SMTM":
        runner = SMTM(scenario, theta=threshold)
    elif method == "CoCa":
        runner = CoCaRunner(scenario, config=CoCaConfig(theta=threshold))
    else:
        raise KeyError(f"unknown method {method!r}")
    return runner.run(rounds, warmup_rounds=warmup).summary()


def fresh_scenario(scenario: Scenario) -> Scenario:
    """A pristine copy (runners consume stream state, so never share)."""
    return replace(
        scenario,
        _model=None,
        _distributions=None,
        _client_seeds=None,
        _server_seed=None,
    )


def run_slo_experiment(
    scenario: Scenario,
    accuracy_loss_budgets: tuple[float, ...] = (0.03, 0.05),
    methods: tuple[str, ...] = ("LearnedCache", "FoggyCache", "SMTM", "CoCa"),
    rounds: int = 3,
    warmup: int = 1,
    grids: dict[str, list[float]] | None = None,
) -> dict[float, list[SloRow]]:
    """Table II protocol for one (model, dataset) scenario.

    Returns:
        Mapping of accuracy-loss budget -> rows (Edge-Only first, then one
        row per method: the lowest-latency grid point meeting the budget,
        or the most accurate one if none does, flagged accordingly).
    """
    grids = dict(DEFAULT_GRIDS, **(grids or {}))
    edge = _run_method("Edge-Only", fresh_scenario(scenario), 0.0, rounds, warmup)

    # Evaluate every grid point once, reuse across budgets.
    evaluations: dict[str, list[tuple[float, MetricsSummary]]] = {}
    for method in methods:
        evaluations[method] = [
            (t, _run_method(method, fresh_scenario(scenario), t, rounds, warmup))
            for t in grids[method]
        ]

    results: dict[float, list[SloRow]] = {}
    for budget in accuracy_loss_budgets:
        floor = edge.accuracy - budget
        rows = [
            SloRow(
                method="Edge-Only",
                latency_ms=edge.avg_latency_ms,
                accuracy_pct=100 * edge.accuracy,
                hit_ratio_pct=0.0,
                threshold=None,
                met_constraint=True,
            )
        ]
        for method in methods:
            candidates = [
                (t, s) for t, s in evaluations[method] if s.accuracy >= floor
            ]
            if candidates:
                t, s = min(candidates, key=lambda ts: ts[1].avg_latency_ms)
                met = True
            else:
                t, s = max(evaluations[method], key=lambda ts: ts[1].accuracy)
                met = False
            rows.append(
                SloRow(
                    method=method,
                    latency_ms=s.avg_latency_ms,
                    accuracy_pct=100 * s.accuracy,
                    hit_ratio_pct=100 * s.hit_ratio,
                    threshold=t,
                    met_constraint=met,
                )
            )
        results[budget] = rows
    return results


def format_slo_table(results: dict[float, list[SloRow]], title: str) -> str:
    """Render the Table II layout as text."""
    lines = [title]
    budgets = sorted(results)
    header = f"{'Method':14s}" + "".join(
        f" | <{int(100 * b)}% Lat.(ms)  Acc.(%)" for b in budgets
    )
    lines.append(header)
    lines.append("-" * len(header))
    methods = [row.method for row in results[budgets[0]]]
    for i, method in enumerate(methods):
        cells = []
        for budget in budgets:
            row = results[budget][i]
            flag = "" if row.met_constraint else "*"
            cells.append(f" | {row.latency_ms:10.2f}{flag:1s} {row.accuracy_pct:7.2f}")
        lines.append(f"{method:14s}" + "".join(cells))
    lines.append("(* = no grid point met the constraint; most accurate shown)")
    return "\n".join(lines)
