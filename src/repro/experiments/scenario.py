"""Shared experiment scenario: identical workloads for every method.

A :class:`Scenario` captures one evaluation setting (dataset, model,
client count, non-IID level, long-tail shape, seed) and deterministically
builds the model substrate, the per-client class distributions and the
per-client streams.  CoCa and every baseline are run against scenarios
built from the *same* seed, so they see byte-identical feature geometry
and (given the same draw order) statistically identical streams — the
comparisons in the benchmark tables are therefore apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import DatasetSpec
from repro.data.partition import apply_longtail, dirichlet_partition
from repro.data.stream import StreamGenerator
from repro.models.base import SimulatedModel
from repro.models.zoo import build_model


@dataclass
class Scenario:
    """One fully specified evaluation setting.

    Attributes:
        dataset: dataset spec (class count, locality, difficulty).
        model_name: zoo model to deploy.
        num_clients: participating edge clients.
        non_iid_level: the paper's ``p`` (0 = IID).
        longtail_rho: imbalance ratio (1 = uniform).
        seed: master seed; all randomness derives from it.
        client_drift_scale: per-client feature drift (``None`` = zoo
            default for the client count).
        working_set_size: stream working-set size (classes simultaneously
            "in view"); ``None`` disables the working set.
    """

    dataset: DatasetSpec
    model_name: str = "resnet101"
    num_clients: int = 10
    non_iid_level: float = 0.0
    longtail_rho: float = 1.0
    seed: int = 0
    client_drift_scale: float | None = None
    working_set_size: int | None = 10

    _model: SimulatedModel | None = field(default=None, repr=False)
    _distributions: np.ndarray | None = field(default=None, repr=False)
    _client_seeds: list | None = field(default=None, repr=False)
    _server_seed: object = field(default=None, repr=False)

    def _materialize(self) -> None:
        if self._model is not None:
            return
        root = np.random.SeedSequence(self.seed)
        geometry_seed, partition_seed, server_seed, *client_seeds = root.spawn(
            3 + self.num_clients
        )
        self._server_seed = server_seed
        self._client_seeds = client_seeds
        self._model = build_model(
            self.model_name,
            self.dataset,
            num_clients=self.num_clients,
            seed=int(geometry_seed.generate_state(1)[0]),
            client_drift_scale=self.client_drift_scale,
        )
        partition_rng = np.random.default_rng(partition_seed)
        distributions = dirichlet_partition(
            self.dataset.num_classes,
            self.num_clients,
            self.non_iid_level,
            partition_rng,
        )
        if self.longtail_rho > 1.0:
            distributions = np.stack(
                [
                    apply_longtail(dist, self.longtail_rho, partition_rng)
                    for dist in distributions
                ]
            )
        self._distributions = distributions

    @property
    def model(self) -> SimulatedModel:
        """The shared simulated model (built lazily, cached)."""
        self._materialize()
        assert self._model is not None
        return self._model

    @property
    def distributions(self) -> np.ndarray:
        """Per-client class distributions, shape (num_clients, I)."""
        self._materialize()
        assert self._distributions is not None
        return self._distributions.copy()

    def server_rng(self) -> np.random.Generator:
        """Generator for server-side calibration (shared dataset)."""
        self._materialize()
        return np.random.default_rng(self._server_seed)

    def client_rng(self, client_id: int) -> np.random.Generator:
        """Fresh generator for one client (same sequence every call)."""
        self._materialize()
        assert self._client_seeds is not None
        if not 0 <= client_id < self.num_clients:
            raise IndexError(f"client_id {client_id} out of range")
        return np.random.default_rng(self._client_seeds[client_id])

    def make_stream(
        self, client_id: int, rng: np.random.Generator
    ) -> StreamGenerator:
        """Build client ``client_id``'s stream on the given generator.

        The stream and the client's feature sampling share one generator
        (as in :class:`repro.core.framework.CoCaFramework`), so pass the
        generator returned by :meth:`client_rng` and reuse it for feature
        draws.
        """
        self._materialize()
        assert self._distributions is not None
        return StreamGenerator(
            class_distribution=self._distributions[client_id],
            mean_run_length=self.dataset.mean_run_length,
            rng=rng,
            base_difficulty=self.dataset.difficulty,
            working_set_size=self.working_set_size,
        )
