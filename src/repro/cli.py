"""Command-line interface for running CoCa scenarios.

Usage::

    python -m repro info
    python -m repro compare --dataset ucf101 --classes 50 --model resnet101 \
        --clients 4 --non-iid 1 --rounds 3 --methods edge,coca,smtm
    python -m repro sweep-theta --dataset ucf101 --classes 50 \
        --model resnet101 --thetas 0.03,0.05,0.07

All runs are fully offline and deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import CoCaRunner, EdgeOnly, FoggyCache, LearnedCache, SMTM
from repro.core.config import CoCaConfig
from repro.data.datasets import get_dataset
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario
from repro.models.zoo import available_models

METHOD_NAMES = {
    "edge": "Edge-Only",
    "learnedcache": "LearnedCache",
    "foggycache": "FoggyCache",
    "smtm": "SMTM",
    "coca": "CoCa",
}


def _build_scenario(args: argparse.Namespace) -> Scenario:
    dataset = get_dataset(args.dataset, args.classes)
    return Scenario(
        dataset=dataset,
        model_name=args.model,
        num_clients=args.clients,
        non_iid_level=args.non_iid,
        longtail_rho=args.longtail,
        seed=args.seed,
    )


def _build_runner(key: str, scenario: Scenario, theta: float):
    if key == "edge":
        return EdgeOnly(scenario)
    if key == "learnedcache":
        return LearnedCache(scenario)
    if key == "foggycache":
        return FoggyCache(scenario)
    if key == "smtm":
        return SMTM(scenario, theta=theta)
    if key == "coca":
        return CoCaRunner(scenario, config=CoCaConfig(theta=theta))
    raise KeyError(key)


def cmd_info(_args: argparse.Namespace) -> int:
    print("models:   " + ", ".join(available_models()))
    print("datasets: ucf101 (101 cls), imagenet100 (100 cls), esc50 (50 cls)")
    print("methods:  " + ", ".join(sorted(METHOD_NAMES)))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    keys = [k.strip().lower() for k in args.methods.split(",") if k.strip()]
    unknown = [k for k in keys if k not in METHOD_NAMES]
    if unknown:
        print(f"unknown methods: {unknown}; see `python -m repro info`",
              file=sys.stderr)
        return 2
    print(
        f"{scenario.model_name} on {scenario.dataset.name}, "
        f"{scenario.num_clients} clients, p={scenario.non_iid_level:g}, "
        f"rho={scenario.longtail_rho:g}, seed={scenario.seed}\n"
    )
    print(f"{'method':14s}{'latency':>10s}{'accuracy':>10s}{'hit ratio':>11s}")
    for key in keys:
        runner = _build_runner(key, fresh_scenario(scenario), args.theta)
        summary = runner.run(args.rounds, warmup_rounds=args.warmup).summary()
        hit = f"{100 * summary.hit_ratio:9.1f}%" if summary.hit_ratio else "        —"
        print(
            f"{METHOD_NAMES[key]:14s}{summary.avg_latency_ms:9.2f}ms"
            f"{100 * summary.accuracy:9.1f}%{hit:>11s}"
        )
    return 0


def cmd_sweep_theta(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    thetas = [float(t) for t in args.thetas.split(",") if t.strip()]
    print(f"{'theta':>7s}{'latency':>10s}{'accuracy':>10s}{'hit ratio':>11s}")
    for theta in thetas:
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=theta))
        summary = runner.run(args.rounds, warmup_rounds=args.warmup).summary()
        print(
            f"{theta:7.3f}{summary.avg_latency_ms:9.2f}ms"
            f"{100 * summary.accuracy:9.1f}%{100 * summary.hit_ratio:10.1f}%"
        )
    return 0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="ucf101")
    parser.add_argument("--classes", type=int, default=None,
                        help="subset size (default: full dataset)")
    parser.add_argument("--model", default="resnet101",
                        choices=available_models())
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--non-iid", dest="non_iid", type=float, default=1.0)
    parser.add_argument("--longtail", type=float, default=1.0,
                        help="imbalance ratio rho (1 = uniform)")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--theta", type=float, default=0.05)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CoCa reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="list models, datasets and methods")
    info.set_defaults(func=cmd_info)

    compare = sub.add_parser("compare", help="run methods head-to-head")
    _add_scenario_args(compare)
    compare.add_argument("--methods", default="edge,coca",
                         help="comma-separated (see `info`)")
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep-theta", help="CoCa threshold sweep")
    _add_scenario_args(sweep)
    sweep.add_argument("--thetas", default="0.03,0.05,0.07")
    sweep.set_defaults(func=cmd_sweep_theta)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
