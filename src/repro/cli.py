"""Command-line interface for running CoCa scenarios.

Usage::

    python -m repro info
    python -m repro compare --dataset ucf101 --classes 50 --model resnet101 \
        --clients 4 --non-iid 1 --rounds 3 --methods edge,coca,smtm
    python -m repro compare --methods edge,coca --json
    python -m repro sweep-theta --dataset ucf101 --classes 50 \
        --model resnet101 --thetas 0.03,0.05,0.07
    python -m repro cluster --shards 4 --clients 64 --sync-interval 1 \
        --policy region --rounds 2
    python -m repro profile-round --clients 4 --rounds 2
    python -m repro serve runs/table.snapshot --workers 2 --requests 32
    python -m repro loadgen runs/table.snapshot --workers 2 --rate 200 --json
    python -m repro lint src --json
    python -m repro store inspect runs/table.snapshot --verify
    python -m repro store convert runs/table.npz runs/table.snapshot
    python -m repro store diff runs/before.snapshot runs/after.snapshot --json

All runs are fully offline and deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.baselines import CoCaRunner, EdgeOnly, FoggyCache, LearnedCache, SMTM
from repro.cluster import ASSIGNMENT_POLICIES, ClusterFramework
from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.data.datasets import get_dataset
from repro.experiments.scenario import Scenario
from repro.experiments.slo import fresh_scenario
from repro.models.zoo import available_models
from repro.serve import (
    SERVE_MODES,
    LoadgenConfig,
    ServeConfig,
    WorkerOptions,
    analytic_wait_ms,
    run_loadgen,
)
from repro.sim.metrics import summarize_latencies
from repro.sim.network import ServerLoadModel

METHOD_NAMES = {
    "edge": "Edge-Only",
    "learnedcache": "LearnedCache",
    "foggycache": "FoggyCache",
    "smtm": "SMTM",
    "coca": "CoCa",
}


def _build_scenario(args: argparse.Namespace) -> Scenario:
    dataset = get_dataset(args.dataset, args.classes)
    return Scenario(
        dataset=dataset,
        model_name=args.model,
        num_clients=args.clients,
        non_iid_level=args.non_iid,
        longtail_rho=args.longtail,
        seed=args.seed,
    )


def _build_runner(key: str, scenario: Scenario, theta: float):
    if key == "edge":
        return EdgeOnly(scenario)
    if key == "learnedcache":
        return LearnedCache(scenario)
    if key == "foggycache":
        return FoggyCache(scenario)
    if key == "smtm":
        return SMTM(scenario, theta=theta)
    if key == "coca":
        return CoCaRunner(scenario, config=CoCaConfig(theta=theta))
    raise KeyError(key)


def cmd_info(_args: argparse.Namespace) -> int:
    print("models:   " + ", ".join(available_models()))
    print("datasets: ucf101 (101 cls), imagenet100 (100 cls), esc50 (50 cls)")
    print("methods:  " + ", ".join(sorted(METHOD_NAMES)))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    keys = [k.strip().lower() for k in args.methods.split(",") if k.strip()]
    unknown = [k for k in keys if k not in METHOD_NAMES]
    if unknown:
        print(f"unknown methods: {unknown}; see `python -m repro info`",
              file=sys.stderr)
        return 2
    if not args.json:
        print(
            f"{scenario.model_name} on {scenario.dataset.name}, "
            f"{scenario.num_clients} clients, p={scenario.non_iid_level:g}, "
            f"rho={scenario.longtail_rho:g}, seed={scenario.seed}\n"
        )
        print(f"{'method':14s}{'latency':>10s}{'accuracy':>10s}{'hit ratio':>11s}")
    rows: dict[str, dict[str, float]] = {}
    for key in keys:
        runner = _build_runner(key, fresh_scenario(scenario), args.theta)
        summary = runner.run(args.rounds, warmup_rounds=args.warmup).summary()
        if args.json:
            rows[key] = summary.as_row()
            continue
        hit = f"{100 * summary.hit_ratio:9.1f}%" if summary.hit_ratio else "        —"
        print(
            f"{METHOD_NAMES[key]:14s}{summary.avg_latency_ms:9.2f}ms"
            f"{100 * summary.accuracy:9.1f}%{hit:>11s}"
        )
    if args.json:
        print(json.dumps(
            {
                "scenario": {
                    "model": scenario.model_name,
                    "dataset": scenario.dataset.name,
                    "clients": scenario.num_clients,
                    "non_iid": scenario.non_iid_level,
                    "longtail_rho": scenario.longtail_rho,
                    "rounds": args.rounds,
                    "seed": scenario.seed,
                    "theta": args.theta,
                },
                "methods": rows,
            },
            indent=2,
        ))
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.dataset, args.classes)
    config = CoCaConfig(theta=args.theta, frames_per_round=args.frames)
    load = ServerLoadModel(service_time_ms=args.service_ms)
    cluster = ClusterFramework(
        dataset=dataset,
        model_name=args.model,
        num_shards=args.shards,
        num_clients=args.clients,
        config=config,
        seed=args.seed,
        non_iid_level=args.non_iid,
        longtail_rho=args.longtail,
        sync_interval=args.sync_interval,
        assignment_policy=args.policy,
        load=load,
        merge_service_ms=args.merge_ms,
    )
    result = cluster.run(args.rounds, warmup_rounds=args.warmup)
    summary = result.summary()
    payload = {
        "scenario": {
            "model": args.model,
            "dataset": dataset.name,
            "shards": args.shards,
            "clients": args.clients,
            "sync_interval": args.sync_interval,
            "policy": args.policy,
            "rounds": args.rounds,
            "seed": args.seed,
        },
        "throughput_inferences_per_s": round(
            result.throughput_inferences_per_s, 2
        ),
        "virtual_span_ms": round(result.measured_span_ms, 2),
        "metrics": summary.as_row(),
        "nodes": [
            {
                "node": node.node_id,
                "clients": len(node.assigned_clients),
                "requests": node.requests_served,
                "mean_wait_ms": round(node.mean_wait_ms, 2),
                "busy_ms": round(node.total_busy_ms, 2),
            }
            for node in result.nodes
        ],
        "cross_shard_syncs": result.coordinator.syncs_performed,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{args.model} on {dataset.name}, {args.shards} shards, "
        f"{args.clients} clients, sync={args.sync_interval}, "
        f"policy={args.policy}, seed={args.seed}\n"
    )
    print(
        f"throughput {result.throughput_inferences_per_s:8.0f} inf/vs   "
        f"latency {summary.avg_latency_ms:7.2f}ms   "
        f"accuracy {100 * summary.accuracy:5.1f}%   "
        f"hit ratio {100 * summary.hit_ratio:5.1f}%"
    )
    print(f"\n{'node':>5s}{'clients':>9s}{'requests':>10s}"
          f"{'mean wait':>11s}{'busy':>10s}")
    for row in payload["nodes"]:
        print(
            f"{row['node']:5d}{row['clients']:9d}{row['requests']:10d}"
            f"{row['mean_wait_ms']:9.1f}ms{row['busy_ms']:8.0f}ms"
        )
    return 0


#: Stage order of the profile-round breakdown (client stages, then the
#: server-side allocation and merge work of one protocol round).
PROFILE_STAGES = ("sample-gen", "probe", "model", "collect", "allocate", "merge")


def cmd_profile_round(args: argparse.Namespace) -> int:
    """Per-stage wall-clock breakdown of full protocol rounds.

    Runs ``--rounds`` measured rounds (after ``--warmup`` untimed ones)
    through the vectorized pipeline with stage accumulators threaded
    down to the engine, then prints where the time went: sample
    generation, cache probes, final-model classification, Eq. 3
    collection, ACA allocation, and the Eq. 4/5 merge.  The tool that
    makes future probe-kernel regressions diagnosable at a glance.
    """
    dataset = get_dataset(args.dataset, args.classes)
    quantize_threshold = getattr(args, "quantize_threshold", None)
    if args.dtype == "int8" and quantize_threshold is None:
        quantize_threshold = 2  # quantize every non-trivial layer
    config = CoCaConfig(
        theta=args.theta,
        # int8 is a *storage/shortlist* tier: decisions still come from the
        # exact float32 re-score, so the lookup dtype stays float32.
        lookup_dtype="float32" if args.dtype == "int8" else args.dtype,
        prune_threshold=args.prune_threshold,
        quantize_threshold=quantize_threshold,
        probe_threads=getattr(args, "threads", 1),
    )
    framework = CoCaFramework(
        dataset=dataset,
        model_name=args.model,
        num_clients=args.clients,
        config=config,
        seed=args.seed,
        non_iid_level=args.non_iid,
        longtail_rho=args.longtail,
    )
    for r in range(args.warmup):
        framework.run_round(r)
    timings: dict[str, float] = {}
    round_ms: list[float] = []
    for r in range(args.rounds):
        started = time.perf_counter()
        framework.run_round(args.warmup + r, timings=timings)
        round_ms.append(1e3 * (time.perf_counter() - started))
    rounds_summary = summarize_latencies(round_ms)
    frames = args.rounds * args.clients * config.frames_per_round
    accounted = sum(timings.get(stage, 0.0) for stage in PROFILE_STAGES)
    payload = {
        "scenario": {
            "model": args.model,
            "dataset": dataset.name,
            "clients": args.clients,
            "rounds": args.rounds,
            "frames": frames,
            "seed": args.seed,
            "lookup_dtype": args.dtype,
            "prune_threshold": args.prune_threshold,
            "quantize_threshold": quantize_threshold,
            "probe_threads": config.probe_threads,
        },
        "stages_ms": {
            stage: round(1e3 * timings.get(stage, 0.0), 3)
            for stage in PROFILE_STAGES
        },
        # Two-tier probe split (subset of the probe stage, not additive
        # with it): coarse/LSH shortlist selection vs exact re-score.
        "probe_split_ms": {
            part: round(1e3 * timings.get(f"probe-{part}", 0.0), 3)
            for part in ("shortlist", "rescore")
        },
        "total_ms": round(1e3 * accounted, 3),
        "inferences_per_s": round(frames / accounted, 1) if accounted else None,
        # Whole-round wall clock (stages + unaccounted overhead), the
        # same percentile shape the serve load generator reports.
        "round_ms": rounds_summary.as_row(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{args.model} on {dataset.name}, {args.clients} clients x "
        f"{args.rounds} rounds x {config.frames_per_round} frames, "
        f"dtype={args.dtype}, threads={config.probe_threads}, "
        f"seed={args.seed}\n"
    )
    print(f"{'stage':>14s}{'time':>12s}{'share':>9s}")
    for stage in PROFILE_STAGES:
        ms = 1e3 * timings.get(stage, 0.0)
        share = 100.0 * ms / (1e3 * accounted) if accounted else 0.0
        print(f"{stage:>14s}{ms:10.1f}ms{share:8.1f}%")
        if stage != "probe":
            continue
        for part in ("shortlist", "rescore"):
            part_ms = 1e3 * timings.get(f"probe-{part}", 0.0)
            if part_ms:
                part_share = 100.0 * part_ms / ms if ms else 0.0
                print(
                    f"{'· ' + part:>14s}{part_ms:10.1f}ms{part_share:8.1f}%"
                )
    print(
        f"\ntotal {1e3 * accounted:.1f}ms for {frames} inferences "
        f"({frames / accounted:,.0f} inf/s)"
        if accounted
        else "\nno stage time recorded"
    )
    print(f"per round: {rounds_summary.format()}")
    return 0


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        snapshot_path=args.snapshot,
        num_workers=args.workers,
        mode=args.mode,
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
        max_retries=args.retries,
        router_salt=args.salt,
        worker=WorkerOptions(
            alpha=args.alpha,
            theta=args.theta,
            service_floor_ms=args.service_floor_ms,
            miss_ms=args.miss_ms,
        ),
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Bring up the serving cluster from a snapshot and smoke it.

    Starts one worker per shard from ``snapshot``, reports each lane's
    warm-start cost and mapped state, drives ``--requests`` synthetic
    requests through the admission path, and prints the outcome ledger
    — the round-trip proof that the snapshot serves.
    """
    config = _serve_config(args)
    # A fixed-size smoke: the open-loop driver at an effectively
    # unlimited rate fires every request exactly once, as fast as
    # admission allows.
    load = LoadgenConfig(
        rate_per_s=1e6,
        num_requests=args.requests,
        batch=args.batch,
        seed=args.seed,
    )
    report = run_loadgen(config, load)
    lanes = report.frontend_stats.get("lanes", [])
    payload = {
        "snapshot": args.snapshot,
        "mode": config.mode,
        "workers": config.num_workers,
        "queue_depth": config.queue_depth,
        "deadline_ms": config.deadline_ms,
        "lanes": lanes,
        "smoke": report.as_json(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{config.num_workers} {config.mode} worker(s) over {args.snapshot} "
        f"(queue depth {config.queue_depth}, deadline {config.deadline_ms}ms)"
    )
    for lane in lanes:
        info = lane.get("worker", {})
        print(
            f"  shard {lane['shard']}: pid {info.get('pid')}, "
            f"warm start {info.get('init_ms', 0.0):.1f}ms, "
            f"epoch {info.get('epoch')}, served {lane['served']}"
        )
    print(
        f"smoke: {report.success}/{report.offered} ok, "
        f"{report.timeout} timeout, {report.shed} shed, "
        f"hit ratio {100 * report.hit_ratio:.1f}%"
    )
    if report.latency is not None:
        print(f"latency: {report.latency.format()}")
    return 0 if report.success == report.offered else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive the serving cluster at a target rate and report percentiles.

    Open loop with ``--rate`` (Poisson arrivals; adds the M/D/1
    queue-wait cross-check when a single worker serves), closed loop
    with ``--concurrency`` sessions otherwise.
    """
    config = _serve_config(args)
    load = LoadgenConfig(
        rate_per_s=args.rate,
        num_requests=args.requests,
        concurrency=args.concurrency,
        duration_s=args.duration,
        batch=args.batch,
        noise=args.noise,
        miss_fraction=args.miss_fraction,
        seed=args.seed,
        use_retry=not args.no_retry,
    )
    report = run_loadgen(config, load)
    payload = report.as_json()
    payload["workers"] = config.num_workers
    payload["mode"] = f"{report.mode}/{config.mode}"
    analytic = None
    if (
        args.rate is not None
        and config.num_workers == 1
        and report.service is not None
        and report.duration_s > 0
    ):
        offered_rate = report.offered / report.duration_s
        try:
            rho, wait = analytic_wait_ms(offered_rate, report.service.mean_ms)
            analytic = {"utilization": round(rho, 3),
                        "predicted_wait_ms": round(wait, 3)}
        except ValueError:
            analytic = {"utilization": None, "predicted_wait_ms": None}
        payload["analytic"] = analytic
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{report.mode} over {config.num_workers} {config.mode} worker(s): "
        f"{report.offered} requests in {report.duration_s:.2f}s "
        f"({report.throughput_rps:.0f} ok/s)"
    )
    print(
        f"outcomes: {report.success} ok, {report.timeout} timeout, "
        f"{report.shed} shed ({report.retries} retries, "
        f"{report.late_responses} late)"
    )
    for label, summary in (("latency", report.latency),
                           ("queue wait", report.wait),
                           ("service", report.service)):
        if summary is not None:
            print(f"{label:>10s}: {summary.format()}")
    if analytic is not None and analytic["predicted_wait_ms"] is not None:
        assert report.wait is not None
        print(
            f"  analytic: M/D/1 at rho={analytic['utilization']} predicts "
            f"{analytic['predicted_wait_ms']}ms mean wait "
            f"(measured {report.wait.mean_ms:.3f}ms)"
        )
    print(f"hit ratio: {100 * report.hit_ratio:.1f}%")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo-aware static invariant checker (see repro.lint)."""
    from pathlib import Path

    from repro.lint import (
        lint_paths,
        load_all_rules,
        load_baseline,
        write_baseline,
    )
    from repro.lint.baseline import Baseline
    from repro.lint.runner import find_repo_root

    if args.list_rules:
        for rule in load_all_rules().values():
            print(f"{rule.id:28s} {rule.description}")
        return 0

    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {missing[0]}", file=sys.stderr)
        return 2
    root = find_repo_root(paths[0])
    baseline_path = (
        Path(args.baseline) if args.baseline else root / "lint_baseline.json"
    )
    baseline = (
        Baseline.empty() if args.no_baseline else load_baseline(baseline_path)
    )
    rule_ids = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    report = lint_paths(paths, baseline=baseline, rule_ids=rule_ids, root=root)

    if args.update_baseline:
        write_baseline(baseline_path, report.all_unsuppressed)
        print(
            f"baseline updated: {len(report.all_unsuppressed)} finding(s) "
            f"written to {baseline_path}"
        )
        return 0

    if args.json:
        print(json.dumps(
            {
                "files_scanned": report.files_scanned,
                "new": [f.as_dict() for f in report.new],
                "baselined": [f.as_dict() for f in report.baselined],
                "suppressed": len(report.suppressed),
                "ok": report.ok,
            },
            indent=2,
        ))
        return 0 if report.ok else 1

    for finding in report.new:
        print(finding.format())
    summary = (
        f"{report.files_scanned} file(s) scanned: "
        f"{len(report.new)} new, {len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    if report.ok:
        print(f"repro lint: clean ({summary})")
        return 0
    print(f"repro lint: FAILED ({summary})", file=sys.stderr)
    return 1


def cmd_store_inspect(args: argparse.Namespace) -> int:
    """Describe a snapshot-store directory (``repro store inspect``)."""
    from repro.store import MappedTableStore, SnapshotFormatError

    try:
        store = MappedTableStore(args.path, verify=args.verify)
    except (SnapshotFormatError, OSError) as exc:
        print(f"cannot open snapshot {args.path}: {exc}", file=sys.stderr)
        return 1
    manifest = store.manifest
    with store:
        meta_names = sorted(store._meta)
        references = sorted(store.references())
    payload = {
        "path": str(store.path),
        "layout_version": manifest.layout_version,
        "epoch": manifest.epoch,
        "geometry": {
            "classes": manifest.num_classes,
            "layers": manifest.num_layers,
            "dim": manifest.dim,
        },
        "dtype": manifest.dtype,
        "shards": [
            {
                "file": spec.file,
                "layers": [spec.layer_lo, spec.layer_hi],
                "nbytes": spec.nbytes,
                "sha256": spec.sha256,
            }
            for spec in manifest.shards
        ],
        "meta_arrays": meta_names,
        "references": references,
        "verified": bool(args.verify),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{store.path}: repro-snapshot v{manifest.layout_version}, "
        f"epoch {manifest.epoch}, "
        f"{manifest.num_classes} classes x {manifest.num_layers} layers "
        f"x {manifest.dim} dim, dtype {manifest.dtype}"
        + (" (checksums verified)" if args.verify else "")
    )
    print(f"\n{'shard':28s}{'layers':>10s}{'bytes':>12s}  sha256")
    for spec in manifest.shards:
        print(
            f"{spec.file:28s}{f'{spec.layer_lo}-{spec.layer_hi - 1}':>10s}"
            f"{spec.nbytes:12,d}  {spec.sha256[:12]}…"
        )
    print(f"\nmeta arrays: {', '.join(meta_names)}")
    return 0


def cmd_store_convert(args: argparse.Namespace) -> int:
    """Convert a legacy npz archive to a snapshot directory."""
    import numpy as np

    from repro.core.server import GlobalCacheTable
    from repro.store import write_snapshot

    try:
        with np.load(args.src) as archive:
            for key in ("entries", "filled", "class_freq"):
                if key not in archive:
                    print(
                        f"{args.src} is missing array {key!r} — not a "
                        "save_table archive",
                        file=sys.stderr,
                    )
                    return 1
            entries = np.asarray(archive["entries"], dtype=np.float64)
            if entries.ndim != 3:
                print(
                    f"entries has shape {entries.shape}, expected (I, L, d)",
                    file=sys.stderr,
                )
                return 1
            filled = np.asarray(archive["filled"], dtype=bool)
            class_freq = np.asarray(archive["class_freq"], dtype=np.float64)
            # Older archives predate the similarity floor; carry over
            # whichever reference vectors the archive actually has.
            references = {
                name: np.asarray(archive[name], dtype=np.float64)
                for name in archive.files
                if name.startswith("reference_")
            }
    except (OSError, ValueError) as exc:
        print(f"cannot read archive {args.src}: {exc}", file=sys.stderr)
        return 1
    num_classes, num_layers, dim = entries.shape
    table = GlobalCacheTable(num_classes, num_layers, dim)
    table.entries = entries
    table.filled = filled
    table.class_freq = class_freq
    manifest = write_snapshot(
        args.dest,
        table,
        references=references,
        epoch=args.epoch,
        layers_per_shard=args.layers_per_shard,
        dtype=args.dtype,
    )
    payload = {
        "src": str(args.src),
        "dest": str(args.dest),
        "epoch": manifest.epoch,
        "dtype": manifest.dtype,
        "shards": len(manifest.shards),
        "entries_nbytes": sum(spec.nbytes for spec in manifest.shards),
        "references": sorted(references),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"wrote {args.dest}: epoch {manifest.epoch}, "
        f"{len(manifest.shards)} shard(s), dtype {manifest.dtype}, "
        f"{payload['entries_nbytes']:,d} entry bytes, "
        f"{len(references)} reference vector(s)"
    )
    return 0


def cmd_store_diff(args: argparse.Namespace) -> int:
    """Row-level difference between two snapshots of one table."""
    from repro.store import (
        MappedTableStore,
        SnapshotFormatError,
        diff_tables,
        full_rows_nbytes,
    )

    try:
        with MappedTableStore(args.base) as base_store, MappedTableStore(
            args.target
        ) as target_store:
            geometry = (
                base_store.num_classes,
                base_store.num_layers,
                base_store.dim,
            )
            target_geometry = (
                target_store.num_classes,
                target_store.num_layers,
                target_store.dim,
            )
            if geometry != target_geometry:
                print(
                    f"snapshots differ in geometry: {geometry} vs "
                    f"{target_geometry}",
                    file=sys.stderr,
                )
                return 2
            base_epoch, target_epoch = base_store.epoch, target_store.epoch
            if base_epoch > target_epoch:
                base_epoch = target_epoch = 0  # diffing backwards in time
            delta = diff_tables(
                base_store.as_table(),
                target_store.as_table(),
                base_epoch=base_epoch,
                target_epoch=target_epoch,
            )
    except (SnapshotFormatError, OSError) as exc:
        print(f"cannot diff snapshots: {exc}", file=sys.stderr)
        return 1
    num_classes, num_layers, dim = geometry
    full_nbytes = full_rows_nbytes(num_classes, num_layers, dim)
    payload = {
        "base": str(args.base),
        "target": str(args.target),
        "base_epoch": base_store.epoch,
        "target_epoch": target_store.epoch,
        "entry_rows_changed": int(delta.entry_rows.size),
        "freq_rows_changed": int(delta.freq_rows.size),
        "classes": num_classes,
        "delta_nbytes": delta.nbytes,
        "full_copy_nbytes": full_nbytes,
        "bytes_ratio": round(delta.nbytes / full_nbytes, 4),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{args.base} (epoch {base_store.epoch}) -> {args.target} "
        f"(epoch {target_store.epoch}):"
    )
    print(
        f"  {delta.entry_rows.size}/{num_classes} entry rows changed, "
        f"{delta.freq_rows.size}/{num_classes} freq rows changed"
    )
    print(
        f"  delta would ship {delta.nbytes:,d} bytes "
        f"({100 * payload['bytes_ratio']:.1f}% of a {full_nbytes:,d}-byte "
        "full copy)"
    )
    return 0


def cmd_sweep_theta(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    thetas = [float(t) for t in args.thetas.split(",") if t.strip()]
    print(f"{'theta':>7s}{'latency':>10s}{'accuracy':>10s}{'hit ratio':>11s}")
    for theta in thetas:
        runner = CoCaRunner(fresh_scenario(scenario), config=CoCaConfig(theta=theta))
        summary = runner.run(args.rounds, warmup_rounds=args.warmup).summary()
        print(
            f"{theta:7.3f}{summary.avg_latency_ms:9.2f}ms"
            f"{100 * summary.accuracy:9.1f}%{100 * summary.hit_ratio:10.1f}%"
        )
    return 0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="ucf101")
    parser.add_argument("--classes", type=int, default=None,
                        help="subset size (default: full dataset)")
    parser.add_argument("--model", default="resnet101",
                        choices=available_models())
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--non-iid", dest="non_iid", type=float, default=1.0)
    parser.add_argument("--longtail", type=float, default=1.0,
                        help="imbalance ratio rho (1 = uniform)")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--theta", type=float, default=0.05)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CoCa reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="list models, datasets and methods")
    info.set_defaults(func=cmd_info)

    compare = sub.add_parser("compare", help="run methods head-to-head")
    _add_scenario_args(compare)
    compare.add_argument("--methods", default="edge,coca",
                         help="comma-separated (see `info`)")
    compare.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of a table")
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep-theta", help="CoCa threshold sweep")
    _add_scenario_args(sweep)
    sweep.add_argument("--thetas", default="0.03,0.05,0.07")
    sweep.set_defaults(func=cmd_sweep_theta)

    cluster = sub.add_parser(
        "cluster", help="run a sharded multi-node cluster deployment"
    )
    _add_scenario_args(cluster)
    cluster.add_argument("--shards", type=int, default=4,
                         help="shard (= node) count")
    cluster.add_argument("--sync-interval", dest="sync_interval", type=int,
                         default=1, help="rounds between cross-shard syncs")
    cluster.add_argument("--policy", default="hash",
                         choices=ASSIGNMENT_POLICIES,
                         help="client -> node assignment policy")
    cluster.add_argument("--frames", type=int, default=60,
                         help="frames per round (F)")
    cluster.add_argument("--service-ms", dest="service_ms", type=float,
                         default=1.35, help="per-request node service time")
    cluster.add_argument("--merge-ms", dest="merge_ms", type=float,
                         default=0.5, help="per-upload-piece merge time")
    cluster.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of a table")
    cluster.set_defaults(func=cmd_cluster)

    profile = sub.add_parser(
        "profile-round",
        help="per-stage timing breakdown of full protocol rounds",
    )
    _add_scenario_args(profile)
    profile.add_argument("--dtype", default="float32",
                         choices=("float32", "float64", "int8"),
                         help="cache lookup dtype (int8 = float32 exact "
                              "re-score over an int8 coarse shortlist)")
    profile.add_argument("--prune-threshold", dest="prune_threshold",
                         type=int, default=None,
                         help="entry count enabling LSH-pruned probes")
    profile.add_argument("--quantize-threshold", dest="quantize_threshold",
                         type=int, default=None,
                         help="entry count enabling the two-tier quantized "
                              "kernel (default 2 when --dtype int8)")
    profile.add_argument("--threads", type=int, default=1,
                         help="probe worker count (CoCaConfig.probe_threads)")
    profile.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of a table")
    profile.set_defaults(func=cmd_profile_round)

    def _add_serve_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("snapshot", help="table snapshot directory to serve")
        p.add_argument("--workers", type=int, default=2,
                       help="shard worker count (one shard per worker)")
        p.add_argument("--mode", default="thread", choices=SERVE_MODES,
                       help="worker execution mode")
        p.add_argument("--queue-depth", dest="queue_depth", type=int,
                       default=32, help="per-shard admission queue bound")
        p.add_argument("--deadline-ms", dest="deadline_ms", type=float,
                       default=250.0, help="per-request deadline")
        p.add_argument("--retries", type=int, default=3,
                       help="max retries after shed (exponential backoff)")
        p.add_argument("--service-floor-ms", dest="service_floor_ms",
                       type=float, default=0.0,
                       help="emulated per-request device service time")
        p.add_argument("--miss-ms", dest="miss_ms", type=float, default=0.0,
                       help="emulated full-model time per missed frame")
        p.add_argument("--alpha", type=float, default=0.5,
                       help="Eq. 1 cross-layer accumulation factor")
        p.add_argument("--theta", type=float, default=0.05,
                       help="Eq. 2 early-exit threshold")
        p.add_argument("--salt", type=int, default=0,
                       help="class -> shard router salt")
        p.add_argument("--batch", type=int, default=16,
                       help="frames per request")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    serve = sub.add_parser(
        "serve",
        help="start shard workers from a snapshot and smoke the "
             "admission path",
    )
    _add_serve_args(serve)
    serve.add_argument("--requests", type=int, default=32,
                       help="synthetic smoke requests to round-trip")
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive the serving cluster at a target rate and report "
             "wall-clock percentiles",
    )
    _add_serve_args(loadgen)
    loadgen.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate (requests/s); "
                              "omit for closed loop")
    loadgen.add_argument("--requests", type=int, default=200,
                         help="open-loop request count")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="closed-loop client sessions")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="closed-loop drive seconds")
    loadgen.add_argument("--noise", type=float, default=0.2,
                         help="query jitter around stored centroids")
    loadgen.add_argument("--miss-fraction", dest="miss_fraction",
                         type=float, default=0.0,
                         help="fraction of pure-noise (miss) frames")
    loadgen.add_argument("--no-retry", dest="no_retry", action="store_true",
                         help="report sheds instead of retrying them")
    loadgen.set_defaults(func=cmd_loadgen)

    lint = sub.add_parser(
        "lint", help="run the repo-aware static invariant checker"
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to scan (default: src)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: <root>/lint_baseline.json)")
    lint.add_argument("--no-baseline", dest="no_baseline",
                      action="store_true",
                      help="ignore the baseline: report all findings as new")
    lint.add_argument("--update-baseline", dest="update_baseline",
                      action="store_true",
                      help="rewrite the baseline from current findings")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--list-rules", dest="list_rules", action="store_true",
                      help="list registered rules and exit")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")
    lint.set_defaults(func=cmd_lint)

    store = sub.add_parser(
        "store", help="inspect, convert and diff table snapshot stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_inspect = store_sub.add_parser(
        "inspect", help="describe a snapshot directory's manifest"
    )
    store_inspect.add_argument("path", help="snapshot directory")
    store_inspect.add_argument("--verify", action="store_true",
                               help="recompute every array checksum "
                                    "(reads all shard bytes)")
    store_inspect.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    store_inspect.set_defaults(func=cmd_store_inspect)

    store_convert = store_sub.add_parser(
        "convert", help="convert a legacy save_table npz to a snapshot"
    )
    store_convert.add_argument("src", help="npz archive written by save_table")
    store_convert.add_argument("dest", help="snapshot directory to write")
    store_convert.add_argument("--layers-per-shard", dest="layers_per_shard",
                               type=int, default=8,
                               help="cache layers per shard file")
    store_convert.add_argument("--dtype", default=None,
                               choices=("float64", "float32"),
                               help="entry storage dtype (default: float64)")
    store_convert.add_argument("--epoch", type=int, default=None,
                               help="snapshot epoch (default: auto-increment)")
    store_convert.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    store_convert.set_defaults(func=cmd_store_convert)

    store_diff = store_sub.add_parser(
        "diff", help="row-level difference between two snapshots"
    )
    store_diff.add_argument("base", help="older snapshot directory")
    store_diff.add_argument("target", help="newer snapshot directory")
    store_diff.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")
    store_diff.set_defaults(func=cmd_store_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
