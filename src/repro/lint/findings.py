"""Finding records produced by lint rules.

A :class:`Finding` pins one rule violation to a ``file:line`` location
with the rule id, a human message, and a fix hint.  Findings carry a
*fingerprint* — a hash of the rule id, the file path, and the offending
source line's text (plus a disambiguating index when the same line text
violates the same rule more than once in a file) — so the baseline file
keeps matching a finding when unrelated edits shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        rule: registered rule id (e.g. ``no-global-rng``).
        path: repo-relative posix path of the offending file.
        line: 1-based line number.
        col: 0-based column offset.
        message: what is wrong, specifically.
        hint: how to fix it (shown alongside the message).
        snippet: stripped text of the offending source line (fingerprint
            input; empty when the source is unavailable).
        occurrence: index among findings sharing (rule, path, snippet),
            so repeated identical lines fingerprint distinctly.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    snippet: str = field(default="", compare=False)
    occurrence: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity of this finding across line-number drift."""
        payload = "\x1f".join(
            (self.rule, self.path, self.snippet, str(self.occurrence))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """``path:line:col: [rule] message (hint: ...)`` for terminals."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number findings that share (rule, path, snippet) so fingerprints
    stay unique within a file."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.snippet)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(
            Finding(
                rule=f.rule,
                path=f.path,
                line=f.line,
                col=f.col,
                message=f.message,
                hint=f.hint,
                snippet=f.snippet,
                occurrence=index,
            )
        )
    return out
