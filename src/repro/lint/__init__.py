"""repro lint: a repo-aware static invariant checker.

The serving-path performance and determinism guarantees built up by the
earlier PRs rest on conventions the interpreter never checks — hot-path
kernels must not allocate, centroid math must stay in the configured
lookup dtype, randomness must flow through seeded Generators, the
cluster's virtual-time model must never read the host clock.  This
package enforces them statically: an AST rule framework
(:mod:`repro.lint.rules`), a driver with inline suppressions and a
debt baseline (:mod:`repro.lint.runner`), and the ``repro lint`` CLI
subcommand.  ``src/repro/lint/README.md`` documents how to add a rule.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, apply_overrides, load_config
from repro.lint.findings import Finding
from repro.lint.runner import LintReport, lint_paths
from repro.lint.rules import RULES, Rule, load_all_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "apply_overrides",
    "lint_paths",
    "load_all_rules",
    "load_baseline",
    "load_config",
    "write_baseline",
]
