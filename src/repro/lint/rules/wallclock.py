"""``no-wallclock-in-sim``: virtual-time code never reads host time.

The cluster and simulator are *event-driven virtual-time* models: every
millisecond flows through :class:`~repro.sim.clock.VirtualClock`, which
is what makes runs bit-reproducible and machine-independent.  One
``time.time()`` (or ``perf_counter``, or ``datetime.now``) inside
``sim/`` or ``cluster/`` couples results to host speed and destroys
that.  Profiling instrumentation belongs in the configured exempt
timing-hooks module, never inline.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, iter_calls, register

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.clock_gettime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class NoWallclockInSim(Rule):
    id = "no-wallclock-in-sim"
    description = (
        "forbid host-clock reads (time.*, datetime.now) in virtual-time "
        "directories"
    )
    hint = (
        "charge costs to a VirtualClock instead; wall-clock profiling "
        "hooks belong in the exempt timing module"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.is_wallclock_banned(ctx.rel_path):
            return
        assert ctx.imports is not None
        for call in iter_calls(ctx.tree):
            name = ctx.imports.resolve(call.func)
            if name in _BANNED:
                yield ctx.finding(
                    self,
                    call,
                    f"{name}() reads the host clock inside virtual-time "
                    "code",
                )
