"""Rule registry and the shared AST analysis context.

Every rule is a subclass of :class:`Rule` registered through
:func:`register`.  File-scoped rules implement :meth:`Rule.check` over a
:class:`FileContext`; project-scoped rules (``project_level = True``)
additionally implement :meth:`Rule.check_project` over the whole scanned
file set, for invariants no single file can witness (e.g. that every
``*_reference`` function has a tested vectorized counterpart).

The :class:`ImportTracker` resolves attribute chains to canonical dotted
names through the file's imports — ``np.random.seed`` and
``from numpy import random as r; r.seed`` both resolve to
``numpy.random.seed`` — so rules match *what is called*, not how the
caller spelled it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding


class ImportTracker:
    """Maps local names to canonical dotted module paths."""

    def __init__(self, tree: ast.AST) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    self._names[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports: out of scope
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        canonical = self._names.get(node.id)
        if canonical is None:
            return None
        parts.append(canonical)
        return ".".join(reversed(parts))


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]  # rule ids, or {"all"}
    justification: str


@dataclass
class FileContext:
    """Everything a file-scoped rule needs about one source file."""

    rel_path: str
    source: str
    tree: ast.Module
    config: LintConfig
    lines: list[str] = field(default_factory=list)
    imports: ImportTracker | None = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if self.imports is None:
            self.imports = ImportTracker(self.tree)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            path=self.rel_path,
            line=line,
            col=col,
            message=message,
            hint=hint if hint is not None else rule.hint,
            snippet=self.line_text(line),
        )


@dataclass
class ProjectContext:
    """Cross-file context handed to project-level rules."""

    files: list[FileContext]
    config: LintConfig
    tests_text: str  # concatenated source of the configured tests dirs


class Rule:
    """Base class: one named, registered invariant."""

    id: str = ""
    description: str = ""
    hint: str = ""
    project_level: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        return iter(())


#: All registered rules by id, in registration order.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls()
    return cls


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, def)`` for every function in a module, with
    ``Class.method`` qualnames (nested defs join with ``.``)."""

    def visit(node: ast.AST, prefix: str) -> Iterator[
        tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                yield from visit(child, prefix)

    yield from visit(tree, "")


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def load_all_rules() -> dict[str, Rule]:
    """Import every rule module (idempotent) and return the registry."""
    from repro.lint.rules import (  # noqa: F401  (import-for-registration)
        dtype,
        hygiene,
        kernel,
        parity,
        rng,
        wallclock,
    )

    return RULES
