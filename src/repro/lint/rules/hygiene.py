"""Hygiene rules: mutable defaults, shape-comment drift, suppressions.

``mutable-default`` is the classic: a ``def f(x, acc=[])`` default is
created once and shared across calls — in a codebase whose clients and
nodes are long-lived objects processing millions of frames, a shared
accumulator default is state leaking between runs.

``shape-comment-drift`` guards the SoA convention: buffer allocations
carry trailing shape comments (``ws.floats(...)  # (B, d)``) that
readers rely on; when a constructor's literal shape tuple and its
trailing comment disagree in arity, one of them is lying.

``suppression-justification`` makes lint debt auditable: an inline
``# repro-lint: disable=<rule>`` is honoured only with a
``-- <justification>`` tail, and a bare one is itself a finding.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, iter_calls, register

_MUTABLE_CALLS = frozenset({"list", "dict", "set"})
_SHAPE_CONSTRUCTORS = frozenset(
    {"numpy.zeros", "numpy.empty", "numpy.ones", "numpy.full"}
)
_SHAPE_COMMENT = re.compile(r"#\s*(?:shape:?\s*)?\(([^()]+)\)\s*$")

SUPPRESS_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+?)(?:\s*--\s*(.*))?$"
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


@register
class MutableDefault(Rule):
    id = "mutable-default"
    description = "forbid mutable default argument values"
    hint = "default to None and create the container inside the function"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default in {node.name}() is shared "
                        "across calls",
                    )


@register
class ShapeCommentDrift(Rule):
    id = "shape-comment-drift"
    description = (
        "a trailing shape comment must agree in arity with the literal "
        "shape tuple it annotates"
    )
    hint = "update the comment (or the shape) so both tell the same story"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.imports is not None
        for call in iter_calls(ctx.tree):
            name = ctx.imports.resolve(call.func)
            if name not in _SHAPE_CONSTRUCTORS or not call.args:
                continue
            shape = call.args[0]
            if not isinstance(shape, ast.Tuple):
                continue
            match = _SHAPE_COMMENT.search(ctx.line_text(call.lineno))
            if not match:
                continue
            commented = [p for p in match.group(1).split(",") if p.strip()]
            if len(commented) != len(shape.elts):
                yield ctx.finding(
                    self,
                    call,
                    f"shape comment claims {len(commented)} dims but the "
                    f"literal shape has {len(shape.elts)}",
                )


@register
class SuppressionJustification(Rule):
    id = "suppression-justification"
    description = (
        "inline lint suppressions require a `-- justification` tail"
    )
    hint = (
        "write `# repro-lint: disable=<rule-id> -- <why this is safe>`"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for lineno, text in enumerate(ctx.lines, start=1):
            match = SUPPRESS_PATTERN.search(text)
            if match is None:
                continue
            justification = (match.group(2) or "").strip()
            if not justification:
                yield Finding(
                    rule=self.id,
                    path=ctx.rel_path,
                    line=lineno,
                    col=max(0, text.find("#")),
                    message=(
                        "suppression without justification (nothing "
                        "after `--`)"
                    ),
                    hint=self.hint,
                    snippet=text.strip(),
                )
