"""``no-global-rng``: all randomness must flow through seeded Generators.

The repo's determinism guarantees (bit-exact equivalence suites, seeded
experiment reruns) hold only because every random draw comes from an
explicitly seeded ``np.random.Generator`` threaded through the call
graph.  One call into numpy's *global* legacy RNG — ``np.random.seed``,
``np.random.normal`` et al. — couples unrelated components through
hidden shared state and silently breaks reproducibility.  Constructing
generators (``default_rng``, ``SeedSequence``, the bit-generator
classes) is of course allowed; see :mod:`repro.core.rng` for the
registered way to derive named seed streams.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, iter_calls, register

_PREFIX = "numpy.random."

#: numpy.random names that construct or type generators (allowed).
_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register
class NoGlobalRng(Rule):
    id = "no-global-rng"
    description = (
        "forbid np.random.seed and module-level np.random draws; "
        "randomness must come from passed np.random.Generator objects"
    )
    hint = (
        "accept an np.random.Generator parameter, or derive one with "
        "repro.core.rng.derive_rng(seed, stream)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.imports is not None
        for call in iter_calls(ctx.tree):
            name = ctx.imports.resolve(call.func)
            if name is None or not name.startswith(_PREFIX):
                continue
            tail = name[len(_PREFIX):]
            head = tail.split(".")[0]
            if head in _ALLOWED:
                continue
            if head == "seed":
                message = (
                    "np.random.seed mutates the global legacy RNG shared "
                    "by the whole process"
                )
            else:
                message = (
                    f"module-level draw {name}() uses the hidden global "
                    "RNG state"
                )
            yield ctx.finding(self, call, message)
