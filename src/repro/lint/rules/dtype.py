"""``dtype-discipline``: hot-path modules must be explicit about dtype.

The probe kernel's 2.9x single-precision win — and the dtype-parity
guarantee that float32 and float64 runs make identical decisions — both
die silently the moment one hot-path array is created as an implicit
float64 and flows into the accumulator math.  In the configured hot-path
modules this rule therefore flags:

* ``np.zeros`` / ``np.empty`` / ``np.ones`` calls without an explicit
  ``dtype=`` keyword (numpy's default is float64), and
* ``.astype(...)`` calls without ``copy=False`` — on the probe path a
  cast of an already-conforming array must be a no-op view, not a fresh
  float64-sized copy per call.  (``copy=False`` still copies when the
  dtype genuinely differs, so it never changes values.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, iter_calls, register

_CONSTRUCTORS = frozenset({"numpy.zeros", "numpy.empty", "numpy.ones"})


def _is_false(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


@register
class DtypeDiscipline(Rule):
    id = "dtype-discipline"
    description = (
        "in hot-path modules, numpy allocations need an explicit dtype= "
        "and .astype() needs copy=False"
    )
    hint = (
        "pass dtype= explicitly (the configured lookup dtype on probe "
        "buffers); use .astype(..., copy=False) so conforming arrays "
        "pass through uncopied"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.is_hot_path(ctx.rel_path):
            return
        assert ctx.imports is not None
        for call in iter_calls(ctx.tree):
            name = ctx.imports.resolve(call.func)
            if name in _CONSTRUCTORS:
                if not any(kw.arg == "dtype" for kw in call.keywords):
                    short = name.split(".")[-1]
                    yield ctx.finding(
                        self,
                        call,
                        f"np.{short} without dtype= defaults to float64 "
                        "on the probe hot path",
                    )
                continue
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
            ):
                copy_kw = next(
                    (kw for kw in call.keywords if kw.arg == "copy"), None
                )
                if copy_kw is None or not _is_false(copy_kw.value):
                    yield ctx.finding(
                        self,
                        call,
                        ".astype(...) without copy=False copies even "
                        "already-conforming arrays",
                    )
