"""``zero-alloc-kernel``: registered workspace kernels may not allocate.

The steady-state probe path owes its throughput to writing every
intermediate into :class:`~repro.core.cache.LookupWorkspace` pools with
``out=``; a single numpy constructor re-introduced into a kernel
re-allocates ``batch x n_entries`` scratch on every probe and the
zero-allocation property degrades without any test failing.  Functions
are registered as kernels in the lint config
(``path.py::Class.method``) or inline with a ``# repro-lint: kernel``
marker comment on the ``def`` line; inside them this rule bans the
allocating numpy constructors and the concatenation helpers
(``np.concatenate`` / ``np.stack`` / friends), which have no ``out=``
form.  Small *per-row output* arrays (``.copy()`` of an ``(n,)`` view,
fancy-indexed id gathers) are the documented exception and are not
flagged.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import (
    FileContext,
    Rule,
    iter_calls,
    register,
    walk_functions,
)

_BANNED = frozenset(
    {
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.full",
        "numpy.array",
        "numpy.arange",
        "numpy.eye",
        "numpy.linspace",
        "numpy.zeros_like",
        "numpy.empty_like",
        "numpy.ones_like",
        "numpy.full_like",
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.column_stack",
        "numpy.tile",
        "numpy.repeat",
    }
)

_MARKER = "# repro-lint: kernel"


@register
class ZeroAllocKernel(Rule):
    id = "zero-alloc-kernel"
    description = (
        "registered workspace kernels may not call allocating numpy "
        "constructors or concatenate/stack"
    )
    hint = (
        "take scratch from the LookupWorkspace pools (ws.floats/ints/"
        "bools/arange) and write results with out=; if the allocation "
        "is a once-per-session init, move it out of the kernel"
    )

    def _is_marked(self, ctx: FileContext, line: int) -> bool:
        return _MARKER in ctx.line_text(line)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        registered = ctx.config.kernel_qualnames(ctx.rel_path)
        assert ctx.imports is not None
        for qualname, func in walk_functions(ctx.tree):
            if qualname not in registered and not (
                self._is_marked(ctx, func.lineno)
                or self._is_marked(ctx, func.lineno - 1)
            ):
                continue
            for call in iter_calls(func):
                name = ctx.imports.resolve(call.func)
                if name in _BANNED:
                    short = name.split(".")[-1]
                    yield ctx.finding(
                        self,
                        call,
                        f"np.{short} allocates inside workspace kernel "
                        f"{qualname}",
                    )
