"""``reference-parity``: every ``*_reference`` function stays paired.

The vectorized pipeline is trusted because each stage has a scalar
reference implementation and an equivalence test proving the two
identical.  That safety net frays in two ways: the vectorized
counterpart gets renamed (the reference now checks nothing), or the
equivalence test is deleted while both functions live on.  This
project-level rule checks, for every function named ``X_reference``
under the scanned tree, that (a) a sibling ``X`` exists in the same
module and (b) both names appear somewhere in the configured tests
directories.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import (
    ProjectContext,
    Rule,
    register,
    walk_functions,
)


@register
class ReferenceParity(Rule):
    id = "reference-parity"
    description = (
        "every *_reference function needs a same-module vectorized "
        "counterpart and an equivalence test naming both"
    )
    hint = (
        "keep the X / X_reference pair in one module and assert their "
        "equivalence in a test under tests/"
    )
    project_level = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        suffix = project.config.reference_suffix
        for ctx in project.files:
            functions = dict(walk_functions(ctx.tree))
            names = {qual.split(".")[-1] for qual in functions}
            for qualname, func in functions.items():
                short = qualname.split(".")[-1]
                if not short.endswith(suffix) or short == suffix:
                    continue
                counterpart = short[: -len(suffix)]
                if counterpart not in names:
                    yield ctx.finding(
                        self,
                        func,
                        f"{short} has no counterpart {counterpart}() in "
                        "this module",
                    )
                    continue
                missing = [
                    name
                    for name in (short, counterpart)
                    if not re.search(
                        rf"\b{re.escape(name)}\b", project.tests_text
                    )
                ]
                if missing:
                    yield ctx.finding(
                        self,
                        func,
                        f"equivalence pair {counterpart}/{short} is not "
                        f"exercised by any test (missing: "
                        f"{', '.join(missing)})",
                    )
