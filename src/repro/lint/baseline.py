"""Baseline file: pre-existing lint debt that must not block CI.

A baseline is a JSON document listing finding fingerprints (see
:attr:`repro.lint.findings.Finding.fingerprint`) that are acknowledged
debt.  ``repro lint`` partitions findings into *new* (fail the run) and
*baselined* (reported, never failing); ``--update-baseline`` rewrites
the file from the current findings, which is how debt is ratcheted
down — re-running it after fixes shrinks the file and a regression can
never silently re-enter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding

_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """Known-debt fingerprints plus their recorded context."""

    fingerprints: frozenset[str]
    path: Path | None = None

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(fingerprints=frozenset())


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file (an absent file is an empty baseline)."""
    if not path.is_file():
        return Baseline(fingerprints=frozenset(), path=path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    prints = frozenset(
        str(entry["fingerprint"]) for entry in data.get("findings", [])
    )
    return Baseline(fingerprints=prints, path=path)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the new acknowledged debt."""
    payload = {
        "version": _VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
