"""The lint driver: walk files, parse, apply rules, filter, report.

:func:`lint_paths` is the programmatic entry point (the ``repro lint``
CLI and the test suite both call it):

1. collect ``.py`` files under the given paths (skipping caches and
   hidden directories), parse each once;
2. run every file-scoped rule over each file, then every project-scoped
   rule over the whole set;
3. drop findings covered by an inline
   ``# repro-lint: disable=<rule> -- <justification>`` on the offending
   or preceding line;
4. partition the rest against the baseline into *new* and *baselined*.

Paths inside findings are repo-relative (relative to the nearest
ancestor of the scan root containing ``pyproject.toml`` or ``.git``,
else to the scan root itself), so fingerprints are stable regardless of
the invocation directory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding, assign_occurrences
from repro.lint.rules import (
    FileContext,
    ProjectContext,
    Rule,
    load_all_rules,
)
from repro.lint.rules.hygiene import SUPPRESS_PATTERN

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def all_unsuppressed(self) -> list[Finding]:
        return self.new + self.baselined

    @property
    def ok(self) -> bool:
        return not self.new


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(p.startswith(".") and p not in (".", "..")
                   for p in candidate.parts):
                continue
            yield candidate


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml or .git (else ``start``)."""
    start = start.resolve()
    base = start if start.is_dir() else start.parent
    for directory in (base, *base.parents):
        if (directory / "pyproject.toml").is_file() or (
            directory / ".git"
        ).exists():
            return directory
    return base


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_file(path: Path, rel: str, config: LintConfig) -> FileContext | None:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return FileContext(rel_path=rel, source=source, tree=tree, config=config)


def _suppressions(ctx: FileContext) -> dict[int, frozenset[str]]:
    """Line -> suppressed-rule-id set for justified inline suppressions.

    Unjustified suppressions are deliberately not honoured — they show
    up as ``suppression-justification`` findings instead.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(ctx.lines, start=1):
        match = SUPPRESS_PATTERN.search(text)
        if match is None:
            continue
        if not (match.group(2) or "").strip():
            continue
        rules = frozenset(
            r.strip() for r in match.group(1).split(",") if r.strip()
        )
        out[lineno] = rules
    return out


def _is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str]]
) -> bool:
    if finding.rule == "suppression-justification":
        return False  # the meta-rule cannot be suppressed
    for line in (finding.line, finding.line - 1):
        rules = suppressions.get(line)
        if rules and (finding.rule in rules or "all" in rules):
            return True
    return False


def _read_tests_text(config: LintConfig, root: Path) -> str:
    chunks: list[str] = []
    for tests_dir in config.tests_dirs:
        directory = (root / tests_dir) if not Path(tests_dir).is_absolute() \
            else Path(tests_dir)
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            if set(path.parts) & _SKIP_DIRS:
                continue
            try:
                chunks.append(path.read_text(encoding="utf-8"))
            except OSError:
                continue
    return "\n".join(chunks)


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    rule_ids: Sequence[str] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint the given files/directories and return a :class:`LintReport`.

    Args:
        paths: files or directories to scan.
        config: lint configuration (default: defaults + pyproject
            overrides discovered from the first path).
        baseline: acknowledged debt (default: empty).
        rule_ids: restrict to a subset of rule ids (default: all).
        root: repo root for path relativization (default: discovered).
    """
    resolved = [Path(p) for p in paths]
    if not resolved:
        raise ValueError("no paths to lint")
    if root is None:
        root = find_repo_root(resolved[0])
    if config is None:
        config = load_config(root)
    if baseline is None:
        baseline = Baseline.empty()

    registry = load_all_rules()
    if rule_ids is None:
        rules: list[Rule] = list(registry.values())
    else:
        unknown = [r for r in rule_ids if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule ids: {unknown}")
        rules = [registry[r] for r in rule_ids]
    file_rules = [r for r in rules if not r.project_level]
    project_rules = [r for r in rules if r.project_level]

    report = LintReport()
    contexts: list[FileContext] = []
    raw: list[Finding] = []
    for path in iter_python_files(resolved):
        rel = _rel_path(path, root)
        ctx = _parse_file(path, rel, config)
        report.files_scanned += 1
        if ctx is None:
            raw.append(
                Finding(
                    rule="syntax-error",
                    path=rel,
                    line=1,
                    col=0,
                    message="file does not parse; rules were not applied",
                    hint="fix the syntax error",
                )
            )
            continue
        contexts.append(ctx)
        for rule in file_rules:
            raw.extend(rule.check(ctx))

    if project_rules:
        project = ProjectContext(
            files=contexts,
            config=config,
            tests_text=_read_tests_text(config, root),
        )
        for rule in project_rules:
            raw.extend(rule.check_project(project))

    suppression_maps = {
        ctx.rel_path: _suppressions(ctx) for ctx in contexts
    }
    kept: list[Finding] = []
    for finding in assign_occurrences(raw):
        if _is_suppressed(
            finding, suppression_maps.get(finding.path, {})
        ):
            report.suppressed.append(finding)
        elif finding in baseline:
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    return report
