"""Per-path lint configuration.

The defaults below encode this repository's conventions — which modules
are probe hot paths, which functions are registered workspace kernels,
which directories must never touch the wall clock.  A project can
override any field from ``pyproject.toml`` under ``[tool.repro-lint]``
(dashes or underscores both accepted), which is how the fixture tests
retarget the rules at synthetic files.

All path entries are posix-style and matched as *suffixes* of the
scanned file's normalized path, so the linter behaves identically from
the repo root, from ``src/``, or from an absolute invocation.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, fields, replace
from pathlib import Path


def _norm(path: str) -> str:
    return path.replace("\\", "/").strip("/")


@dataclass(frozen=True)
class LintConfig:
    """Repo-aware knobs consumed by the rules.

    Attributes:
        hot_path_modules: files under the ``dtype-discipline`` rule
            (allocations need explicit dtypes, ``astype`` needs
            ``copy=False``).
        kernel_functions: ``path.py::Qual.name`` entries registered as
            zero-allocation workspace kernels; a ``# repro-lint: kernel``
            marker comment on the ``def`` line registers one inline.
        wallclock_dirs: directories whose modules may not read host time
            (the virtual-time contract).
        wallclock_exempt: files inside ``wallclock_dirs`` that are the
            designated timing-hook escape hatch.
        tests_dirs: where the ``reference-parity`` rule looks for the
            equivalence tests naming each ``*_reference`` pair.
        reference_suffix: suffix marking scalar reference functions.
    """

    hot_path_modules: tuple[str, ...] = (
        "repro/core/engine.py",
        "repro/core/cache.py",
        "repro/cluster/node.py",
        "repro/lsh/alsh.py",
    )
    kernel_functions: tuple[str, ...] = (
        "repro/core/cache.py::LookupWorkspace.top2",
        "repro/core/cache.py::LookupWorkspace.scores_into",
        "repro/core/cache.py::BatchedLookupSession._probe_dense",
        "repro/core/cache.py::BatchedLookupSession._dense_block",
        "repro/core/cache.py::BatchedLookupSession._probe_pruned",
        "repro/core/cache.py::BatchedLookupSession._probe_twotier",
        "repro/core/cache.py::BatchedLookupSession._coarse_candidates",
        "repro/core/cache.py::BatchedLookupSession._fold_block",
    )
    wallclock_dirs: tuple[str, ...] = (
        "repro/sim",
        "repro/cluster",
    )
    wallclock_exempt: tuple[str, ...] = (
        "repro/sim/timing.py",
    )
    tests_dirs: tuple[str, ...] = ("tests",)
    reference_suffix: str = "_reference"

    # ------------------------------------------------------------------
    # Path matching
    # ------------------------------------------------------------------

    def is_hot_path(self, rel_path: str) -> bool:
        rel = _norm(rel_path)
        return any(rel.endswith(_norm(m)) for m in self.hot_path_modules)

    def is_wallclock_banned(self, rel_path: str) -> bool:
        rel = _norm(rel_path)
        if any(rel.endswith(_norm(e)) for e in self.wallclock_exempt):
            return False
        padded = "/" + rel
        return any("/" + _norm(d) + "/" in padded for d in self.wallclock_dirs)

    def kernel_qualnames(self, rel_path: str) -> set[str]:
        """Registered kernel qualnames applying to one file."""
        rel = _norm(rel_path)
        out: set[str] = set()
        for entry in self.kernel_functions:
            path_part, sep, qual = entry.partition("::")
            if sep and qual and rel.endswith(_norm(path_part)):
                out.add(qual)
        return out


def _coerce(value: object) -> object:
    if isinstance(value, list):
        return tuple(str(v) for v in value)
    return value


def load_config(start: Path | None = None) -> LintConfig:
    """The default config, overridden by ``[tool.repro-lint]`` if a
    ``pyproject.toml`` is found walking up from ``start`` (cwd default)."""
    config = LintConfig()
    here = (start or Path.cwd()).resolve()
    if here.is_file():
        here = here.parent
    for directory in (here, *here.parents):
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            try:
                data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
            except (OSError, tomllib.TOMLDecodeError):
                return config
            section = data.get("tool", {}).get("repro-lint", {})
            return apply_overrides(config, section)
    return config


def apply_overrides(config: LintConfig, overrides: dict[str, object]) -> LintConfig:
    """A copy of ``config`` with recognized override keys applied."""
    known = {f.name for f in fields(LintConfig)}
    updates: dict[str, object] = {}
    for key, value in overrides.items():
        name = key.replace("-", "_")
        if name in known:
            updates[name] = _coerce(value)
    return replace(config, **updates) if updates else config
