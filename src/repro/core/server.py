"""The CoCa edge server: global cache table, global updates, allocation.

The server maintains a two-dimensional global cache table whose rows are
classes and columns are the model's preset cache layers (Sec. IV-A).  Each
round it:

* answers cache-allocation requests by running ACA over the global class
  frequencies Phi and the client's status (tau, R, Pi) and extracting the
  selected sub-table (Sec. IV-B), and
* folds each client's uploaded update table into the global table by
  frequency-weighted averaging (Eq. 4) and accumulates class frequencies
  (Eq. 5) — the mechanism that mitigates non-IID drift (Sec. IV-D).

The initial table and the reference per-layer hit-ratio vector come from
the server's *global shared dataset*, exactly as in the paper.

Merging is vectorized: :meth:`CoCaServer.apply_client_update` folds the
whole uploaded table with one Eq. 4 scatter pass over the flat
``(class, layer)`` index (:meth:`GlobalCacheTable.merge_updates`);
:meth:`GlobalCacheTable.merge_update` remains the per-entry scalar
reference.  Calibration (:meth:`CoCaServer.measure_layer_statistics`,
:meth:`CoCaServer.measure_similarity_floors`) draws its shared-dataset
streams as blocks and its samples as one
:class:`~repro.models.feature.SampleBatch` — no per-sample Python
objects anywhere on the server.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro import contracts
from repro.core.allocation import AllocationResult, aca_allocate
from repro.core.cache import LookupWorkspace, SemanticCache
from repro.core.config import CoCaConfig
from repro.data.stream import StreamGenerator
from repro.models.base import SimulatedModel

if TYPE_CHECKING:
    from repro.store.format import SnapshotManifest

_EPS = 1e-12


def unpack_update_entries(
    update_entries: dict[tuple[int, int], np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split an uploaded update table into (class ids, layers, vectors).

    The one place that knows the wire representation of a client's cache
    update table; both the single-server merge
    (:meth:`CoCaServer.apply_client_update`) and the sharded write path
    (:meth:`repro.cluster.sharding.ShardedGlobalCache.apply_client_update`)
    unpack through it, so the two can never diverge.
    """
    keys = np.array(list(update_entries.keys()), dtype=int)
    vectors = np.stack(list(update_entries.values()))
    return keys[:, 0], keys[:, 1], vectors


def scatter_merge(
    entries_rows: np.ndarray,
    filled_rows: np.ndarray,
    rows: np.ndarray,
    global_freqs: np.ndarray,
    new: np.ndarray,
    freqs: np.ndarray,
    gamma: float,
) -> None:
    """The Eq. 4 scatter core over one 2-D row storage.

    Shared verbatim by the flat ``(class, layer)`` path of
    :meth:`GlobalCacheTable.merge_updates` (``entries_rows`` = the table
    reshaped to ``(I * L, d)``) and the per-layer path of
    :class:`~repro.store.mapped.MappedGlobalCacheTable` (``entries_rows``
    = one promoted ``(I, d)`` layer block) — every operation is
    element-wise per row, so splitting a batch by layer produces
    bit-identical entries.

    Args:
        entries_rows: ``(S, d)`` row storage scattered into, in place.
        filled_rows: ``(S,)`` bool fill flags (may be a strided view).
        rows: ``(k,)`` unique row indices of the update entries.
        global_freqs: ``(k,)`` Phi of each entry's class *before* Eq. 5.
        new: ``(k, d)`` uploaded centroid vectors.
        freqs: ``(k,)`` positive local frequencies.
        gamma: Eq. 4 decay of the old entry.
    """
    if contracts.ENABLED:
        contracts.check_merge_flat_indices(rows, entries_rows.shape[0])
    norms = np.sqrt(np.einsum("kd,kd->k", new, new))
    filled = filled_rows[rows]

    install = ~filled & (norms >= _EPS)
    if install.any():
        idx = rows[install]
        entries_rows[idx] = new[install] / norms[install, None]
        filled_rows[idx] = True

    if filled.any():
        idx = rows[filled]
        global_freq = global_freqs[filled]
        denom = global_freq + freqs[filled]
        old = entries_rows[idx]
        merged = (
            gamma * (global_freq / denom)[:, None] * old
            + (freqs[filled] / denom)[:, None] * new[filled]
        )
        merged_norms = np.sqrt(np.einsum("kd,kd->k", merged, merged))
        ok = merged_norms >= _EPS
        entries_rows[idx[ok]] = merged[ok] / merged_norms[ok, None]

    if contracts.ENABLED:
        touched = rows[filled_rows[rows]]
        contracts.check_merged_rows_normalized(entries_rows, touched)


class GlobalCacheTable:
    """The I x L table of per-(class, layer) semantic centroids.

    Args:
        num_classes: number of rows I.
        num_layers: number of columns L (preset cache layers).
        dim: dimensionality of the centroids.
    """

    def __init__(self, num_classes: int, num_layers: int, dim: int) -> None:
        if min(num_classes, num_layers, dim) < 1:
            raise ValueError("table dimensions must be positive")
        self.num_classes = num_classes
        self.num_layers = num_layers
        self.dim = dim
        self.entries = np.zeros((num_classes, num_layers, dim))
        self.filled = np.zeros((num_classes, num_layers), dtype=bool)
        self.class_freq = np.zeros(num_classes)  # Phi

    def layer_entries(self, layer: int) -> np.ndarray:
        """One layer's ``(I, d)`` centroid block (a view).

        The layout-agnostic accessor: callers that go through it (the
        snapshot writer, :meth:`subtable`) work unchanged on a
        memory-mapped table, which overrides this to hand out lazy
        shard views instead of slices of :attr:`entries`.
        """
        return self.entries[:, layer, :]

    def _writable_layer(self, layer: int) -> np.ndarray:
        """The mutable counterpart of :meth:`layer_entries` — the hook a
        copy-on-write subclass uses to promote a layer before a write."""
        return self.entries[:, layer, :]

    def install(self, class_id: int, layer: int, vector: np.ndarray) -> None:
        """Set an entry directly (initialization from the shared dataset)."""
        vec = np.asarray(vector, dtype=float)
        norm = np.linalg.norm(vec)
        if norm < _EPS:
            raise ValueError("cannot install a zero centroid")
        self._writable_layer(layer)[class_id] = vec / norm
        self.filled[class_id, layer] = True

    def merge_update(
        self,
        class_id: int,
        layer: int,
        update_vector: np.ndarray,
        local_freq: float,
        gamma: float,
    ) -> None:
        """Eq. 4: frequency-weighted merge of one client update entry."""
        if local_freq < 0:
            raise ValueError(f"local_freq must be >= 0, got {local_freq}")
        if local_freq == 0:
            return
        new = np.asarray(update_vector, dtype=float)
        if not self.filled[class_id, layer]:
            norm = np.linalg.norm(new)
            if norm >= _EPS:
                self.install(class_id, layer, new)
            return
        global_freq = self.class_freq[class_id]
        denom = global_freq + local_freq
        old = self.layer_entries(layer)[class_id]
        merged = (
            gamma * (global_freq / denom) * old + (local_freq / denom) * new
        )
        norm = np.linalg.norm(merged)
        if norm >= _EPS:
            self._writable_layer(layer)[class_id] = merged / norm

    def merge_updates(
        self,
        class_ids: np.ndarray,
        layers: np.ndarray,
        update_vectors: np.ndarray,
        local_freqs: np.ndarray,
        gamma: float,
    ) -> None:
        """Eq. 4 for a whole batch of ``(class, layer)`` entries at once.

        Entry-for-entry equivalent to calling :meth:`merge_update` per
        ``(class_ids[k], layers[k])`` — installs into unfilled slots,
        blends filled ones by frequency weight, skips zero-frequency and
        zero-norm updates — but executed as vectorized scatter updates on
        a flat ``(class, layer)`` index.  Keys must be unique (one update
        table never holds two entries for the same key).
        """
        prepared = self._prepare_merge(
            class_ids, layers, update_vectors, local_freqs
        )
        if prepared is None:
            return
        ids, lays, new, freqs = prepared
        flat = ids * self.num_layers + lays
        scatter_merge(
            self.entries.reshape(-1, self.dim),
            self.filled.reshape(-1),
            flat,
            self.class_freq[ids],
            new,
            freqs,
            gamma,
        )

    def _prepare_merge(
        self,
        class_ids: np.ndarray,
        layers: np.ndarray,
        update_vectors: np.ndarray,
        local_freqs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Validate one merge batch; returns the active entries or
        ``None`` when nothing is left to merge (shared by the flat-index
        and the per-layer copy-on-write merge paths)."""
        ids = np.asarray(class_ids, dtype=int)
        lays = np.asarray(layers, dtype=int)
        new = np.asarray(update_vectors, dtype=float)
        freqs = np.asarray(local_freqs, dtype=float)
        if (
            ids.ndim != 1
            or lays.shape != ids.shape
            or new.shape != (ids.size, self.dim)
            or freqs.shape != ids.shape
        ):
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, layers {lays.shape}, "
                f"vectors {new.shape}, freqs {freqs.shape}"
            )
        if ids.size == 0:
            return None
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError("class id out of range")
        if np.any(lays < 0) or np.any(lays >= self.num_layers):
            raise ValueError("layer out of range")
        flat = ids * self.num_layers + lays
        if np.unique(flat).size != flat.size:
            raise ValueError("duplicate (class, layer) keys in one update")
        if np.any(freqs < 0):
            raise ValueError("local_freq must be >= 0")
        active = freqs > 0
        ids, lays, new, freqs = (
            ids[active],
            lays[active],
            new[active],
            freqs[active],
        )
        if ids.size == 0:
            return None
        return ids, lays, new, freqs

    def add_frequencies(self, local_freq: np.ndarray) -> None:
        """Eq. 5: accumulate a client's round frequencies into Phi."""
        phi = np.asarray(local_freq, dtype=float)
        if phi.shape != (self.num_classes,):
            raise ValueError(
                f"frequency vector shape {phi.shape} != ({self.num_classes},)"
            )
        if np.any(phi < 0):
            raise ValueError("frequencies must be non-negative")
        self.class_freq += phi

    def copy(self) -> "GlobalCacheTable":
        """An independent deep copy (replica seeding, shard snapshots)."""
        table = GlobalCacheTable(self.num_classes, self.num_layers, self.dim)
        table.entries = self.entries.copy()
        table.filled = self.filled.copy()
        table.class_freq = self.class_freq.copy()
        return table

    def subtable(self, layer_classes: dict[int, np.ndarray]) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Extract (ids, centroids) per layer for an allocation result."""
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for layer, ids in layer_classes.items():
            mask = self.filled[ids, layer]
            usable = np.asarray(ids)[mask]
            if usable.size == 0:
                continue
            # Fancy-indexing the layer block yields a fresh array (and
            # faults in only these rows on a memory-mapped table).
            out[layer] = (usable, np.asarray(self.layer_entries(layer)[usable]))
        return out


class CoCaServer:
    """Edge server hosting the global cache and allocation service.

    Args:
        model: the deployed model (defines layers, sizes, feature space).
        config: CoCa hyper-parameters.
        freq_prior: virtual prior count per class seeding Phi, so that
            cold-start allocations are well defined.
    """

    def __init__(
        self,
        model: SimulatedModel,
        config: CoCaConfig,
        freq_prior: float = 50.0,
        drift_margin: float = 0.08,
    ) -> None:
        self.model = model
        self.config = config
        #: Expected *residual* client drift: the per-client component that
        #: global updates cannot learn (the shared component is absorbed
        #: into the global table).  The exit-loss estimate G perturbs the
        #: cache entries by this much so that layers which are only
        #: accurate for *pristine* centroids (typically the shallow ones,
        #: whose margins are smallest) are not declared SLO-safe.
        self.drift_margin = float(drift_margin)
        num_layers = model.num_cache_layers
        self.table = GlobalCacheTable(
            num_classes=model.num_classes,
            num_layers=num_layers,
            dim=model.feature_space.config.dim,
        )
        self.table.class_freq += freq_prior
        self.saved_time_ms = np.array(
            [model.profile.saved_if_hit_at(j) for j in range(num_layers)]
        )
        self.reference_hit_ratio = np.zeros(num_layers)
        self.reference_hit_accuracy = np.zeros(num_layers)
        self.reference_exit_loss = np.zeros(num_layers)
        #: Per-layer absolute similarity floors for cache hits, calibrated
        #: as a low quantile of correct fires' top cosines on the shared
        #: dataset (see SemanticCache.set_similarity_floor).
        self.reference_similarity_floor = np.full(num_layers, -1.0)
        self._entry_sizes = np.array(
            [model.profile.entry_size_bytes(j) for j in range(num_layers)]
        )
        #: Scratch buffers reused by every batched calibration pass.
        self.workspace = LookupWorkspace()

    # ------------------------------------------------------------------
    # Initialization from the global shared dataset
    # ------------------------------------------------------------------

    def initialize_from_shared_dataset(
        self, rng: np.random.Generator, calibration_samples: int = 600
    ) -> None:
        """Fill the global table and measure the reference hit ratios.

        The paper's server generates the initial cache from a global
        shared dataset and characterizes the per-layer hit behaviour
        empirically on it.  Our shared dataset is drift-free (client 0 of
        a dedicated drift-free sampler is not available, so we use the
        ideal centroids — the infinite-sample mean of shared-dataset
        features) and the hit-ratio calibration runs an all-layer cache
        over a uniform shared stream.
        """
        for layer in range(self.model.num_cache_layers):
            centroids = self.model.ideal_centroids(layer)
            for class_id in range(self.model.num_classes):
                self.table.install(class_id, layer, centroids[class_id])
        # Average two calibration passes (different random cached subsets)
        # so layer eligibility does not hinge on one subset draw.
        first = self.measure_layer_statistics(rng, num_samples=calibration_samples)
        second = self.measure_layer_statistics(rng, num_samples=calibration_samples)
        (
            self.reference_hit_ratio,
            self.reference_hit_accuracy,
            self.reference_exit_loss,
        ) = tuple((a + b) / 2.0 for a, b in zip(first, second))
        self.reference_similarity_floor = self.measure_similarity_floors(
            rng, num_samples=calibration_samples
        )

    def measure_layer_statistics(
        self,
        rng: np.random.Generator,
        num_samples: int = 600,
        cached_fraction: float = 0.9,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-layer cache statistics on the shared dataset.

        The measurement mirrors deployment conditions: only a random
        ``cached_fraction`` of the classes is cached (allocations are
        always partial sub-tables; the default matches the ~90% stream
        coverage hot-spot selection achieves in deployment), and entries
        are perturbed by the expected client drift.  A stream sample of an *uncached* class
        that still fires the threshold is an erroneous hit and counts
        against the layer's accuracy — the mechanism that makes shallow
        layers SLO-unsafe.

        Returns three vectors of length L:

        * **standalone hit ratio** — probability a *cached-class* sample
          would hit at layer ``j`` probed in isolation.  This is the
          semantics ACA's layer-benefit adjustment assumes: a sample
          hitting at layer ``b`` would also hit at any deeper layer, so
          standalone ratios grow with depth and ``R[j] -= R[b]`` leaves
          each deeper layer with the *extra* hits it catches.
        * **standalone hit accuracy** — fraction of all fires (cached or
          not) whose class is correct.
        * **exit loss** — accuracy the full model achieves *on the firing
          samples* minus the hit accuracy: the accuracy sacrificed by
          early-exiting at that layer.  This is the empirical estimate of
          the paper's per-client accuracy-loss function G(X, Theta) used
          to enforce the SLO constraint G <= Omega during allocation.
        """
        model = self.model
        num_layers = model.num_cache_layers
        num_classes = model.num_classes
        if not 0.0 < cached_fraction <= 1.0:
            raise ValueError(f"cached_fraction must be in (0, 1], got {cached_fraction}")
        num_cached = max(2, int(round(cached_fraction * num_classes)))
        cached = rng.choice(num_classes, size=num_cached, replace=False)

        perturb_rng = np.random.default_rng(rng.integers(2**32))
        centroids = []
        for layer in range(num_layers):
            base = model.ideal_centroids(layer)[cached]
            if self.drift_margin > 0:
                noise = perturb_rng.standard_normal(base.shape)
                noise /= np.linalg.norm(noise, axis=1, keepdims=True)
                base = base + self.drift_margin * noise
                base /= np.linalg.norm(base, axis=1, keepdims=True)
            centroids.append(base)
        stream = StreamGenerator(
            class_distribution=np.full(num_classes, 1.0 / num_classes),
            mean_run_length=model.dataset.mean_run_length,
            rng=rng,
            base_difficulty=model.dataset.difficulty,
            working_set_size=None,  # stable coverage of cached/uncached mix
        )
        theta = self.config.theta
        block = stream.take_block(num_samples)
        batch = model.draw_samples(block, 0, rng)
        class_ids = block.class_ids
        vectors = batch.vectors  # (N, L+1, d)
        predictions, _ = model.classify_vectors(batch.final_vectors())
        model_ok = predictions == class_ids
        is_cached = np.isin(class_ids, cached)
        num_cached_samples = int(is_cached.sum())

        # All layer similarities as one stacked matmul: (L, N, n_cached).
        similarity = np.einsum(
            "nld,lmd->lnm", vectors[:, :num_layers, :], np.stack(centroids)
        )
        fires = np.zeros(num_layers)
        cached_hits = np.zeros(num_layers)
        correct = np.zeros(num_layers)
        model_correct_on_hitters = np.zeros(num_layers)
        workspace = self.workspace
        score = np.empty(num_samples)
        for layer in range(num_layers):
            # Top-2 and Eq. 2 scoring through the shared workspace (the
            # BatchedLookupSession kernel's buffers): mask the winner,
            # find the runner-up, restore — no per-layer temporaries.
            best_idx, _, best, second = workspace.top2(similarity[layer])
            workspace.scores_into(best, second, score)
            fire = (score > theta) & (best > 0)
            fires[layer] = fire.sum()
            cached_hits[layer] = (fire & is_cached).sum()
            predicted = cached[best_idx]
            correct[layer] = (fire & (predicted == class_ids)).sum()
            model_correct_on_hitters[layer] = (fire & model_ok).sum()
        ratio = cached_hits / max(1, num_cached_samples)
        accuracy = np.divide(correct, fires, out=np.zeros(num_layers), where=fires > 0)
        model_acc = np.divide(
            model_correct_on_hitters, fires, out=np.zeros(num_layers), where=fires > 0
        )
        exit_loss = np.maximum(0.0, model_acc - accuracy)
        return ratio, accuracy, exit_loss

    def measure_similarity_floors(
        self,
        rng: np.random.Generator,
        num_samples: int = 600,
        quantile: float = 0.03,
        margin: float = 0.01,
    ) -> np.ndarray:
        """Per-layer absolute similarity floors for cache hits.

        For each layer, draw shared-dataset samples of *cached* classes
        and record the cosine between the sample and its own class
        centroid; the floor is a low quantile of that distribution minus a
        small margin.  True hits clear the floor essentially always, while
        a sample of an uncached class — whose best cosine is to some
        *other* class's centroid — falls below it, because an entry of the
        wrong class can never be as close as the sample's own centroid.
        """
        model = self.model
        num_layers = model.num_cache_layers
        centroids = np.stack(
            [model.ideal_centroids(layer) for layer in range(num_layers)]
        )  # (L, I, d)
        stream = StreamGenerator(
            class_distribution=np.full(
                model.num_classes, 1.0 / model.num_classes
            ),
            mean_run_length=model.dataset.mean_run_length,
            rng=rng,
            base_difficulty=model.dataset.difficulty,
            working_set_size=None,
        )
        block = stream.take_block(num_samples)
        batch = model.draw_samples(block, 0, rng)
        # Floors gate *confident* hits, so calibrate on the easy
        # majority (hard samples would not hit their own class anyway).
        keep = batch.confusion_weights <= 0.4
        floors = np.full(num_layers, -1.0)
        if not keep.any():
            return floors
        class_ids = block.class_ids[keep]
        vectors = batch.vectors[keep]  # (K, L+1, d)
        # own_sims[k, l] = centroid(class of k, layer l) . vector(k, layer l)
        own_sims = np.einsum(
            "lkd,kld->kl", centroids[:, class_ids, :], vectors[:, :num_layers, :]
        )
        floors = np.quantile(own_sims, quantile, axis=0) - margin
        return floors

    def eligible_layers(self, accuracy_loss_budget: float | None = None) -> np.ndarray:
        """Cache layers whose early-exit accuracy loss fits the SLO budget.

        Implements the formulation's constraint ``G(X, Theta) <= Omega``
        via the shared-dataset estimate: layer ``j`` may be allocated only
        when exiting there costs at most ``Omega`` accuracy on the samples
        it captures.
        """
        omega = (
            self.config.accuracy_loss_budget
            if accuracy_loss_budget is None
            else accuracy_loss_budget
        )
        # A layer that almost never fired during calibration provides no
        # evidence of safety (its measured exit loss is ~0 by vacuity), so
        # require a minimum observed hit ratio before declaring it safe.
        evidence = self.reference_hit_ratio >= 0.02
        mask = (self.reference_exit_loss <= omega) & evidence
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    # Protocol services
    # ------------------------------------------------------------------

    def allocate(
        self,
        timestamps: np.ndarray,
        hit_ratio: np.ndarray,
        budget_bytes: int,
        local_freq: np.ndarray | None = None,
    ) -> tuple[SemanticCache, AllocationResult]:
        """Serve one cache-allocation request (Sec. IV-B)."""
        result = aca_allocate(
            global_freq=self.table.class_freq,
            timestamps=timestamps,
            hit_ratio=hit_ratio,
            saved_time_ms=self.saved_time_ms,
            entry_sizes_bytes=self._entry_sizes,
            budget_bytes=budget_bytes,
            frames_per_round=self.config.frames_per_round,
            hotspot_mass=self.config.hotspot_mass,
            recency_base=self.config.recency_base,
            available_classes=self.table.filled,
            allowed_layers=self.eligible_layers(),
            local_freq=local_freq,
            lookup_cost_ms=self.model.profile.lookup_cost_ms,
        )
        cache = self.build_cache(result.layer_classes)
        return cache, result

    def build_cache(self, layer_classes: dict[int, np.ndarray]) -> SemanticCache:
        """Materialize a client cache from a layer -> classes mapping.

        The cache follows the config's serving policy: centroids stored
        in ``config.lookup_dtype``; when ``config.prune_threshold`` is
        set, A-LSH candidate indexes on every layer large enough to
        benefit from shortlisted probes; when ``config.quantize_threshold``
        is set, an int8 quantized tier (two-tier coarse-then-rescore
        probes) on every layer past that size; and the config's
        ``probe_threads`` worker budget for the blocked dense kernel.
        """
        cache = SemanticCache(
            self.model.num_classes,
            alpha=self.config.alpha,
            theta=self.config.theta,
            dtype=self.config.cache_dtype,
            prune_threshold=self.config.prune_threshold,
            quantize_threshold=self.config.quantize_threshold,
            coarse_margin=self.config.coarse_margin,
            probe_threads=self.config.probe_threads,
        )
        for layer, (ids, centroids) in self.table.subtable(layer_classes).items():
            cache.set_layer_entries(layer, ids, centroids)
            floor = float(self.reference_similarity_floor[layer])
            if floor > -1.0:
                cache.set_similarity_floor(layer, floor)
        return cache

    def apply_client_update(
        self,
        update_entries: dict[tuple[int, int], np.ndarray],
        local_freq: np.ndarray,
    ) -> None:
        """Global updates: one vectorized Eq. 4 pass, then Eq. 5.

        The whole uploaded table is merged with a single
        :meth:`GlobalCacheTable.merge_updates` scatter pass over the flat
        ``(class, layer)`` index; entry-for-entry equivalent to
        :meth:`apply_client_update_reference` (entries of one upload are
        independent — Phi only accumulates afterwards).
        """
        gamma = self.config.gamma
        local_freq = np.asarray(local_freq, dtype=float)
        if update_entries:
            ids, layers, vectors = unpack_update_entries(update_entries)
            self.table.merge_updates(ids, layers, vectors, local_freq[ids], gamma)
        self.table.add_frequencies(local_freq)

    def apply_client_update_reference(
        self,
        update_entries: dict[tuple[int, int], np.ndarray],
        local_freq: np.ndarray,
    ) -> None:
        """Per-entry scalar reference of :meth:`apply_client_update`."""
        gamma = self.config.gamma
        for (class_id, layer), vector in update_entries.items():
            self.table.merge_update(
                class_id, layer, vector, float(local_freq[class_id]), gamma
            )
        self.table.add_frequencies(local_freq)

    def cache_size_limit_bytes(self, fraction: float | None = None) -> int:
        """Pi as a fraction of the full-table size (default from config)."""
        frac = self.config.cache_budget_fraction if fraction is None else fraction
        full = self.model.num_classes * int(self._entry_sizes.sum())
        return max(1, int(frac * full))

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def replicate(self) -> "CoCaServer":
        """A new server sharing this one's model but owning copied state.

        The replica holds an independent deep copy of the global table and
        of every calibrated reference vector (hit ratios, exit losses,
        similarity floors), so it allocates and merges exactly like the
        original without rerunning shared-dataset calibration.  Cluster
        nodes are built this way: one canonical server initializes once,
        then each :class:`~repro.cluster.node.EdgeServerNode` serves from
        a replica that the coordinator refreshes from the shards.
        """
        replica = CoCaServer(
            self.model,
            self.config,
            freq_prior=0.0,
            drift_margin=self.drift_margin,
        )
        replica.table = self.table.copy()
        replica.reference_hit_ratio = self.reference_hit_ratio.copy()
        replica.reference_hit_accuracy = self.reference_hit_accuracy.copy()
        replica.reference_exit_loss = self.reference_exit_loss.copy()
        replica.reference_similarity_floor = self.reference_similarity_floor.copy()
        return replica

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_table(self, path: str | Path) -> None:
        """Persist the global cache table (entries, fill mask, Phi) to
        ``path`` as a compressed npz archive.

        Lets a server restart warm, or ship a trained global cache to a
        new deployment of the same model geometry.
        """
        np.savez_compressed(
            path,
            entries=self.table.entries,
            filled=self.table.filled,
            class_freq=self.table.class_freq,
            reference_hit_ratio=self.reference_hit_ratio,
            reference_hit_accuracy=self.reference_hit_accuracy,
            reference_exit_loss=self.reference_exit_loss,
            reference_similarity_floor=self.reference_similarity_floor,
        )

    def save_snapshot(
        self,
        path: str | Path,
        epoch: int | None = None,
        layers_per_shard: int = 8,
    ) -> "SnapshotManifest":
        """Persist the table as a mmap-ready snapshot directory.

        The sharded counterpart of :meth:`save_table`: a JSON manifest
        plus per-layer-block ``.npy`` shards (see :mod:`repro.store`),
        carrying the calibrated reference vectors in the snapshot's meta
        arrays.  Restores warm in O(ms) through
        ``load_table(path, mode="mmap")``.  Returns the written manifest.
        """
        from repro.store.writer import write_snapshot

        return write_snapshot(
            path,
            self.table,
            references={
                "reference_hit_ratio": self.reference_hit_ratio,
                "reference_hit_accuracy": self.reference_hit_accuracy,
                "reference_exit_loss": self.reference_exit_loss,
                "reference_similarity_floor": self.reference_similarity_floor,
            },
            epoch=epoch,
            layers_per_shard=layers_per_shard,
        )

    def load_table(self, path: str | Path, mode: str = "ram") -> None:
        """Restore a global cache table from either persistence format.

        The format is auto-detected: a directory with a snapshot
        manifest loads through :mod:`repro.store`; anything else is a
        legacy :meth:`save_table` npz archive.  Every array is validated
        against this server's model geometry (class count, layer count,
        feature dim) and expected dtype before any state is mutated, so
        a mismatched archive can never corrupt the server halfway
        through a load.

        Args:
            path: snapshot directory or npz archive.
            mode: ``"ram"`` materializes the table eagerly (the legacy
                behaviour, and the only mode npz archives support);
                ``"mmap"`` maps snapshot shards read-only in O(ms) —
                centroid bytes are faulted in on first use and a layer
                is promoted to a RAM copy only when first written
                (:class:`~repro.store.mapped.MappedGlobalCacheTable`).

        Raises:
            ValueError: naming the offending array when anything is
                missing or mismatched, or when ``mode="mmap"`` is asked
                of an npz archive.
        """
        if mode not in ("ram", "mmap"):
            raise ValueError(f'mode must be "ram" or "mmap", got {mode!r}')
        from repro.store.format import is_snapshot_path

        if is_snapshot_path(path):
            self._load_snapshot(Path(path), mode)
            return
        if mode == "mmap":
            raise ValueError(
                "mode='mmap' needs a snapshot-store directory; convert "
                "the npz archive first (repro store convert)"
            )
        num_layers = self.model.num_cache_layers
        expected: dict[str, tuple[tuple[int, ...], type]] = {
            "entries": (self.table.entries.shape, np.floating),
            "filled": (self.table.filled.shape, np.bool_),
            "class_freq": (self.table.class_freq.shape, np.floating),
            "reference_hit_ratio": ((num_layers,), np.floating),
            "reference_hit_accuracy": ((num_layers,), np.floating),
            "reference_exit_loss": ((num_layers,), np.floating),
        }
        # np.load on an npz holds the zip member file open; the context
        # manager closes it even when validation rejects the archive.
        with np.load(path) as archive:
            has_floor = "reference_similarity_floor" in archive
            if has_floor:
                expected["reference_similarity_floor"] = (
                    (num_layers,),
                    np.floating,
                )
            validated: dict[str, np.ndarray] = {}
            for key, (shape, kind) in expected.items():
                if key not in archive:
                    raise ValueError(f"archive is missing array {key!r}")
                array = archive[key]
                if array.shape != shape:
                    raise ValueError(
                        f"archive array {key!r} has shape {array.shape}, "
                        f"expected {shape}"
                    )
                if not np.issubdtype(array.dtype, kind):
                    raise ValueError(
                        f"archive array {key!r} has dtype {array.dtype}, "
                        f"expected {np.dtype(kind) if kind is np.bool_ else 'floating'}"
                    )
                validated[key] = array
        # A fresh table rather than in-place mutation: the previous table
        # may be a mapped one whose storage must not be written through.
        table = GlobalCacheTable(
            self.table.num_classes, self.table.num_layers, self.table.dim
        )
        table.entries = validated["entries"]
        table.filled = validated["filled"]
        table.class_freq = validated["class_freq"]
        self.table = table
        self.reference_hit_ratio = validated["reference_hit_ratio"]
        self.reference_hit_accuracy = validated["reference_hit_accuracy"]
        self.reference_exit_loss = validated["reference_exit_loss"]
        if has_floor:
            self.reference_similarity_floor = validated["reference_similarity_floor"]

    def _load_snapshot(self, path: Path, mode: str) -> None:
        """Load a :mod:`repro.store` snapshot directory (both modes)."""
        from repro.store.reader import MappedTableStore

        store = MappedTableStore(path)
        manifest = store.manifest
        num_layers = self.model.num_cache_layers
        expected_geometry = (
            self.model.num_classes,
            num_layers,
            self.model.feature_space.config.dim,
        )
        actual = (manifest.num_classes, manifest.num_layers, manifest.dim)
        if actual != expected_geometry:
            raise ValueError(
                f"snapshot geometry {actual} does not match the model's "
                f"{expected_geometry}"
            )
        if contracts.ENABLED:
            contracts.check_snapshot_manifest(
                layout_version=manifest.layout_version,
                epoch=manifest.epoch,
                geometry=actual,
                expected_geometry=expected_geometry,
                checksums={},
                recomputed={},
            )
        references = store.references()
        for name, vector in references.items():
            if vector.shape != (num_layers,):
                raise ValueError(
                    f"snapshot reference array {name!r} has shape "
                    f"{vector.shape}, expected ({num_layers},)"
                )
        if mode == "ram":
            self.table = store.as_table()
            store.close()
        else:
            self.table = store.as_mapped_table()
        self.reference_hit_ratio = references.get(
            "reference_hit_ratio", np.zeros(num_layers)
        )
        self.reference_hit_accuracy = references.get(
            "reference_hit_accuracy", np.zeros(num_layers)
        )
        self.reference_exit_loss = references.get(
            "reference_exit_loss", np.zeros(num_layers)
        )
        self.reference_similarity_floor = references.get(
            "reference_similarity_floor", np.full(num_layers, -1.0)
        )
