"""Round-based orchestration of the CoCa client-server protocol.

One framework round follows Fig. 3 of the paper, per client:

1. the client uploads status (tau, R, Pi) and requests a cache;
2. the server runs ACA over the global state — optimizing expected
   latency against the model profile's own lookup-cost model — and
   returns the sub-table;
3. the client runs ``F`` inferences with the cache through the batched
   round pipeline (block frame generation, one vectorized sample draw and
   inference pass, grouped Eq. 3 collection — outcome-identical to the
   per-frame scalar loop), collecting status and its update table;
4. the server merges the update table into the global cache with one
   vectorized Eq. 4 scatter pass (Eq. 5 for frequencies).

``run_round(reference=True)`` executes the same protocol on the scalar
per-frame reference path instead, for equivalence testing and the
round-pipeline benchmark.

The two core mechanisms can be disabled independently for the Fig. 9
ablation: with ``enable_dca=False`` allocation is *static* (computed once
from the shared-dataset reference statistics, with all classes as
hot-spots); with ``enable_gcu=False`` step 4 is skipped so the global
table keeps its initial shared-dataset centroids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import AllocationResult
from repro.core.cache import LookupWorkspace
from repro.core.client import CoCaClient, RoundReport
from repro.core.config import CoCaConfig
from repro.core.server import CoCaServer
from repro.data.datasets import DatasetSpec
from repro.data.partition import apply_longtail, dirichlet_partition
from repro.data.stream import StreamGenerator
from repro.models.base import SimulatedModel
from repro.models.zoo import build_model
from repro.sim.metrics import MetricsCollector, MetricsSummary


@dataclass
class RoundSummary:
    """Per-round aggregate diagnostics."""

    round_index: int
    avg_latency_ms: float
    accuracy: float
    hit_ratio: float
    absorbed_hits: int
    absorbed_misses: int


@dataclass
class FrameworkResult:
    """Outcome of a multi-round CoCa run."""

    metrics: MetricsCollector
    rounds: list[RoundSummary]
    server: CoCaServer
    clients: list[CoCaClient]
    reports: list[RoundReport] = field(default_factory=list)

    def summary(self) -> MetricsSummary:
        return self.metrics.summary()


class CoCaFramework:
    """Builds and drives a complete multi-client CoCa deployment.

    Args:
        model: a pre-built :class:`SimulatedModel`, or ``None`` to build
            ``model_name`` against ``dataset``.
        model_name / dataset: used when ``model`` is ``None``.
        num_clients: number of participating edge clients.
        config: CoCa hyper-parameters.
        seed: master seed; every stochastic component derives from it.
        non_iid_level: the paper's ``p`` (0 = IID).
        longtail_rho: imbalance ratio (1 = uniform).
        enable_dca: dynamic cache allocation (ablation switch).
        enable_gcu: global cache updates (ablation switch).
        budget_fraction: per-client Pi as a fraction of the full table
            (``None`` = config default).
    """

    def __init__(
        self,
        dataset: DatasetSpec,
        model_name: str = "resnet101",
        model: SimulatedModel | None = None,
        num_clients: int = 10,
        config: CoCaConfig | None = None,
        seed: int = 0,
        non_iid_level: float = 0.0,
        longtail_rho: float = 1.0,
        enable_dca: bool = True,
        enable_gcu: bool = True,
        budget_fraction: float | None = None,
        client_drift_scale: float | None = None,
        participation_rate: float = 1.0,
        temporal_drift_per_round: float = 0.0,
    ) -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if not 0.0 < participation_rate <= 1.0:
            raise ValueError(
                f"participation_rate must be in (0, 1], got {participation_rate}"
            )
        if temporal_drift_per_round < 0:
            raise ValueError("temporal_drift_per_round must be >= 0")
        self.config = config if config is not None else CoCaConfig()
        self.enable_dca = enable_dca
        self.enable_gcu = enable_gcu
        self.participation_rate = participation_rate
        self.temporal_drift_per_round = temporal_drift_per_round
        root = np.random.SeedSequence(seed)
        geometry_seed, partition_seed, server_seed, *client_seeds = root.spawn(
            3 + num_clients
        )

        if model is None:
            model = build_model(
                model_name,
                dataset,
                num_clients=num_clients,
                seed=int(geometry_seed.generate_state(1)[0]),
                client_drift_scale=client_drift_scale,
            )
        self.model = model

        partition_rng = np.random.default_rng(partition_seed)
        distributions = dirichlet_partition(
            model.num_classes, num_clients, non_iid_level, partition_rng
        )
        if longtail_rho > 1.0:
            distributions = np.stack(
                [
                    apply_longtail(dist, longtail_rho, partition_rng)
                    for dist in distributions
                ]
            )
        #: Per-client class distributions, ``(num_clients, num_classes)``
        #: (read by the cluster driver's region-affinity assignment).
        self.distributions = distributions

        self.server = CoCaServer(model, self.config)
        self.server.initialize_from_shared_dataset(np.random.default_rng(server_seed))

        budget = self.server.cache_size_limit_bytes(budget_fraction)
        #: One probe-buffer pool for the whole deployment: rounds run
        #: clients sequentially, so every engine can share it — probe
        #: scratch memory stays constant in the client count.
        self.workspace = LookupWorkspace()
        self.clients: list[CoCaClient] = []
        for k in range(num_clients):
            rng = np.random.default_rng(client_seeds[k])
            stream = StreamGenerator(
                class_distribution=distributions[k],
                mean_run_length=dataset.mean_run_length,
                rng=rng,
                base_difficulty=dataset.difficulty,
            )
            client = CoCaClient(
                client_id=k,
                model=model,
                stream=stream,
                config=self.config,
                rng=rng,
                cache_budget_bytes=budget,
                workspace=self.workspace,
            )
            client.seed_hit_ratio(self.server.reference_hit_ratio)
            self.clients.append(client)

        self._static_allocation: AllocationResult | None = None
        if not enable_dca:
            self._static_allocation = self._build_static_allocation(budget)
        self._protocol_rng = np.random.default_rng(
            np.random.SeedSequence(seed).spawn(1)[0].generate_state(1)[0] + 17
        )

    def _build_static_allocation(self, budget_bytes: int) -> AllocationResult:
        """Fixed allocation for the no-DCA ablation (the paper's "Normal"):
        the model's preset cache as-is — every class cached at every
        preset layer, no budget-driven selection.  This is the Fig. 1a
        "100% cache size" configuration that dynamic allocation improves
        on by pruning lookup-heavy layers and cold classes."""
        del budget_bytes  # the fixed configuration ignores the budget
        num_classes = self.model.num_classes
        all_classes = np.arange(num_classes)
        layer_classes = {
            layer: all_classes.copy()
            for layer in range(self.model.num_cache_layers)
        }
        size = num_classes * sum(
            self.model.profile.entry_size_bytes(j)
            for j in range(self.model.num_cache_layers)
        )
        return AllocationResult(
            layer_classes=layer_classes,
            hotspot_classes=all_classes,
            size_bytes=size,
            scores=np.ones(num_classes),
        )

    @property
    def static_allocation(self) -> AllocationResult | None:
        """The fixed allocation used when DCA is disabled (else ``None``)."""
        return self._static_allocation

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_round(
        self,
        round_index: int = 0,
        *,
        reference: bool = False,
        timings: dict[str, float] | None = None,
    ) -> list[RoundReport]:
        """Execute one full protocol round.

        With ``participation_rate < 1``, each client independently joins
        the round with that probability (at least one always joins);
        offline clients keep their previous cache and upload nothing —
        the dropout robustness the client-server design affords.  With
        ``temporal_drift_per_round > 0`` the feature environment evolves
        before the round (Sec. IV-A's "contextual feature changes").

        With ``reference=True`` the round runs on the per-frame scalar
        path instead (:meth:`CoCaClient.run_round_reference` and the
        per-entry Eq. 4 merge) — the seed implementation, kept for the
        equivalence suite and the round-pipeline benchmark.

        ``timings`` (vectorized path only) accumulates wall-clock stage
        seconds — ``allocate`` / ``sample-gen`` / ``probe`` / ``model``
        / ``collect`` / ``merge`` — for the ``repro profile-round``
        breakdown.
        """
        if self.temporal_drift_per_round > 0:
            self.model.feature_space.evolve_drift(
                self.temporal_drift_per_round, self._protocol_rng
            )
        if self.participation_rate < 1.0:
            joining = [
                client
                for client in self.clients
                if self._protocol_rng.random() < self.participation_rate
            ]
            if not joining:
                joining = [
                    self.clients[
                        int(self._protocol_rng.integers(len(self.clients)))
                    ]
                ]
        else:
            joining = self.clients

        reports: list[RoundReport] = []
        for client in joining:
            status = client.status()
            start = time.perf_counter() if timings is not None else 0.0
            if self.enable_dca:
                cache, _ = self.server.allocate(
                    status.timestamps,
                    status.hit_ratio,
                    status.cache_budget_bytes,
                    local_freq=status.frequencies,
                )
            else:
                assert self._static_allocation is not None
                cache = self.server.build_cache(self._static_allocation.layer_classes)
            if timings is not None:
                timings["allocate"] = (
                    timings.get("allocate", 0.0) + time.perf_counter() - start
                )
            client.install_cache(cache)
            if reference:
                report = client.run_round_reference()
            elif timings is not None:
                report = client.run_round(timings=timings)
            else:
                report = client.run_round()
            reports.append(report)
        # Global updates happen after all clients finish the round.
        if self.enable_gcu:
            start = time.perf_counter() if timings is not None else 0.0
            for report in reports:
                if reference:
                    self.server.apply_client_update_reference(
                        report.update_entries, report.frequencies
                    )
                else:
                    self.server.apply_client_update(
                        report.update_entries, report.frequencies
                    )
            if timings is not None:
                timings["merge"] = (
                    timings.get("merge", 0.0) + time.perf_counter() - start
                )
        else:
            # Frequencies still accumulate (they are bookkeeping, not cache
            # content); only the semantic entries stay frozen.
            for report in reports:
                self.server.table.add_frequencies(report.frequencies)
        return reports

    def run(self, num_rounds: int, warmup_rounds: int = 0) -> FrameworkResult:
        """Run the protocol and aggregate metrics.

        Args:
            num_rounds: measured protocol rounds.
            warmup_rounds: extra leading rounds excluded from metrics
                (lets caches adapt before measuring steady state).
        """
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        metrics = MetricsCollector()
        rounds: list[RoundSummary] = []
        all_reports: list[RoundReport] = []
        for r in range(warmup_rounds + num_rounds):
            reports = self.run_round(r)
            if r < warmup_rounds:
                continue
            round_metrics = MetricsCollector()
            absorbed_hits = absorbed_misses = 0
            for report in reports:
                round_metrics.extend(report.records)
                metrics.extend(report.records)
                absorbed_hits += report.absorbed_hits
                absorbed_misses += report.absorbed_misses
            all_reports.extend(reports)
            summary = round_metrics.summary()
            rounds.append(
                RoundSummary(
                    round_index=r,
                    avg_latency_ms=summary.avg_latency_ms,
                    accuracy=summary.accuracy,
                    hit_ratio=summary.hit_ratio,
                    absorbed_hits=absorbed_hits,
                    absorbed_misses=absorbed_misses,
                )
            )
        return FrameworkResult(
            metrics=metrics,
            rounds=rounds,
            server=self.server,
            clients=self.clients,
            reports=all_reports,
        )

    def close(self) -> None:
        """Release probe resources: every engine workspace and the shared pool.

        Engines pointed at the shared framework workspace close it
        idempotently; engines re-pointed elsewhere (the cluster driver
        pools them per node) close their own.
        """
        for client in self.clients:
            client.batch_engine.close()
        self.workspace.close()
