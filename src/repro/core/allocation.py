"""The Adaptive Cache Allocation (ACA) algorithm — Algorithm 1.

ACA allocates cache entries for one client in two stages:

1. **Hot-spot class selection** — every class gets a score combining its
   global frequency with the client's recency (Eq. 10):

       s[i] = Phi[i] * recency_base ** floor(tau[i] / F)

   Classes are taken in descending score order until their cumulative
   score reaches ``hotspot_mass`` (0.95) of the total.

2. **Greedy layer selection** — each cache layer's expected benefit
   combines its expected hit ratio ``R[j]`` with the compute time saved
   by a hit there, ``Upsilon[j]``; ACA repeatedly adds the layer with the
   largest remaining benefit under the hypothesis that a sample hitting
   at layer ``b`` would also hit at any later layer (Alg. 1 lines 11-21),
   stopping just before the allocated size would exceed the budget Pi.

   We implement the *expected-latency* reading of that greedy: the
   standalone hit-ratio curve ``R`` (monotone in depth) induces a
   distribution over each sample's shallowest hittable layer, a sample
   exits at its first *activated* hittable layer, and each step adds the
   affordable layer that lowers the expected inference time (compute +
   lookups) the most.  When layers happen to be picked in depth order
   this coincides exactly with the paper's ``R[j] -= R[b]`` discount
   rule; unlike the literal rule it does not double-discount deep
   backstop layers when a shallower layer is picked after a deeper one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.models.profiles import LookupCostModel


@dataclass(frozen=True)
class AllocationResult:
    """Output of ACA for one client.

    Attributes:
        layer_classes: mapping of selected cache layer -> class ids to
            fill it with (the indicator matrix X in sparse form).
        hotspot_classes: the stage-1 hot-spot class set, in score order.
        size_bytes: total size of the allocated entries.
        scores: the Eq. 10 class scores (diagnostics; ``None`` when the
            result was built without them).
    """

    layer_classes: dict[int, np.ndarray]
    hotspot_classes: np.ndarray
    size_bytes: int
    scores: np.ndarray | None = field(repr=False, default=None)

    @property
    def selected_layers(self) -> list[int]:
        return sorted(self.layer_classes)

    @property
    def total_entries(self) -> int:
        return sum(ids.size for ids in self.layer_classes.values())


def class_scores(
    global_freq: np.ndarray,
    timestamps: np.ndarray,
    frames_per_round: int,
    recency_base: float = 0.20,
    local_freq: np.ndarray | None = None,
    local_weight: float = 0.5,
) -> np.ndarray:
    """Eq. 10 hot-spot scores: frequency discounted by staleness.

    The frequency term blends the *global* class frequencies Phi with the
    requesting client's own recent distribution (the "current data class
    distribution" each client uploads at round start, Sec. IV-A/IV-B).
    Both are normalized before mixing so a class that dominates one
    client's stream stays cacheable even when globally rare — exactly the
    non-IID situation the personalized allocation exists for.
    """
    phi = np.asarray(global_freq, dtype=float)
    tau = np.asarray(timestamps, dtype=float)
    if phi.shape != tau.shape:
        raise ValueError(f"shape mismatch: freq {phi.shape}, tau {tau.shape}")
    if frames_per_round < 1:
        raise ValueError(f"frames_per_round must be >= 1, got {frames_per_round}")
    if not 0.0 < recency_base < 1.0:
        raise ValueError(f"recency_base must be in (0, 1), got {recency_base}")
    if not 0.0 <= local_weight <= 1.0:
        raise ValueError(f"local_weight must be in [0, 1], got {local_weight}")

    total = phi.sum()
    frequency = phi / total if total > 0 else phi
    if local_freq is not None:
        local = np.asarray(local_freq, dtype=float)
        if local.shape != phi.shape:
            raise ValueError(
                f"shape mismatch: local freq {local.shape}, global {phi.shape}"
            )
        local_total = local.sum()
        if local_total > 0:
            frequency = (
                1.0 - local_weight
            ) * frequency + local_weight * local / local_total
    staleness = np.floor(tau / frames_per_round)
    return frequency * np.power(recency_base, staleness)


def select_hotspot_classes(scores: np.ndarray, mass: float = 0.95) -> np.ndarray:
    """Stage 1: smallest score-ordered prefix covering ``mass`` of the total.

    With an all-zero score vector (cold start, nothing observed) every
    class is equally likely, so all classes are returned.
    """
    s = np.asarray(scores, dtype=float)
    if np.any(s < 0):
        raise ValueError("scores must be non-negative")
    if not 0.0 < mass <= 1.0:
        raise ValueError(f"mass must be in (0, 1], got {mass}")
    total = s.sum()
    if total <= 0:
        return np.arange(s.size)
    order = np.argsort(-s, kind="stable")
    cumulative = np.cumsum(s[order])
    cutoff = int(np.searchsorted(cumulative, mass * total, side="left"))
    return order[: cutoff + 1]


def aca_allocate(
    global_freq: np.ndarray,
    timestamps: np.ndarray,
    hit_ratio: np.ndarray,
    saved_time_ms: np.ndarray,
    entry_sizes_bytes: np.ndarray,
    budget_bytes: int,
    frames_per_round: int,
    hotspot_mass: float = 0.95,
    recency_base: float = 0.20,
    available_classes: np.ndarray | None = None,
    allowed_layers: np.ndarray | None = None,
    local_freq: np.ndarray | None = None,
    local_weight: float = 0.5,
    lookup_cost_ms: Callable[[int], float] | None = None,
) -> AllocationResult:
    """Run Algorithm 1 for one client.

    Args:
        global_freq: Phi, global per-class frequencies (server state).
        timestamps: tau^k, the client's per-class staleness vector.
        hit_ratio: R^k, expected marginal hit ratio per cache layer.
        saved_time_ms: Upsilon, compute time saved by a hit at each layer.
        entry_sizes_bytes: per-layer size of one cache entry (m[., j]).
        budget_bytes: the client's cache-size threshold Pi.
        frames_per_round: F, used by the recency discount.
        hotspot_mass: stage-1 cumulative score fraction (paper: 0.95).
        recency_base: Eq. 10 discount base (paper: 0.20).
        available_classes: optional boolean matrix (num_classes, num_layers)
            marking which global-cache entries exist; missing entries are
            skipped when filling a layer.
        allowed_layers: optional subset of layer indices allocation may
            use; layers outside it are excluded up front.  This is how the
            server enforces the accuracy-loss constraint G <= Omega
            (layers whose early exits are too inaccurate are ineligible).
        local_freq: the client's own recent class distribution (uploaded
            with its status); blended into the Eq. 10 frequency term.
        local_weight: blend weight of the local distribution.
        lookup_cost_ms: per-layer lookup-cost function ``num_entries ->
            ms`` the expected-latency greedy optimizes against.  Servers
            pass their model profile's ``lookup_cost_ms`` so allocation
            uses the *actual* deployment cost; the default falls back to
            the generic :class:`~repro.models.profiles.LookupCostModel`
            calibration.

    Returns:
        An :class:`AllocationResult`; ``layer_classes`` may be empty when
        even one layer of hot-spot entries exceeds the budget.
    """
    R = np.asarray(hit_ratio, dtype=float).copy()
    upsilon = np.asarray(saved_time_ms, dtype=float)
    sizes = np.asarray(entry_sizes_bytes, dtype=float)
    num_layers = R.size
    if upsilon.shape != (num_layers,) or sizes.shape != (num_layers,):
        raise ValueError("hit_ratio, saved_time_ms, entry_sizes_bytes lengths differ")
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")

    scores = class_scores(
        global_freq,
        timestamps,
        frames_per_round,
        recency_base,
        local_freq=local_freq,
        local_weight=local_weight,
    )
    hotspot = select_hotspot_classes(scores, hotspot_mass)

    layer_classes: dict[int, np.ndarray] = {}
    if allowed_layers is None:
        remaining = set(range(num_layers))
    else:
        remaining = {int(j) for j in allowed_layers}
        if not remaining.issubset(range(num_layers)):
            raise ValueError("allowed_layers contains out-of-range indices")
    used_bytes = 0

    # Hits propagate deeper, so the standalone curve must be monotone;
    # measurement noise is smoothed out by a running maximum.
    R_monotone = np.maximum.accumulate(np.clip(R, 0.0, 1.0))
    # Compute-cost prefix: executing blocks 0..j (saved_time[j] is the
    # compute skipped by exiting at j, so prefix = total - saved).
    total_compute = float(upsilon.max()) if upsilon.size else 0.0
    # Upsilon[0] is the largest saving; the true total compute also
    # includes the blocks before layer 0, but constants cancel in the
    # greedy comparison, so prefix_cost[j] = -upsilon[j] works up to a
    # shared offset.
    prefix_cost = -upsilon

    def fill_for(layer: int) -> np.ndarray:
        if available_classes is not None:
            return hotspot[available_classes[hotspot, layer]]
        return hotspot

    lookup_cost = LookupCostModel() if lookup_cost_ms is None else lookup_cost_ms

    def expected_cost(picked: list[int]) -> float:
        """Expected per-inference cost (up to a constant) for a layer set."""
        if not picked:
            return total_compute  # full execution for everyone (offset-free)
        ordered = sorted(picked)
        cost = 0.0
        lookups_so_far = 0.0
        prev_mass = 0.0
        for layer in ordered:
            lookups_so_far += lookup_cost(fill_for(layer).size)
            mass = R_monotone[layer] - prev_mass
            prev_mass = R_monotone[layer]
            cost += mass * (total_compute + prefix_cost[layer] + lookups_so_far)
        cost += (1.0 - prev_mass) * (total_compute + lookups_so_far)
        return cost

    current_cost = expected_cost([])
    while remaining:
        best_layer = None
        best_cost = current_cost
        best_added = 0
        for j in sorted(remaining):
            fill = fill_for(j)
            if fill.size == 0:
                continue
            added = int(sizes[j]) * int(fill.size)
            if used_bytes + added > budget_bytes:
                continue
            candidate_cost = expected_cost(list(layer_classes) + [j])
            if candidate_cost < best_cost - 1e-12:
                best_cost = candidate_cost
                best_layer = j
                best_added = added
        if best_layer is None:
            break
        layer_classes[best_layer] = fill_for(best_layer).copy()
        used_bytes += best_added
        current_cost = best_cost
        remaining.discard(best_layer)

    return AllocationResult(
        layer_classes=layer_classes,
        hotspot_classes=hotspot,
        size_bytes=used_bytes,
        scores=scores,
    )
