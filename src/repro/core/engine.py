"""Cache-instrumented inference over the simulated model.

The engine executes the paper's client-side inference loop: run blocks in
order; after each block whose cache layer is activated, extract the
semantic vector, probe the cache (charging the lookup cost), and terminate
early on a hit.  On a miss everywhere, run to the end and use the model
classifier.  All latency is the sum of executed block compute times plus
the lookup costs of the probed layers — exactly Eq. 7's cost structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache import LayerProbe, SemanticCache
from repro.models.base import SimulatedModel
from repro.models.feature import SampleFeatures


@dataclass(frozen=True)
class InferenceOutcome:
    """Everything observable from one cached inference.

    Attributes:
        predicted_class: class returned to the application.
        hit_layer: cache layer that hit, or ``None`` on full execution.
        latency_ms: compute + lookup latency of this inference.
        probes: per-layer lookup outcomes, in probe order.
        hit_score: Eq. 2 score at the hit layer (``None`` on miss) — used
            by the Gamma collection rule.
        top2_prob_gap: gap between the two largest softmax probabilities of
            the full model (``None`` unless the model ran to completion) —
            used by the Delta collection rule.
    """

    predicted_class: int
    hit_layer: int | None
    latency_ms: float
    probes: tuple[LayerProbe, ...] = field(default_factory=tuple)
    hit_score: float | None = None
    top2_prob_gap: float | None = None

    @property
    def hit(self) -> bool:
        return self.hit_layer is not None


class CachedInferenceEngine:
    """Runs samples through a model with an optional semantic cache.

    Args:
        model: the simulated model substrate.
        cache: the client's current :class:`SemanticCache`, or ``None``
            for pure Edge-Only execution.
    """

    def __init__(self, model: SimulatedModel, cache: SemanticCache | None = None) -> None:
        self.model = model
        self.cache = cache

    def set_cache(self, cache: SemanticCache | None) -> None:
        """Swap in a newly allocated cache (start of a CoCa round)."""
        self.cache = cache

    def infer(self, sample: SampleFeatures) -> InferenceOutcome:
        """Run one sample, returning prediction and charged latency."""
        profile = self.model.profile
        if self.cache is None or not self.cache.active_layers:
            predicted, probs = self.model.classify(sample)
            probs_sorted = sorted(probs, reverse=True)
            gap = float(probs_sorted[0] - probs_sorted[1]) if len(probs_sorted) > 1 else 1.0
            return InferenceOutcome(
                predicted_class=predicted,
                hit_layer=None,
                latency_ms=profile.total_compute_ms,
                top2_prob_gap=gap,
            )

        session = self.cache.start_session()
        probes: list[LayerProbe] = []
        lookup_ms = 0.0
        for layer in self.cache.active_layers:
            num_entries = self.cache.num_entries(layer)
            lookup_ms += profile.lookup_cost_ms(num_entries)
            probe = session.probe(layer, sample.vector(layer))
            probes.append(probe)
            if probe.hit:
                latency = profile.compute_up_to_layer_ms(layer) + lookup_ms
                return InferenceOutcome(
                    predicted_class=probe.top_class,
                    hit_layer=layer,
                    latency_ms=latency,
                    probes=tuple(probes),
                    hit_score=probe.score,
                )

        predicted, probs = self.model.classify(sample)
        probs_sorted = sorted(probs, reverse=True)
        gap = float(probs_sorted[0] - probs_sorted[1]) if len(probs_sorted) > 1 else 1.0
        return InferenceOutcome(
            predicted_class=predicted,
            hit_layer=None,
            latency_ms=profile.total_compute_ms + lookup_ms,
            probes=tuple(probes),
            top2_prob_gap=gap,
        )
