"""Cache-instrumented inference over the simulated model.

The engine executes the paper's client-side inference loop: run blocks in
order; after each block whose cache layer is activated, extract the
semantic vector, probe the cache (charging the lookup cost), and terminate
early on a hit.  On a miss everywhere, run to the end and use the model
classifier.  All latency is the sum of executed block compute times plus
the lookup costs of the probed layers — exactly Eq. 7's cost structure.
Lookup costs come from the model profile's
:class:`~repro.models.profiles.LookupCostModel` — the same definition
ACA optimizes against during allocation.

Two engines share the semantics: :class:`CachedInferenceEngine` runs one
sample at a time (the reference scalar path), and
:class:`BatchedInferenceEngine` runs a whole round of frames as NumPy
batch operations — per activated layer, one matmul over all
still-unresolved samples with early-exit masking — producing outcomes
identical to the scalar engine at a fraction of the interpreter cost.
The batched engine accepts a :class:`~repro.models.feature.SampleBatch`
directly (no per-sample re-packing) and offers two result shapes:
:meth:`BatchedInferenceEngine.infer_batch` builds one
:class:`InferenceOutcome` per sample (probe records included), while
:meth:`BatchedInferenceEngine.infer_batch_soa` returns a
:class:`BatchOutcomes` structure of arrays — the round pipeline's hot
path, which never materializes per-sample objects.
"""

from __future__ import annotations

import time
from typing import NamedTuple, Sequence

import numpy as np

from repro.core.cache import LayerProbe, LookupWorkspace, SemanticCache
from repro.core.probe import walk_cache_batch
from repro.models.base import SimulatedModel
from repro.models.feature import SampleBatch, SampleFeatures


def _top2_prob_gap(probs: np.ndarray) -> float:
    """Gap between the two largest entries of a probability vector."""
    if probs.size < 2:
        return 1.0
    top2 = np.partition(probs, probs.size - 2)[-2:]
    return float(top2[1] - top2[0])


def _batch_vectors(samples: SampleBatch | Sequence[SampleFeatures]) -> np.ndarray:
    """The ``(B, L+1, d)`` vector tensor of a batch, stacking only when
    given loose per-sample objects."""
    if isinstance(samples, SampleBatch):
        return samples.vectors
    return np.stack([s.vector_matrix() for s in samples])


class InferenceOutcome(NamedTuple):
    """Everything observable from one cached inference.

    A ``NamedTuple`` rather than a dataclass: one outcome is built per
    inference on the hot path, where tuple construction is several times
    cheaper than frozen-dataclass field assignment.

    Attributes:
        predicted_class: class returned to the application.
        hit_layer: cache layer that hit, or ``None`` on full execution.
        latency_ms: compute + lookup latency of this inference.
        probes: per-layer lookup outcomes, in probe order.
        hit_score: Eq. 2 score at the hit layer (``None`` on miss) — used
            by the Gamma collection rule.
        top2_prob_gap: gap between the two largest softmax probabilities of
            the full model (``None`` unless the model ran to completion) —
            used by the Delta collection rule.
    """

    predicted_class: int
    hit_layer: int | None
    latency_ms: float
    probes: tuple[LayerProbe, ...] = ()
    hit_score: float | None = None
    top2_prob_gap: float | None = None

    @property
    def hit(self) -> bool:
        return self.hit_layer is not None


class CachedInferenceEngine:
    """Runs samples through a model with an optional semantic cache.

    Args:
        model: the simulated model substrate.
        cache: the client's current :class:`SemanticCache`, or ``None``
            for pure Edge-Only execution.
    """

    def __init__(self, model: SimulatedModel, cache: SemanticCache | None = None) -> None:
        self.model = model
        self.cache = cache

    def set_cache(self, cache: SemanticCache | None) -> None:
        """Swap in a newly allocated cache (start of a CoCa round)."""
        self.cache = cache

    def infer(self, sample: SampleFeatures) -> InferenceOutcome:
        """Run one sample, returning prediction and charged latency."""
        profile = self.model.profile
        if self.cache is None or not self.cache.active_layers:
            predicted, probs = self.model.classify(sample)
            gap = _top2_prob_gap(probs)
            return InferenceOutcome(
                predicted_class=predicted,
                hit_layer=None,
                latency_ms=profile.total_compute_ms,
                top2_prob_gap=gap,
            )

        session = self.cache.start_session()
        accelerated = self.cache.shortlist_layers()
        if accelerated:
            deepest = accelerated[-1]
            session.prime_shortlist(deepest, sample.vector(deepest))
        probes: list[LayerProbe] = []
        lookup_ms = 0.0
        for layer in self.cache.active_layers:
            num_entries = self.cache.num_entries(layer)
            lookup_ms += profile.lookup_cost_ms(num_entries)
            probe = session.probe(layer, sample.vector(layer))
            probes.append(probe)
            if probe.hit:
                latency = profile.compute_up_to_layer_ms(layer) + lookup_ms
                return InferenceOutcome(
                    predicted_class=probe.top_class,
                    hit_layer=layer,
                    latency_ms=latency,
                    probes=tuple(probes),
                    hit_score=probe.score,
                )

        predicted, probs = self.model.classify(sample)
        gap = _top2_prob_gap(probs)
        return InferenceOutcome(
            predicted_class=predicted,
            hit_layer=None,
            latency_ms=profile.total_compute_ms + lookup_ms,
            probes=tuple(probes),
            top2_prob_gap=gap,
        )


class BatchOutcomes(NamedTuple):
    """Structure-of-arrays outcomes of one batched inference pass.

    The array counterpart of a ``list[InferenceOutcome]`` for consumers
    that post-process outcomes with vectorized arithmetic (the round
    pipeline): no per-sample objects, no per-layer probe records.

    Ownership: arrays returned by
    :meth:`BatchedInferenceEngine.infer_batch_soa` are views into the
    engine's :class:`~repro.core.cache.LookupWorkspace` pools — valid
    until the next ``infer_batch``/``infer_batch_soa`` call on any
    engine sharing that workspace.  The round pipeline consumes each
    batch's outcomes before the next inference call by construction;
    ``.copy()`` individual arrays to retain them longer.

    Attributes:
        predicted_class: ``(B,)`` int — class returned per sample.
        hit_layer: ``(B,)`` int — cache layer that hit, ``-1`` on full
            execution.
        latency_ms: ``(B,)`` float — compute + lookup latency per sample.
        hit_score: ``(B,)`` float — Eq. 2 score at the hit layer,
            ``np.nan`` for samples that missed everywhere.
        top2_prob_gap: ``(B,)`` float — top-2 softmax gap of the full
            model, ``np.nan`` unless the model ran to completion.
    """

    predicted_class: np.ndarray
    hit_layer: np.ndarray
    latency_ms: np.ndarray
    hit_score: np.ndarray
    top2_prob_gap: np.ndarray

    @property
    def hit(self) -> np.ndarray:
        """Boolean hit mask, ``(B,)``."""
        return self.hit_layer >= 0


class BatchedInferenceEngine:
    """Vectorized counterpart of :class:`CachedInferenceEngine`.

    Runs a whole batch of samples through the cache-instrumented loop at
    once: per activated layer, a single matmul scores every
    still-unresolved sample against the layer's entries, Eq. 1/2 are
    applied vectorized, and samples that hit are masked out of deeper
    layers.  Samples that miss everywhere are classified by one batched
    final-layer product.  Outcomes (predictions, hit layers, latencies,
    probe records) are identical to calling ``infer`` per sample.

    Args:
        model: the simulated model substrate.
        cache: the client's current :class:`SemanticCache`, or ``None``
            for pure Edge-Only execution.
        workspace: reusable probe buffers; pass a shared
            :class:`~repro.core.cache.LookupWorkspace` (e.g. one per
            cluster node) to pool scratch memory across engines, or let
            the engine own a private one.  Buffers persist across
            batches and rounds, so steady-state probes allocate nothing
            proportional to ``batch x n_entries``.
    """

    def __init__(
        self,
        model: SimulatedModel,
        cache: SemanticCache | None = None,
        workspace: LookupWorkspace | None = None,
    ) -> None:
        self.model = model
        self.cache = cache
        self.workspace = workspace if workspace is not None else LookupWorkspace()

    def set_cache(self, cache: SemanticCache | None) -> None:
        """Swap in a newly allocated cache (start of a CoCa round)."""
        self.cache = cache

    def set_workspace(self, workspace: LookupWorkspace) -> None:
        """Re-point the engine at a shared workspace (cluster pooling)."""
        self.workspace = workspace

    def close(self) -> None:
        """Release the engine's workspace (probe threads + buffer pools).

        Safe on shared workspaces —
        :meth:`~repro.core.cache.LookupWorkspace.close` is idempotent —
        so every engine pointing at a pooled cluster workspace may call
        this on teardown.
        """
        self.workspace.close()

    def infer_batch(
        self, samples: SampleBatch | Sequence[SampleFeatures]
    ) -> list[InferenceOutcome]:
        """Run a batch of samples, returning one outcome per sample in order.

        Accepts a :class:`SampleBatch` (its vector tensor is consumed
        directly) or any sequence of :class:`SampleFeatures`.
        """
        if not len(samples):
            return []
        profile = self.model.profile
        cache = self.cache
        batch = len(samples)
        vectors = _batch_vectors(samples)  # (B, L+1, d)
        final = self.model.feature_space.final_layer

        if cache is None or not cache.active_layers:
            predictions, gaps = self.model.classify_vectors(vectors[:, final, :])
            total = profile.total_compute_ms
            return [
                InferenceOutcome(
                    predicted_class=predicted,
                    hit_layer=None,
                    latency_ms=total,
                    top2_prob_gap=gap,
                )
                for predicted, gap in zip(predictions.tolist(), gaps.tolist())
            ]

        session = cache.start_batch_session(batch, workspace=self.workspace)
        if vectors.dtype == cache.dtype:
            probe_vectors = vectors
        else:
            probe_vectors = vectors.astype(cache.dtype, copy=False)
        accelerated = cache.shortlist_layers()
        if accelerated:
            deepest = accelerated[-1]
            session.prime_shortlist(deepest, probe_vectors[:, deepest, :])
        dim = probe_vectors.shape[-1]
        outcomes: list[InferenceOutcome | None] = [None] * batch
        probes: list[list[LayerProbe]] = [[] for _ in range(batch)]
        lookup_ms = self.workspace.floats("engine.lookup_ms", (batch,), np.float64)
        lookup_ms.fill(0.0)
        alive = self.workspace.arange(batch)
        for layer in cache.active_layers:
            lookup_ms[alive] += profile.lookup_cost_ms(cache.num_entries(layer))
            gathered = self.workspace.floats(
                "engine.take", (alive.size, dim), cache.dtype
            )
            np.take(probe_vectors[:, layer, :], alive, axis=0, out=gathered)
            result = session.probe(layer, gathered, rows=alive)
            # Bulk-convert once: per-element numpy scalar indexing would
            # dominate the whole batch pass.
            rows = alive.tolist()
            tops = result.top_class.tolist()
            seconds = result.second_class.tolist()
            scores = result.score.tolist()
            hits = result.hit.tolist()
            for row, top, second, score, hit in zip(rows, tops, seconds, scores, hits):
                probes[row].append(LayerProbe(layer, top, second, score, hit))
            if result.hit.any():
                compute_prefix = profile.compute_up_to_layer_ms(layer)
                costs = lookup_ms[alive].tolist()
                for i, row in enumerate(rows):
                    if hits[i]:
                        outcomes[row] = InferenceOutcome(
                            predicted_class=tops[i],
                            hit_layer=layer,
                            latency_ms=compute_prefix + costs[i],
                            probes=tuple(probes[row]),
                            hit_score=scores[i],
                        )
                alive = alive[~result.hit]
                if alive.size == 0:
                    break

        if alive.size:
            predictions, gaps = self.model.classify_vectors(vectors[alive, final, :])
            total = profile.total_compute_ms
            costs = lookup_ms[alive].tolist()
            preds = predictions.tolist()
            gap_list = gaps.tolist()
            for i, row in enumerate(alive.tolist()):
                outcomes[row] = InferenceOutcome(
                    predicted_class=preds[i],
                    hit_layer=None,
                    latency_ms=total + costs[i],
                    probes=tuple(probes[row]),
                    top2_prob_gap=gap_list[i],
                )
        return outcomes  # type: ignore[return-value]

    def infer_batch_soa(
        self,
        samples: SampleBatch | Sequence[SampleFeatures],
        timings: dict[str, float] | None = None,
    ) -> BatchOutcomes:
        """Run a batch, returning :class:`BatchOutcomes` arrays.

        Same early-exit semantics and per-sample results as
        :meth:`infer_batch` (and therefore as the scalar engine), but the
        outcomes stay as whole-batch arrays: nothing per-sample is
        constructed, which is what keeps a full protocol round
        array-at-a-time end to end.  The probe math itself is the shared
        :func:`~repro.core.probe.walk_cache_batch` walk (the same pure
        kernel the serving workers run); this method layers the profile's
        latency accounting and the full-model miss classification on top
        of the walk's hit layers.

        Args:
            samples: the batch to run.
            timings: optional accumulator for wall-clock stage seconds
                (keys ``"probe"`` — cache lookups including gathers —
                and ``"model"`` — final-layer classification, plus the
                probe sub-stages ``"probe-shortlist"`` / ``"probe-rescore"``
                when the session's kernels record a split); used by the
                ``repro profile-round`` CLI breakdown.
        """
        profile = self.model.profile
        cache = self.cache
        batch = len(samples)
        # Outcome arrays live in the engine workspace pools (explicit
        # dtypes, no per-call float64 allocations); see the BatchOutcomes
        # docstring for the resulting view lifetime.
        ws = self.workspace
        latency = ws.floats("engine.latency", (batch,), np.float64)
        top2_gap = ws.floats("engine.top2_gap", (batch,), np.float64)
        latency.fill(0.0)
        top2_gap.fill(np.nan)

        if batch == 0 or cache is None or not cache.active_layers:
            predicted = ws.ints("engine.predicted", (batch,))
            hit_layer = ws.ints("engine.hit_layer", (batch,))
            hit_score = ws.floats("engine.hit_score", (batch,), np.float64)
            predicted.fill(0)
            hit_layer.fill(-1)
            hit_score.fill(np.nan)
            if batch == 0:
                return BatchOutcomes(
                    predicted, hit_layer, latency, hit_score, top2_gap
                )
            vectors = _batch_vectors(samples)  # (B, L+1, d)
            final = self.model.feature_space.final_layer
            start = time.perf_counter() if timings is not None else 0.0
            predictions, gaps = self.model.classify_vectors(vectors[:, final, :])
            if timings is not None:
                timings["model"] = (
                    timings.get("model", 0.0) + time.perf_counter() - start
                )
            predicted[:] = predictions
            latency[:] = profile.total_compute_ms
            top2_gap[:] = gaps
            return BatchOutcomes(predicted, hit_layer, latency, hit_score, top2_gap)

        vectors = _batch_vectors(samples)  # (B, L+1, d)
        final = self.model.feature_space.final_layer

        # Pure probe math: the shared cache walk (identical kernels and
        # early-exit semantics to the scalar engine and the serving path).
        start = time.perf_counter() if timings is not None else 0.0
        session_split: dict[str, float] | None = (
            {} if timings is not None else None
        )
        walk = walk_cache_batch(cache, vectors, ws, timings=session_split)
        if timings is not None:
            timings["probe"] = (
                timings.get("probe", 0.0) + time.perf_counter() - start
            )
            # Session-level probe split (the coarse/LSH shortlist pass
            # vs exact scoring) for the profile-round breakdown.
            assert session_split is not None
            for stage, seconds in session_split.items():
                key = f"probe-{stage}"
                timings[key] = timings.get(key, 0.0) + seconds

        # Orchestration: Eq. 7 latency accounting on top of the walk.  A
        # row that probed k layers paid the lookup cost of the first k
        # activated layers; a hit at layer j additionally executed the
        # model only up to j.
        active = cache.active_layers
        cum_lookup = ws.floats(
            "engine.cum_lookup", (len(active) + 1,), np.float64
        )
        cum_lookup[0] = 0.0
        for k, layer in enumerate(active):
            cum_lookup[k + 1] = cum_lookup[k] + profile.lookup_cost_ms(
                cache.num_entries(layer)
            )
        np.take(cum_lookup, walk.layers_probed, out=latency)

        hit_rows = np.flatnonzero(walk.hit)
        if hit_rows.size:
            prefix_ms = ws.floats(
                "engine.prefix_ms", (len(active),), np.float64
            )
            for k, layer in enumerate(active):
                prefix_ms[k] = profile.compute_up_to_layer_ms(layer)
            # The hit layer of a row that probed k layers is active[k-1].
            latency[hit_rows] += prefix_ms[walk.layers_probed[hit_rows] - 1]

        miss_rows = np.flatnonzero(~walk.hit)
        if miss_rows.size:
            start = time.perf_counter() if timings is not None else 0.0
            predictions, gaps = self.model.classify_vectors(
                vectors[miss_rows, final, :]
            )
            if timings is not None:
                timings["model"] = (
                    timings.get("model", 0.0) + time.perf_counter() - start
                )
            walk.predicted[miss_rows] = predictions
            latency[miss_rows] += profile.total_compute_ms
            top2_gap[miss_rows] = gaps
        return BatchOutcomes(
            walk.predicted, walk.hit_layer, latency, walk.hit_score, top2_gap
        )
