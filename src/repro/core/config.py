"""CoCa hyper-parameters with the paper's defaults.

All symbols follow the paper: alpha is the cross-layer similarity decay of
Eq. 1, beta the update-table decay of Eq. 3, gamma the global-cache decay of
Eq. 4, theta the cache-hit threshold of Eq. 2, Gamma / Delta the
sample-collection thresholds of Sec. IV-C, F the round length, and the
hot-spot mass / recency base parameterize the class scoring of Eq. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class CoCaConfig:
    """Hyper-parameters of the CoCa framework.

    Attributes:
        alpha: decay of previous-layer accumulated similarity in Eq. 1
            (paper default 0.5).
        beta: decay attenuating older samples in the client's cache update
            table, Eq. 3 (paper default 0.95).
        gamma: decay of the old global-cache entry in Eq. 4 (paper
            default 0.99).
        theta: discriminative-score threshold for a cache hit (Eq. 2);
            model- and SLO-dependent, see Sec. VI-D.
        collect_gamma: threshold Gamma — a cache-hit sample reinforces the
            cache only when its discriminative score exceeds this.
        collect_delta: threshold Delta — a cache-miss sample expands the
            cache only when its top-2 probability gap exceeds this.
        frames_per_round: F, the number of inferences between cache
            allocation requests / global updates (paper default 300).
        hotspot_mass: cumulative score fraction selecting hot-spot classes
            (paper: 0.95, following SMTM).
        recency_base: base of the recency discount in Eq. 10 (paper: 0.20).
        cache_budget_fraction: client cache-size threshold Pi expressed as
            a fraction of the full global-table size for the task; the
            paper's motivation study (Fig. 1a) finds ~10% optimal.
        accuracy_loss_budget: SLO accuracy-loss constraint Omega (used by
            threshold selection helpers, not enforced per-inference).
        lookup_dtype: storage/compute precision of client caches built by
            the server — ``"float32"`` (default serving mode: scores
            carry ~1e-6 relative rounding against decision margins of
            ~1e-2, at twice the matmul throughput) or ``"float64"`` (the
            bit-exact mode the scalar/batch equivalence suites run on).
        prune_threshold: entry count at which a cache layer gains an
            A-LSH candidate index and probes switch to the shortlist
            kernel (``None`` = always probe the dense exact kernel).
        quantize_threshold: entry count at which a cache layer
            additionally stores int8-quantized centroids and probes
            switch to the two-tier kernel — a coarse quantized pass
            picks re-score candidates, then the exact float kernel
            scores only those columns (``None`` = no quantized tier).
        coarse_margin: empirical slack added to the provable coarse
            candidate margin of the two-tier kernel; larger keeps more
            candidates (safer against cross-layer rank drift, slower).
        probe_threads: worker count of the thread-blocked probe kernel
            (1 = single-threaded execution, the default).
    """

    alpha: float = 0.5
    beta: float = 0.95
    gamma: float = 0.99
    theta: float = 0.062
    collect_gamma: float = 0.10
    collect_delta: float = 0.25
    frames_per_round: int = 300
    hotspot_mass: float = 0.95
    recency_base: float = 0.20
    cache_budget_fraction: float = 0.10
    accuracy_loss_budget: float = 0.03
    lookup_dtype: str = "float32"
    prune_threshold: int | None = None
    quantize_threshold: int | None = None
    coarse_margin: float = 0.05
    probe_threads: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {self.beta}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")
        if self.frames_per_round < 1:
            raise ValueError(
                f"frames_per_round must be >= 1, got {self.frames_per_round}"
            )
        if not 0.0 < self.hotspot_mass <= 1.0:
            raise ValueError(f"hotspot_mass must be in (0, 1], got {self.hotspot_mass}")
        if not 0.0 < self.recency_base < 1.0:
            raise ValueError(f"recency_base must be in (0, 1), got {self.recency_base}")
        if not 0.0 < self.cache_budget_fraction <= 1.0:
            raise ValueError(
                f"cache_budget_fraction must be in (0, 1], got "
                f"{self.cache_budget_fraction}"
            )
        if self.lookup_dtype not in ("float32", "float64"):
            raise ValueError(
                f'lookup_dtype must be "float32" or "float64", '
                f"got {self.lookup_dtype!r}"
            )
        if self.prune_threshold is not None and self.prune_threshold < 2:
            raise ValueError(
                f"prune_threshold must be >= 2, got {self.prune_threshold}"
            )
        if self.quantize_threshold is not None and self.quantize_threshold < 2:
            raise ValueError(
                f"quantize_threshold must be >= 2, got {self.quantize_threshold}"
            )
        if self.coarse_margin < 0:
            raise ValueError(
                f"coarse_margin must be >= 0, got {self.coarse_margin}"
            )
        if self.probe_threads < 1:
            raise ValueError(
                f"probe_threads must be >= 1, got {self.probe_threads}"
            )

    @property
    def cache_dtype(self) -> np.dtype:
        """The :attr:`lookup_dtype` as a NumPy dtype."""
        return np.dtype(self.lookup_dtype)

    def with_theta(self, theta: float) -> "CoCaConfig":
        """A copy with a different hit threshold (SLO tuning)."""
        return replace(self, theta=theta)

    def with_budget_fraction(self, fraction: float) -> "CoCaConfig":
        """A copy with a different client cache-size budget."""
        return replace(self, cache_budget_fraction=fraction)


@dataclass(frozen=True)
class StoreConfig:
    """Snapshot-store and delta-sync tuning knobs.

    Attributes:
        layers_per_shard: cache layers per on-disk shard file.  Smaller
            shards map (and promote) at finer granularity; larger shards
            mean fewer files.  The default of 8 keeps even the deepest
            preset (resnet152, 51 cache layers) at 7 shard files.
        delta_fallback_fraction: dirty-row fraction of a shard above
            which cross-shard sync ships the full-snapshot fallback
            instead of a row delta — past this point a delta's per-row
            id overhead stops paying for itself.
    """

    layers_per_shard: int = 8
    delta_fallback_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.layers_per_shard < 1:
            raise ValueError(
                f"layers_per_shard must be >= 1, got {self.layers_per_shard}"
            )
        if not 0.0 < self.delta_fallback_fraction <= 1.0:
            raise ValueError(
                f"delta_fallback_fraction must be in (0, 1], got "
                f"{self.delta_fallback_fraction}"
            )


#: Thresholds recommended by this reproduction's own Sec. VI-D-style
#: calibration, keyed by (model name, accuracy-loss budget).  The absolute
#: scale of theta depends on the feature calibration, so the values differ
#: from the paper's (see EXPERIMENTS.md); the *relationships* mirror the
#: paper: tighter SLOs need a higher theta, and models with more cache
#: layers need a higher theta because per-layer false positives compound
#: over more sequential probes.
RECOMMENDED_THETA: dict[tuple[str, float], float] = {
    ("vgg16_bn", 0.03): 0.045,
    ("vgg16_bn", 0.05): 0.035,
    ("resnet50", 0.03): 0.050,
    ("resnet50", 0.05): 0.040,
    ("resnet101", 0.03): 0.050,
    ("resnet101", 0.05): 0.040,
    ("resnet152", 0.03): 0.090,
    ("resnet152", 0.05): 0.070,
    ("ast_base", 0.03): 0.045,
    ("ast_base", 0.05): 0.035,
}


def recommended_theta(model_name: str, accuracy_loss_budget: float = 0.03) -> float:
    """Hit threshold recommended for a model under an accuracy-loss SLO."""
    key = model_name.lower()
    if not any(key == name for name, _ in RECOMMENDED_THETA):
        raise KeyError(f"no recommended theta for model {model_name!r}")
    budget = 0.03 if accuracy_loss_budget <= 0.03 else 0.05
    return RECOMMENDED_THETA[(key, budget)]
