"""Pure batched cache-walk: probe math with no model, profile or clock.

The cache-instrumented inference loop has two halves.  The *probe
math* — prime the shortlist from the deepest accelerated layer, score
each activated layer against the still-unresolved rows, apply Eq. 1/2,
mask out rows that hit — needs only a :class:`SemanticCache` and the
query vectors.  The *orchestration* around it — charging profile
latencies, classifying misses with the simulated model, collecting
training pairs — needs the whole client stack.

:func:`walk_cache_batch` is the first half on its own.  The batched
engine builds its latency accounting on top of it (hit layers determine
the charged compute prefix and the lookup-cost sum), and the serving
workers of :mod:`repro.serve` call it directly: a worker process
rebuilds a view-backed cache from a snapshot path and walks it — no
model object, no pickled tables, nothing but the mapped centroid bytes.

For rows that miss every layer the walk still reports the deepest
layer's top class as ``miss_guess``: the best answer the cache alone
can give.  The engine ignores it (misses run the full model); a serving
worker returns it as the cache-served approximate prediction.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.cache import LookupWorkspace, SemanticCache


class CacheWalk(NamedTuple):
    """Outcome arrays of one batched cache walk.

    All arrays are ``(B,)`` views into the workspace pools — valid until
    the next walk on the same workspace; ``.copy()`` to retain longer.

    Attributes:
        predicted: top class per row — the hit layer's winner for rows
            that hit, the deepest probed layer's winner (``miss_guess``)
            for rows that missed everywhere, ``-1`` if nothing was
            probed at all (cache with no active layers).
        hit_layer: cache layer that hit, ``-1`` on miss.
        hit_score: Eq. 2 score at the hit layer, ``np.nan`` on miss.
        layers_probed: number of activated layers each row probed
            (early exit stops the count at the hit layer).
    """

    predicted: np.ndarray
    hit_layer: np.ndarray
    hit_score: np.ndarray
    layers_probed: np.ndarray

    @property
    def hit(self) -> np.ndarray:
        """Boolean hit mask, ``(B,)``."""
        hit_mask: np.ndarray = self.hit_layer >= 0
        return hit_mask


def walk_cache_batch(
    cache: SemanticCache,
    vectors: np.ndarray,
    workspace: LookupWorkspace,
    timings: dict[str, float] | None = None,
) -> CacheWalk:
    """Probe every activated cache layer over a batch, with early exit.

    Args:
        vectors: ``(B, L+1, d)`` per-layer query tensor; row index along
            axis 1 is the model layer id, matching the cache's layer
            indexing.  Cast to the cache dtype at most once.
        workspace: probe buffer pool; the returned arrays live in it.
        timings: optional accumulator for the session's probe-kernel
            split (keys ``"shortlist"`` / ``"rescore"``), matching the
            :class:`~repro.core.cache.BatchedLookupSession` convention.

    Returns:
        A :class:`CacheWalk` with one entry per batch row, identical to
        what the scalar ``LookupSession`` would produce row by row.
    """
    if vectors.ndim != 3:
        raise ValueError(
            f"expected a (B, L+1, d) vector tensor, got shape {vectors.shape}"
        )
    batch = vectors.shape[0]
    predicted = workspace.ints("walk.predicted", (batch,))
    hit_layer = workspace.ints("walk.hit_layer", (batch,))
    hit_score = workspace.floats("walk.hit_score", (batch,), np.float64)
    layers_probed = workspace.ints("walk.layers_probed", (batch,))
    predicted.fill(-1)
    hit_layer.fill(-1)
    hit_score.fill(np.nan)
    layers_probed.fill(0)
    if batch == 0 or not cache.active_layers:
        return CacheWalk(predicted, hit_layer, hit_score, layers_probed)

    session = cache.start_batch_session(batch, workspace=workspace)
    if timings is not None:
        session.timings = timings
    if vectors.dtype == cache.dtype:
        probe_vectors = vectors
    else:
        probe_vectors = vectors.astype(cache.dtype, copy=False)
    accelerated = cache.shortlist_layers()
    if accelerated:
        deepest = accelerated[-1]
        session.prime_shortlist(deepest, probe_vectors[:, deepest, :])
    dim = probe_vectors.shape[-1]
    alive = workspace.arange(batch)
    for layer in cache.active_layers:
        layers_probed[alive] += 1
        gathered = workspace.floats("walk.take", (alive.size, dim), cache.dtype)
        np.take(probe_vectors[:, layer, :], alive, axis=0, out=gathered)
        result = session.probe(layer, gathered, rows=alive)
        # Record the current winner for every still-alive row: rows that
        # hit keep it as the final prediction, rows that go on miss-ing
        # end up with the deepest layer's guess.
        predicted[alive] = result.top_class
        if result.hit.any():
            hitters = alive[result.hit]
            hit_layer[hitters] = layer
            hit_score[hitters] = result.score[result.hit]
            alive = alive[~result.hit]
            if alive.size == 0:
                break
    return CacheWalk(predicted, hit_layer, hit_score, layers_probed)
