"""The CoCa client: cached inference + status tracking + collection.

Per Sec. IV-C, each client maintains two class-recency structures —

* ``tau`` (timestamp vector): inferences since a class last appeared;
  reset to 0 when a sample of the class appears, incremented otherwise;
* ``phi`` (frequency vector): per-class appearance counts within the
  current round —

and a *cache update table* ``U`` collecting semantic vectors of selected
inference samples:

1. cache hits whose discriminative score exceeds Gamma (reinforcement;
   vectors collected only up to the hit layer), and
2. cache misses whose top-2 probability gap exceeds Delta (expansion;
   vectors collected at every preset layer, since the full model ran).

Entries update as ``U[i, j] = V[i, j] + beta * U[i, j]`` (Eq. 3) and are
L2-normalized.  The client knows no ground-truth labels: classes are the
*inferred* outputs, exactly as deployed.

Rounds are array-at-a-time end to end: frames come as one
:class:`~repro.data.stream.FrameBlock`, samples as one
:class:`~repro.models.feature.SampleBatch`, inference as one
:class:`~repro.core.engine.BatchOutcomes` pass, the status vectors
(tau, phi) update with batch arithmetic, and Eq. 3 collection folds the
selected samples with grouped array updates — one vectorized multi-layer
fold per collected sample instead of a per-(sample, layer) dict walk.
:meth:`CoCaClient.run_round_reference` preserves the historical
per-frame scalar path; given the same pre-drawn batch the two produce
identical reports (see ``tests/test_round_pipeline_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.cache import LookupWorkspace, SemanticCache
from repro.core.config import CoCaConfig
from repro.core.engine import (
    BatchedInferenceEngine,
    BatchOutcomes,
    CachedInferenceEngine,
    InferenceOutcome,
)
from repro.data.stream import StreamGenerator
from repro.models.base import SimulatedModel
from repro.models.feature import SampleBatch, SampleFeatures
from repro.sim.metrics import InferenceRecord


@dataclass(frozen=True)
class ClientStatus:
    """Status information uploaded with a cache-allocation request.

    Attributes:
        client_id: identifier of the requesting client.
        timestamps: the tau vector (staleness per class, in inferences).
        frequencies: the client's class distribution observed in its most
            recent round (the "current data class distribution" of
            Sec. IV-A; zeros before the first round).
        hit_ratio: per-cache-layer marginal hit-ratio estimate R.
        cache_budget_bytes: the client's cache-size threshold Pi.
    """

    client_id: int
    timestamps: np.ndarray
    frequencies: np.ndarray
    hit_ratio: np.ndarray
    cache_budget_bytes: int


@dataclass
class RoundReport:
    """Everything a client uploads at the end of a round.

    Attributes:
        client_id: reporting client.
        records: per-inference outcomes of the round (for metrics).
        update_entries: the cache update table U as a mapping
            ``(class_id, layer) -> unit vector``.
        frequencies: the phi vector counted over this round (by inferred
            class).
        absorbed_hits / absorbed_misses: number of samples collected under
            the Gamma / Delta rules (absorption diagnostics, Fig. 6).
        eligible_hits / eligible_misses: samples that satisfied the
            preconditions (hit / confident miss) before thresholding.
    """

    client_id: int
    records: list[InferenceRecord]
    update_entries: dict[tuple[int, int], np.ndarray]
    frequencies: np.ndarray
    absorbed_hits: int = 0
    absorbed_misses: int = 0
    eligible_hits: int = 0
    eligible_misses: int = 0
    collected_correct: int = 0
    collected_total: int = 0

    @property
    def total_latency_ms(self) -> float:
        """Summed virtual inference latency of the round.

        The time the client's device was busy computing this round —
        what an event-driven driver charges to the client's clock between
        receiving a cache and uploading the round's update table.
        """
        return float(sum(r.latency_ms for r in self.records))


class CoCaClient:
    """One edge client participating in the CoCa protocol.

    Args:
        client_id: index of the client (also selects its feature-drift
            profile in the model substrate).
        model: shared simulated model (deployed by the server).
        stream: the client's frame stream.
        config: CoCa hyper-parameters.
        rng: per-client generator for feature sampling.
        cache_budget_bytes: cache-size threshold Pi; defaults to
            ``config.cache_budget_fraction`` of the full global table.
        workspace: shared probe-buffer pool for the batched engine
            (``None`` = the engine owns a private one).  The framework
            passes one workspace to every client it builds — rounds run
            clients sequentially, so a deployment-wide pool is safe and
            keeps probe scratch memory constant in the client count.
    """

    def __init__(
        self,
        client_id: int,
        model: SimulatedModel,
        stream: StreamGenerator,
        config: CoCaConfig,
        rng: np.random.Generator,
        cache_budget_bytes: int | None = None,
        workspace: LookupWorkspace | None = None,
    ) -> None:
        self.client_id = client_id
        self.model = model
        self.stream = stream
        self.config = config
        self._rng = rng
        num_classes = model.num_classes
        num_layers = model.num_cache_layers
        if cache_budget_bytes is None:
            full_table = num_classes * sum(
                model.profile.entry_size_bytes(j) for j in range(num_layers)
            )
            cache_budget_bytes = int(config.cache_budget_fraction * full_table)
        if cache_budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.cache_budget_bytes = int(cache_budget_bytes)

        self.timestamps = np.zeros(num_classes)  # tau
        self.last_frequencies = np.zeros(num_classes)  # phi of last round
        self.hit_ratio = np.zeros(num_layers)  # R, seeded by the server
        # The scalar engine stays the reference (and the public accessor
        # for the installed cache); rounds execute on the batched engine.
        self.engine = CachedInferenceEngine(model, cache=None)
        self.batch_engine = BatchedInferenceEngine(
            model, cache=None, workspace=workspace
        )

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------

    def seed_hit_ratio(self, reference: np.ndarray) -> None:
        """Install the server's shared-dataset hit-ratio estimate."""
        ref = np.asarray(reference, dtype=float)
        if ref.shape != self.hit_ratio.shape:
            raise ValueError(
                f"reference shape {ref.shape} != expected {self.hit_ratio.shape}"
            )
        self.hit_ratio = ref.copy()

    def status(self) -> ClientStatus:
        """Status uploaded with the next cache-allocation request."""
        return ClientStatus(
            client_id=self.client_id,
            timestamps=self.timestamps.copy(),
            frequencies=self.last_frequencies.copy(),
            hit_ratio=self.hit_ratio.copy(),
            cache_budget_bytes=self.cache_budget_bytes,
        )

    def install_cache(self, cache: SemanticCache | None) -> None:
        """Load the cache allocated by the server for the coming round."""
        self.engine.set_cache(cache)
        self.batch_engine.set_cache(cache)

    def run_round(
        self,
        num_frames: int | None = None,
        batch: SampleBatch | None = None,
        timings: dict[str, float] | None = None,
    ) -> RoundReport:
        """Run F inferences, maintaining status and the update table.

        The round is vectorized end to end: the stream yields one
        :class:`~repro.data.stream.FrameBlock`, the feature space draws
        one :class:`SampleBatch`, the batched engine returns
        :class:`BatchOutcomes` arrays, and status updates plus Eq. 3
        collection run as grouped array operations.  Outcomes are
        identical to :meth:`run_round_reference` on the same batch.

        Args:
            num_frames: round length (default ``config.frames_per_round``);
                ignored when ``batch`` is given.
            batch: pre-drawn samples to run instead of consuming the
                stream (used by the equivalence suite and benchmarks).
            timings: optional accumulator for wall-clock stage seconds
                (``"sample-gen"``, ``"probe"``, ``"model"``,
                ``"collect"``) — the ``repro profile-round`` breakdown.
        """
        if batch is None:
            frames = (
                num_frames if num_frames is not None else self.config.frames_per_round
            )
            if frames < 1:
                raise ValueError(f"num_frames must be >= 1, got {frames}")
            start = time.perf_counter() if timings is not None else 0.0
            block = self.stream.take_block(frames)
            batch = self.model.draw_samples(block, self.client_id, self._rng)
            if timings is not None:
                timings["sample-gen"] = (
                    timings.get("sample-gen", 0.0) + time.perf_counter() - start
                )
        else:
            frames = len(batch)
            if frames < 1:
                raise ValueError("batch must contain at least one sample")

        num_classes = self.model.num_classes
        out = self.batch_engine.infer_batch_soa(batch, timings=timings)
        predictions = out.predicted_class

        # Status vectors track the *inferred* class (no labels online).
        # Batch equivalent of (tau += 1; tau[pred] = 0) per frame: classes
        # never predicted age by the round length, predicted classes reset
        # at their last occurrence and age since.
        phi = np.bincount(predictions, minlength=num_classes).astype(float)
        self.timestamps += float(frames)
        last_position = np.full(num_classes, -1)
        last_position[predictions] = np.arange(frames)
        seen = last_position >= 0
        self.timestamps[seen] = float(frames - 1) - last_position[seen]

        hit_mask = out.hit_layer >= 0
        layer_hits = np.bincount(
            out.hit_layer[hit_mask], minlength=self.model.num_cache_layers
        ).astype(float)

        report = RoundReport(
            client_id=self.client_id,
            records=[],
            update_entries={},
            frequencies=phi,
        )
        start = time.perf_counter() if timings is not None else 0.0
        report.update_entries = self._collect_batch(batch, out, report)
        if timings is not None:
            timings["collect"] = (
                timings.get("collect", 0.0) + time.perf_counter() - start
            )

        true_list = batch.class_ids.tolist()
        pred_list = predictions.tolist()
        latency_list = out.latency_ms.tolist()
        hit_list = out.hit_layer.tolist()
        report.records = [
            InferenceRecord(
                true_class=true,
                predicted_class=pred,
                latency_ms=latency,
                hit_layer=(hit if hit >= 0 else None),
                client_id=self.client_id,
            )
            for true, pred, latency, hit in zip(
                true_list, pred_list, latency_list, hit_list
            )
        ]

        self._refresh_hit_ratio(layer_hits, frames)
        self.last_frequencies = phi.copy()
        return report

    def run_round_reference(
        self,
        num_frames: int | None = None,
        batch: SampleBatch | None = None,
    ) -> RoundReport:
        """Per-frame scalar reference of :meth:`run_round`.

        Draws, infers, tracks status, and collects one frame at a time on
        the scalar engine — the seed implementation, kept as the
        behavioural reference for the vectorized round and as the
        baseline of ``benchmarks/test_round_pipeline.py``.  Given the
        same pre-drawn ``batch``, the report matches :meth:`run_round`
        exactly (update tables, phi/tau, records, diagnostics).
        """
        if batch is None:
            frames = (
                num_frames if num_frames is not None else self.config.frames_per_round
            )
            if frames < 1:
                raise ValueError(f"num_frames must be >= 1, got {frames}")
            samples = [
                self.model.draw_sample(frame, self.client_id, self._rng)
                for frame in self.stream.take(frames)
            ]
        else:
            frames = len(batch)
            if frames < 1:
                raise ValueError("batch must contain at least one sample")
            samples = batch.samples()

        num_classes = self.model.num_classes
        update_entries: dict[tuple[int, int], np.ndarray] = {}
        phi = np.zeros(num_classes)
        layer_hits = np.zeros(self.model.num_cache_layers)
        report = RoundReport(
            client_id=self.client_id,
            records=[],
            update_entries=update_entries,
            frequencies=phi,
        )
        for sample in samples:
            outcome = self.engine.infer(sample)
            self.timestamps += 1.0
            self.timestamps[outcome.predicted_class] = 0.0
            phi[outcome.predicted_class] += 1.0
            if outcome.hit_layer is not None:
                layer_hits[outcome.hit_layer] += 1.0
            self._maybe_collect(sample, outcome, update_entries, report)
            report.records.append(
                InferenceRecord(
                    true_class=sample.true_class,
                    predicted_class=outcome.predicted_class,
                    latency_ms=outcome.latency_ms,
                    hit_layer=outcome.hit_layer,
                    client_id=self.client_id,
                )
            )

        self._refresh_hit_ratio(layer_hits, frames)
        self.last_frequencies = phi.copy()
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _refresh_hit_ratio(self, layer_hits: np.ndarray, frames: int) -> None:
        """EMA-blend observed hit ratios into R (active layers only).

        R holds *standalone* per-layer hit-ratio estimates (see
        :meth:`repro.core.server.CoCaServer.measure_layer_statistics`).
        With several layers active, the cumulative hits at-or-before layer
        ``j`` estimate layer ``j``'s standalone ratio, by the same
        hits-propagate-deeper hypothesis ACA relies on.
        """
        cache = self.engine.cache
        if cache is None:
            return
        blend = 0.5
        cumulative = 0.0
        for layer in cache.active_layers:
            cumulative += layer_hits[layer] / frames
            self.hit_ratio[layer] = (
                1 - blend
            ) * self.hit_ratio[layer] + blend * cumulative

    def _collect_batch(
        self,
        batch: SampleBatch,
        out: BatchOutcomes,
        report: RoundReport,
    ) -> dict[tuple[int, int], np.ndarray]:
        """Vectorized Sec. IV-C collection over a whole round (Eq. 3).

        Selection (the Gamma / Delta rules and all diagnostics counters)
        is pure array arithmetic.  The Eq. 3 fold itself is sequential
        *per (class, layer) key* — each absorb renormalizes, so the
        recurrence cannot be collapsed — but the selected samples are a
        minority of the round and each one now folds all of its collected
        layers in a single grouped array update, instead of the scalar
        path's per-(sample, layer) dict walk.  Key-for-key, the folds see
        the same vectors in the same stream order as
        :meth:`_maybe_collect`, so the resulting table is identical.
        """
        batch_size = len(batch)
        predictions = out.predicted_class
        hit_mask = out.hit_layer >= 0
        collect_hit = hit_mask.copy()
        collect_hit[hit_mask] = out.hit_score[hit_mask] > self.config.collect_gamma
        miss_mask = ~hit_mask
        collect_miss = miss_mask.copy()
        collect_miss[miss_mask] = (
            out.top2_prob_gap[miss_mask] > self.config.collect_delta
        )
        collected = collect_hit | collect_miss

        report.eligible_hits = int(hit_mask.sum())
        report.eligible_misses = batch_size - report.eligible_hits
        report.absorbed_hits = int(collect_hit.sum())
        report.absorbed_misses = int(collect_miss.sum())
        report.collected_total = report.absorbed_hits + report.absorbed_misses
        report.collected_correct = int(
            (predictions[collected] == batch.class_ids[collected]).sum()
        )

        update_entries: dict[tuple[int, int], np.ndarray] = {}
        if not report.collected_total:
            return update_entries

        num_layers = self.model.num_cache_layers
        dim = batch.vectors.shape[-1]
        cache = self.engine.cache
        active = np.asarray(cache.active_layers if cache is not None else [], dtype=int)
        # A hit collects the probed prefix (active layers up to and
        # including the hit layer); a miss collects every preset layer.
        prefix_of = {int(layer): k + 1 for k, layer in enumerate(active)}
        all_layers = np.arange(num_layers)
        beta = self.config.beta
        vectors = batch.vectors

        # Per-class fold state: U rows start at zero, so "new key" and
        # "existing key" share one expression (V + beta * 0 == V).
        state: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        hit_layer_list = out.hit_layer.tolist()
        pred_list = predictions.tolist()
        for i in np.flatnonzero(collected).tolist():
            class_id = pred_list[i]
            layer = hit_layer_list[i]
            layers = all_layers if layer < 0 else active[: prefix_of[layer]]
            if class_id not in state:
                state[class_id] = (np.zeros((num_layers, dim)), np.zeros(num_layers, bool))
            table, exists = state[class_id]
            merged = vectors[i, layers, :] + beta * table[layers]
            norms = np.sqrt(np.einsum("kd,kd->k", merged, merged))
            ok = norms > 0
            rows = layers[ok]
            table[rows] = merged[ok] / norms[ok, None]
            exists[rows] = True

        for class_id, (table, exists) in state.items():
            for layer in np.flatnonzero(exists).tolist():
                update_entries[(class_id, layer)] = table[layer].copy()
        return update_entries

    def _maybe_collect(
        self,
        sample: SampleFeatures,
        outcome: InferenceOutcome,
        update_entries: dict[tuple[int, int], np.ndarray],
        report: RoundReport,
    ) -> None:
        """Apply the two Sec. IV-C collection rules to one inference."""
        predicted = outcome.predicted_class
        if outcome.hit:
            report.eligible_hits += 1
            assert outcome.hit_score is not None
            if outcome.hit_score > self.config.collect_gamma:
                layers = [p.layer for p in outcome.probes]  # up to the hit
                self._absorb(sample, predicted, layers, update_entries)
                report.absorbed_hits += 1
                report.collected_total += 1
                report.collected_correct += int(predicted == sample.true_class)
        else:
            assert outcome.top2_prob_gap is not None
            report.eligible_misses += 1
            if outcome.top2_prob_gap > self.config.collect_delta:
                layers = list(range(self.model.num_cache_layers))
                self._absorb(sample, predicted, layers, update_entries)
                report.absorbed_misses += 1
                report.collected_total += 1
                report.collected_correct += int(predicted == sample.true_class)

    def _absorb(
        self,
        sample: SampleFeatures,
        class_id: int,
        layers: list[int],
        update_entries: dict[tuple[int, int], np.ndarray],
    ) -> None:
        """Fold the sample's vectors into the update table via Eq. 3."""
        beta = self.config.beta
        for layer in layers:
            vector = sample.vector(layer)
            key = (class_id, layer)
            if key in update_entries:
                merged = vector + beta * update_entries[key]
            else:
                merged = vector.copy()
            norm = np.linalg.norm(merged)
            if norm > 0:
                update_entries[key] = merged / norm
