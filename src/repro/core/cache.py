"""The class-based semantic cache (Sec. II-3).

A :class:`SemanticCache` holds, per activated cache layer, one unit-norm
semantic centroid per hot-spot class.  During inference a
:class:`LookupSession` walks the activated layers in order, accumulating
per-class cosine similarities:

    A[i, j] = C[i, j] + alpha * A[i, j-1]                       (Eq. 1)

where ``C[i, j]`` is the cosine similarity between the sample's layer-``j``
semantic vector and class ``i``'s cached centroid, and ``j-1`` is the
*previously probed* layer.  The layer's discriminative score compares the
two best classes ``a`` and ``b``:

    D[j] = (A[a, j] - A[b, j]) / A[b, j]                        (Eq. 2)

The cache hits when ``D[j]`` exceeds the threshold theta; inference then
terminates early returning class ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-9


@dataclass(frozen=True)
class LayerProbe:
    """Outcome of probing one cache layer during an inference.

    Attributes:
        layer: index of the probed cache layer.
        top_class: class with the highest accumulated similarity.
        second_class: runner-up class (or ``-1`` with a single entry).
        score: discriminative score ``D`` of Eq. 2.
        hit: whether ``score`` exceeded the session threshold.
    """

    layer: int
    top_class: int
    second_class: int
    score: float
    hit: bool


class SemanticCache:
    """Per-layer class centroids plus the Eq. 1/2 lookup machinery.

    Args:
        num_classes: size of the class universe (row space of the global
            cache table this cache was extracted from).
        alpha: Eq. 1 decay for previous-layer accumulated similarity.
        theta: Eq. 2 discriminative-score hit threshold.
    """

    def __init__(self, num_classes: int, alpha: float = 0.5, theta: float = 0.05) -> None:
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.num_classes = num_classes
        self.alpha = alpha
        self.theta = theta
        self._layers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Optional per-layer absolute similarity floors: a hit additionally
        # requires the top entry's *current-layer* cosine to reach the
        # floor.  The relative score D alone cannot reject a sample of an
        # uncached class whose nearest cached entry happens to be isolated
        # (large relative gap at modest absolute similarity); the floor —
        # calibrated by the server from true-hit similarities on the
        # shared dataset — closes exactly that hole.
        self._similarity_floor: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------

    def set_layer_entries(
        self, layer: int, class_ids: np.ndarray, centroids: np.ndarray
    ) -> None:
        """Install the entries of one cache layer (replacing any previous).

        Args:
            layer: cache-layer index.
            class_ids: integer array of shape ``(n,)``.
            centroids: float array of shape ``(n, d)``; rows are normalized
                to unit L2 norm on insertion.
        """
        ids = np.asarray(class_ids, dtype=int)
        mat = np.asarray(centroids, dtype=float)
        if ids.ndim != 1 or mat.ndim != 2 or ids.shape[0] != mat.shape[0]:
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, centroids {mat.shape}"
            )
        if ids.size == 0:
            self._layers.pop(layer, None)
            return
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate class ids in one cache layer")
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError("class id out of range")
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        if np.any(norms < _EPS):
            raise ValueError("cannot cache a zero centroid")
        self._layers[layer] = (ids.copy(), mat / norms)

    def set_similarity_floor(self, layer: int, floor: float) -> None:
        """Require a minimum top-entry cosine at ``layer`` for a hit."""
        if not -1.0 <= floor <= 1.0:
            raise ValueError(f"floor must be a cosine in [-1, 1], got {floor}")
        self._similarity_floor[layer] = float(floor)

    def similarity_floor(self, layer: int) -> float:
        """The hit floor at a layer (-1 when none is set)."""
        return self._similarity_floor.get(layer, -1.0)

    def clear(self) -> None:
        self._layers.clear()
        self._similarity_floor.clear()

    @property
    def active_layers(self) -> list[int]:
        """Activated cache-layer indices in lookup (ascending) order."""
        return sorted(self._layers)

    def num_entries(self, layer: int) -> int:
        if layer not in self._layers:
            return 0
        return int(self._layers[layer][0].size)

    @property
    def total_entries(self) -> int:
        return sum(ids.size for ids, _ in self._layers.values())

    def entries_at(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """(class ids, centroid matrix) of one layer (copies)."""
        if layer not in self._layers:
            raise KeyError(f"cache layer {layer} is not activated")
        ids, mat = self._layers[layer]
        return ids.copy(), mat.copy()

    def classes_at(self, layer: int) -> set[int]:
        if layer not in self._layers:
            return set()
        return set(int(i) for i in self._layers[layer][0])

    def size_bytes(self, entry_size_of_layer) -> int:
        """Total memory under a per-layer entry-size function (Eq. 6)."""
        return sum(
            ids.size * int(entry_size_of_layer(layer))
            for layer, (ids, _) in self._layers.items()
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def start_session(self) -> "LookupSession":
        """Begin the per-inference sequential lookup."""
        return LookupSession(self)

    def __repr__(self) -> str:
        layers = {j: self.num_entries(j) for j in self.active_layers}
        return f"SemanticCache(theta={self.theta}, layers={layers})"


class LookupSession:
    """Accumulates Eq. 1 scores across the activated layers of one inference.

    Probe layers in ascending order via :meth:`probe`; the session keeps the
    per-class accumulated similarity ``A`` between calls.
    """

    def __init__(self, cache: SemanticCache) -> None:
        self._cache = cache
        self._accumulated = np.zeros(cache.num_classes)

    def accumulated_score(self, class_id: int) -> float:
        """Current ``A`` value of a class (0 before its first probe)."""
        return float(self._accumulated[class_id])

    def probe(self, layer: int, vector: np.ndarray) -> LayerProbe:
        """Probe one activated layer with the sample's semantic vector.

        Returns a :class:`LayerProbe`; ``hit`` is ``True`` when the Eq. 2
        score exceeds the cache's theta.  A layer with fewer than two
        entries can never hit (the discriminative score needs a runner-up).
        """
        ids, mat = self._cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (mat.shape[1],):
            raise ValueError(
                f"vector shape {vec.shape} does not match centroid dim {mat.shape[1]}"
            )

        similarity = mat @ vec  # C[i, j] for cached classes
        updated = similarity + self._cache.alpha * self._accumulated[ids]
        self._accumulated[ids] = updated

        if ids.size < 2:
            top = int(ids[0]) if ids.size == 1 else -1
            return LayerProbe(
                layer=layer, top_class=top, second_class=-1, score=0.0, hit=False
            )

        order = np.argsort(updated)
        best_idx, second_idx = order[-1], order[-2]
        a_best = float(updated[best_idx])
        a_second = float(updated[second_idx])
        score = (a_best - a_second) / max(a_second, _EPS)
        floor = self._cache.similarity_floor(layer)
        hit = (
            score > self._cache.theta
            and a_best > 0
            and float(similarity[best_idx]) >= floor
        )
        return LayerProbe(
            layer=layer,
            top_class=int(ids[best_idx]),
            second_class=int(ids[second_idx]),
            score=score,
            hit=hit,
        )
