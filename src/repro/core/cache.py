"""The class-based semantic cache (Sec. II-3).

A :class:`SemanticCache` holds, per activated cache layer, one unit-norm
semantic centroid per hot-spot class.  During inference a
:class:`LookupSession` walks the activated layers in order, accumulating
per-class cosine similarities:

    A[i, j] = C[i, j] + alpha * A[i, j-1]                       (Eq. 1)

where ``C[i, j]`` is the cosine similarity between the sample's layer-``j``
semantic vector and class ``i``'s cached centroid, and ``j-1`` is the
*previously probed* layer.  The layer's discriminative score compares the
two best classes ``a`` and ``b``:

    D[j] = (A[a, j] - A[b, j]) / A[b, j]                        (Eq. 2)

The cache hits when ``D[j]`` exceeds the threshold theta; inference then
terminates early returning class ``a``.  Eq. 2 presumes a positive
runner-up: when ``A[b] <= 0`` the relative gap is undefined and no
confident hit is possible, so :func:`discriminative_score` clamps ``D``
to 0 instead of dividing by a tiny epsilon.

Two session flavours share the machinery: :class:`LookupSession` walks
one sample at a time, and :class:`BatchedLookupSession` runs a whole
batch of samples per layer as single NumPy matrix operations (one
``(n_alive, d) @ (d, n_entries)`` product, vectorized Eq. 1/2), producing
outcomes identical to the scalar path.

Serving-path performance rests on three policies layered on top:

* **Dtype policy.**  Centroid matrices are stored C-contiguous in a
  configurable dtype, ``float32`` by default: unit-norm cosine geometry
  loses nothing observable at single precision (scores carry ~1e-6
  relative rounding against margins of ~1e-2) while matmul bandwidth and
  FLOP throughput double.  Session accumulators match the cache dtype,
  so all probe math runs in single precision end to end.  Constructing
  with ``dtype=np.float64`` restores the bit-exact double-precision
  path the exact-equivalence suites run on.
* **Zero-allocation kernel.**  A :class:`LookupWorkspace` owns reusable
  flat buffer pools; the batched probe writes its matmul, accumulator
  gather/scatter, top-2 selection and scoring into workspace views
  (``out=`` everywhere), so steady-state probes allocate only their
  small per-row output arrays.  Engines own a workspace and thread it
  through every session they open, so buffers persist across probes,
  batches and protocol rounds.
* **LSH-pruned candidate lookup.**  With ``prune_threshold`` set, any
  layer holding at least that many entries keeps an array-backed
  :class:`~repro.lsh.alsh.AdaptiveLSH` index over its centroids
  (rebuilt in place — same hyperplanes — whenever
  :meth:`SemanticCache.set_layer_entries` replaces the layer).  At a
  session's first pruned probe, the multi-probe buckets of every query
  in the batch are unioned into one *session shortlist* of candidate
  classes; every pruned layer is then probed with the exact dense
  kernel restricted to that shortlist's columns.  Pinning the shortlist
  per session keeps Eq. 1 accumulation consistent across layers, and
  unioning over the batch exploits the stream's hot-spot runs: a batch
  that revisits few classes probes few columns.  Layers below the
  threshold, and shortlists with fewer than two usable columns, fall
  back to the full dense kernel.  Pruning is approximate (a query's
  true top-2 can land outside the shortlist), which is why it is
  opt-in and disabled wherever exact equivalence is asserted.
* **Two-tier quantized probe.**  With ``quantize_threshold`` set, any
  layer holding at least that many entries additionally stores its
  centroids quantized — ``int8`` codes with a symmetric per-row
  ``float32`` scale (or a straight ``float16`` copy) — alongside an
  eagerly *staged* ``float32`` dequantization of those codes.  The
  session's first quantized probe scores the staged matrix (over the
  LSH shortlist's columns when both accelerators are active) in one
  coarse pass, keeps every column whose coarse score reaches the
  per-row runner-up minus a margin of ``2 * bound + coarse_margin``
  (``bound`` is the layer's measured worst-row reconstruction error:
  for unit-norm queries a column whose exact score reaches the exact
  top-2 cannot score below the coarse runner-up minus twice the error),
  and pins the surviving classes as the session's *candidate set*.
  Every quantized layer is then re-scored **exactly** — the float32
  dense kernel on the candidates' columns — so Eq. 1/2 decisions come
  from full-precision arithmetic; only candidate selection is
  approximate, and the margin makes missing a decisive column require
  cross-layer rank drift larger than the configured slack.  The staged
  matrix keeps coarse scoring on the float32 BLAS path, where the int8
  dot products are computed *exactly* as long as
  ``d * 127**2 < 2**24`` (the float32 mantissa; ``d <= 1040``).
* **Thread-blocked execution.**  With ``probe_threads > 1`` the dense
  kernel splits the batch into contiguous row blocks dispatched across
  a worker pool owned by the workspace; each block runs the full
  matmul + fold + top-2 + scoring pipeline against a per-thread child
  workspace and writes disjoint row slices of parent-pooled outputs,
  so the zero-allocation property survives threading.  Row math is
  independent, so blocked results are identical to the single-threaded
  kernel.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np
from numpy.typing import DTypeLike

from repro import contracts
from repro.core.rng import derive_rng
from repro.lsh.alsh import AdaptiveLSH

_EPS = 1e-9

#: Dtypes the cache may store centroids in (the probe-kernel contract).
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Dtypes a quantized tier may store codes in.
QUANTIZED_DTYPES = (np.dtype(np.int8), np.dtype(np.float16))

#: Largest centroid dimension at which float32 BLAS evaluates int8 dot
#: products exactly: every partial sum of ``d`` products of magnitude
#: <= 127**2 stays below the 2**24 float32 mantissa when
#: ``d * 127**2 < 2**24``.
INT8_EXACT_MAX_DIM = (2**24 - 1) // (127 * 127)

#: Fewest rows worth a thread block: below this, dispatch overhead
#: exceeds the matmul itself and the kernel stays single-threaded.
_MIN_BLOCK_ROWS = 16


class QuantizedTier(NamedTuple):
    """Quantized companion storage of one cache layer.

    Attributes:
        codes: ``(e, d)`` quantized centroids — ``int8`` (symmetric
            per-row scale) or ``float16``.
        scales: ``(e,)`` positive ``float32`` per-row dequantization
            scales (all ones for ``float16`` codes).
        staged: ``(e, d)`` C-contiguous ``float32`` dequantization
            ``codes * scales[:, None]`` — the matrix the coarse tier
            actually multiplies, kept staged so every coarse pass runs
            on the float32 BLAS path.
        bound: worst-row L2 reconstruction error
            ``max_i ||stored[i] - staged[i]||_2`` (measured, not the
            ``sqrt(d) * scale / 2`` analytic envelope) — the quantity
            the coarse candidate margin is built from.
    """

    codes: np.ndarray
    scales: np.ndarray
    staged: np.ndarray
    bound: float


def quantize_rows(
    matrix: np.ndarray, quant_dtype: DTypeLike = np.int8
) -> QuantizedTier:
    """Quantize a row matrix into a :class:`QuantizedTier`.

    ``int8`` uses a symmetric per-row scale ``maxabs(row) / 127`` so the
    rounded codes span the full code range without clipping error;
    ``float16`` is a straight downcast with unit scales.  The returned
    ``staged`` matrix is exactly ``codes.astype(float32) * scales`` (the
    invariant :func:`repro.contracts.check_quantized_tier` enforces) and
    ``bound`` is the measured worst-row L2 reconstruction error against
    the input rows.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D row matrix, got shape {mat.shape}")
    qdtype = np.dtype(quant_dtype)
    if qdtype not in QUANTIZED_DTYPES:
        raise ValueError(
            f"quant_dtype must be one of {[str(d) for d in QUANTIZED_DTYPES]}, "
            f"got {qdtype}"
        )
    if qdtype == np.dtype(np.int8):
        mat64 = mat.astype(np.float64, copy=False)
        if mat.shape[0] == 0 or mat.shape[1] == 0:
            maxabs = np.ones(mat.shape[0], dtype=np.float64)
        else:
            maxabs = np.max(np.abs(mat64), axis=1)
        scales = (np.maximum(maxabs, _EPS) / 127.0).astype(np.float32, copy=False)
        codes = np.clip(
            np.rint(mat64 / scales.astype(np.float64, copy=False)[:, None]),
            -127.0,
            127.0,
        ).astype(np.int8, copy=False)
    else:
        codes = np.ascontiguousarray(mat, dtype=np.float16)
        scales = np.ones(mat.shape[0], dtype=np.float32)
    # repro-lint: disable=dtype-discipline -- fresh buffer wanted: scaled in place
    staged = codes.astype(np.float32)
    staged *= scales[:, None]
    staged = np.ascontiguousarray(staged)
    if mat.shape[0]:
        err = mat.astype(np.float64, copy=False) - staged.astype(
            np.float64, copy=False
        )
        bound = float(np.sqrt(np.max(np.einsum("ij,ij->i", err, err))))
    else:
        bound = 0.0
    return QuantizedTier(codes=codes, scales=scales, staged=staged, bound=bound)


def discriminative_score(
    a_best: float | np.ndarray, a_second: float | np.ndarray
) -> float | np.ndarray:
    """Eq. 2 score ``(A[a] - A[b]) / A[b]`` with a safe denominator.

    When the runner-up accumulated similarity ``A[b]`` is non-positive
    the relative gap is undefined — naively substituting an epsilon
    denominator explodes the score to ~1e9 and manufactures spurious
    hits.  No confident hit is possible against a non-positive runner-up,
    so the score clamps to 0 there.  A *genuinely positive but tiny*
    runner-up still yields a large score: that is Eq. 2's own unbounded
    semantics (a huge relative margin), and deployments gate such fires
    with the calibrated per-layer similarity floors.

    Accepts scalars or equally-shaped arrays; returns a float for scalar
    inputs and an array otherwise.
    """
    best = np.asarray(a_best, dtype=float)
    second = np.asarray(a_second, dtype=float)
    positive = second > _EPS
    score = np.where(
        positive, (best - second) / np.where(positive, second, 1.0), 0.0
    )
    if score.ndim == 0:
        return float(score)
    return score


class LookupWorkspace:
    """Reusable scratch buffers for the batched probe kernels.

    Buffers are flat pools keyed by ``(name, dtype)`` and grown
    geometrically; :meth:`floats` / :meth:`ints` / :meth:`bools` return
    C-contiguous views of the requested shape, so ``out=`` matmuls and
    ufuncs write straight into pooled memory.  One workspace is owned
    per engine (or per cluster node) and reused across probes, batches
    and rounds — the steady-state probe path allocates nothing
    proportional to ``batch x n_entries``.

    Thread-safety contract: a workspace is single-threaded and not
    re-entrant — a buffer name is a claim on the pool until the caller
    is done with the view.  The threaded probe kernel honours this by
    *never sharing pools across workers*: each row block runs against a
    persistent child workspace (:meth:`for_thread`), and only the
    parent's pre-sliced per-row output views are written concurrently,
    at disjoint row ranges.  The single-threaded round pipeline (and
    the virtual-time cluster driver, which runs clients sequentially)
    satisfies the contract by construction.
    """

    def __init__(self) -> None:
        self._pools: dict[tuple[str, np.dtype], np.ndarray] = {}
        self._arange = np.empty(0, dtype=np.intp)
        self._children: dict[int, LookupWorkspace] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._executor_workers = 0

    def for_thread(self, worker: int) -> "LookupWorkspace":
        """The persistent child workspace of one probe worker.

        Children are created lazily and live as long as the parent, so
        threaded probes stay zero-allocation in steady state; worker 0
        is the caller's own block and gets a child too, keeping block
        buffer sizes uniform across workers.
        """
        child = self._children.get(worker)
        if child is None:
            child = LookupWorkspace()
            self._children[worker] = child
        return child

    def executor(self, workers: int) -> ThreadPoolExecutor:
        """The workspace's probe worker pool, grown to ``workers``."""
        if self._executor is None or self._executor_workers < workers:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-probe"
            )
            self._executor_workers = workers
        return self._executor

    def close(self) -> None:
        """Release the workspace: join probe threads, drop pooled buffers.

        Shuts down the probe :class:`ThreadPoolExecutor` (joining its
        ``repro-probe`` threads), closes every per-thread child
        workspace, and clears the buffer pools.  Idempotent, and the
        workspace stays usable afterwards — pools regrow and the
        executor is recreated on demand — so a shared workspace closed
        twice along two teardown paths is harmless.  Long-lived serving
        processes call this on worker shutdown; without it the probe
        executor only ever stops on a *resize* (see :meth:`executor`).
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0
        for child in self._children.values():
            child.close()
        self._children.clear()
        self._pools.clear()
        self._arange = np.empty(0, dtype=np.intp)

    def __enter__(self) -> "LookupWorkspace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _pool(self, name: str, dtype: np.dtype, size: int) -> np.ndarray:
        key = (name, dtype)
        buf = self._pools.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 16), dtype=dtype)
            self._pools[key] = buf
        return buf

    def floats(
        self, name: str, shape: tuple[int, ...], dtype: DTypeLike
    ) -> np.ndarray:
        """A C-contiguous float view of ``shape`` from the named pool."""
        size = math.prod(shape) if shape else 1
        return self._pool(name, np.dtype(dtype), size)[:size].reshape(shape)

    def ints(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """An index (``intp``) view — argmax targets, flat gather indices."""
        size = math.prod(shape) if shape else 1
        return self._pool(name, np.dtype(np.intp), size)[:size].reshape(shape)

    def bools(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        size = math.prod(shape) if shape else 1
        return self._pool(name, np.dtype(np.bool_), size)[:size].reshape(shape)

    def arange(self, n: int) -> np.ndarray:
        """A read-only-by-convention view of ``[0, n)``."""
        if self._arange.size < n:
            self._arange = np.arange(max(n, 16), dtype=np.intp)
        return self._arange[:n]

    def top2(
        self, matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Row-wise top-2 of a 2-D score matrix via two argmax passes.

        The winner is masked to ``-inf``, the runner-up located, and the
        winner restored — the cheapest exact top-2 for small row counts.
        ``matrix`` is temporarily modified in place (restored on return);
        C-contiguous input takes the flat-index gather path, anything
        else the (allocating) fancy-index path.  All four returned
        arrays are workspace views valid until the next ``top2`` call.
        """
        n, e = matrix.shape
        best_idx = self.ints("top2.best_idx", (n,))
        second_idx = self.ints("top2.second_idx", (n,))
        best = self.floats("top2.best", (n,), matrix.dtype)
        second = self.floats("top2.second", (n,), matrix.dtype)
        if contracts.ENABLED:
            contracts.check_distinct_views(
                matrix=matrix,
                best_idx=best_idx,
                second_idx=second_idx,
                best=best,
                second=second,
            )
        np.argmax(matrix, axis=1, out=best_idx)
        if matrix.flags.c_contiguous:
            flat = self.ints("top2.flat", (n,))
            matrix_flat = matrix.reshape(-1)
            np.multiply(self.arange(n), e, out=flat)
            np.add(flat, best_idx, out=flat)
            np.take(matrix_flat, flat, out=best)
            matrix_flat[flat] = -np.inf
            np.argmax(matrix, axis=1, out=second_idx)
            second_flat = self.ints("top2.second_flat", (n,))
            np.multiply(self.arange(n), e, out=second_flat)
            np.add(second_flat, second_idx, out=second_flat)
            np.take(matrix_flat, second_flat, out=second)
            matrix_flat[flat] = best  # restore the winners
        else:
            take = self.arange(n)
            best[:] = matrix[take, best_idx]
            matrix[take, best_idx] = -np.inf
            np.argmax(matrix, axis=1, out=second_idx)
            second[:] = matrix[take, second_idx]
            matrix[take, best_idx] = best  # restore the winners
        return best_idx, second_idx, best, second

    def scores_into(
        self, best: np.ndarray, second: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Eq. 2 scores written into ``out`` (allocation-free
        :func:`discriminative_score` for equal-shaped 1-D arrays)."""
        n = best.shape[0]
        nonpos = self.bools("scores.nonpos", (n,))
        denom = self.floats("scores.denom", (n,), out.dtype)
        np.less_equal(second, _EPS, out=nonpos)
        np.copyto(denom, second)
        denom[nonpos] = 1.0
        np.subtract(best, second, out=out)
        np.divide(out, denom, out=out)
        out[nonpos] = 0.0
        return out


class LayerProbe(NamedTuple):
    """Outcome of probing one cache layer during an inference.

    A ``NamedTuple`` rather than a dataclass: probe records are built per
    (sample, layer) on the hot path, where tuple construction is several
    times cheaper than frozen-dataclass field assignment.

    Attributes:
        layer: index of the probed cache layer.
        top_class: class with the highest accumulated similarity.
        second_class: runner-up class (or ``-1`` with a single entry).
        score: discriminative score ``D`` of Eq. 2.
        hit: whether ``score`` exceeded the session threshold.
    """

    layer: int
    top_class: int
    second_class: int
    score: float
    hit: bool


class SemanticCache:
    """Per-layer class centroids plus the Eq. 1/2 lookup machinery.

    Args:
        num_classes: size of the class universe (row space of the global
            cache table this cache was extracted from).
        alpha: Eq. 1 decay for previous-layer accumulated similarity.
        theta: Eq. 2 discriminative-score hit threshold.
        dtype: storage/compute dtype of the probe path (``float32``
            default; ``float64`` is the exact-equivalence mode).
        prune_threshold: entry count at which a layer gains an A-LSH
            candidate index and probes switch to the pruned kernel
            (``None`` disables pruning everywhere — the exact mode).
        prune_seed: seed of the per-layer LSH hyperplane draws.
        quantize_threshold: entry count at which a layer additionally
            stores a :class:`QuantizedTier` and probes switch to the
            two-tier coarse-then-exact-rescore kernel (``None``
            disables quantization everywhere).
        quantize_dtype: code dtype of the quantized tier — ``int8``
            (symmetric per-row scale, the default) or ``float16``.
        coarse_margin: empirical slack added on top of the provable
            ``2 * bound`` coarse-candidate margin; larger keeps more
            candidates (safer against cross-layer rank drift, slower).
        probe_threads: worker count of the thread-blocked dense kernel
            (1 = single-threaded; mutable via :meth:`set_probe_threads`
            so cluster nodes can apply a per-node budget).
    """

    def __init__(
        self,
        num_classes: int,
        alpha: float = 0.5,
        theta: float = 0.05,
        dtype: DTypeLike = np.float32,
        prune_threshold: int | None = None,
        prune_seed: int = 0,
        quantize_threshold: int | None = None,
        quantize_dtype: DTypeLike = np.int8,
        coarse_margin: float = 0.05,
        probe_threads: int = 1,
    ) -> None:
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.dtype = np.dtype(dtype)
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {[str(d) for d in SUPPORTED_DTYPES]}, "
                f"got {self.dtype}"
            )
        if prune_threshold is not None and prune_threshold < 2:
            raise ValueError(
                f"prune_threshold must be >= 2 (a layer needs a runner-up), "
                f"got {prune_threshold}"
            )
        if quantize_threshold is not None and quantize_threshold < 2:
            raise ValueError(
                f"quantize_threshold must be >= 2 (a layer needs a runner-up), "
                f"got {quantize_threshold}"
            )
        self.quantize_dtype = np.dtype(quantize_dtype)
        if self.quantize_dtype not in QUANTIZED_DTYPES:
            raise ValueError(
                f"quantize_dtype must be one of "
                f"{[str(d) for d in QUANTIZED_DTYPES]}, got {self.quantize_dtype}"
            )
        if coarse_margin < 0:
            raise ValueError(f"coarse_margin must be >= 0, got {coarse_margin}")
        if probe_threads < 1:
            raise ValueError(f"probe_threads must be >= 1, got {probe_threads}")
        self.num_classes = num_classes
        self.alpha = alpha
        self.theta = theta
        self.prune_threshold = prune_threshold
        self.prune_seed = int(prune_seed)
        self.quantize_threshold = quantize_threshold
        self.coarse_margin = float(coarse_margin)
        self.probe_threads = int(probe_threads)
        self._layers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: Per-layer A-LSH candidate indexes (pruned layers only).
        self._indexes: dict[int, AdaptiveLSH] = {}
        #: Per-layer quantized companion storage (quantized layers only).
        self._quantized: dict[int, QuantizedTier] = {}
        #: Per-layer class -> column maps (pruned / quantized layers
        #: only): session shortlists and candidate sets are class-id
        #: sets, resolved to each layer's columns through these.
        self._positions: dict[int, np.ndarray] = {}
        # Optional per-layer absolute similarity floors: a hit additionally
        # requires the top entry's *current-layer* cosine to reach the
        # floor.  The relative score D alone cannot reject a sample of an
        # uncached class whose nearest cached entry happens to be isolated
        # (large relative gap at modest absolute similarity); the floor —
        # calibrated by the server from true-hit similarities on the
        # shared dataset — closes exactly that hole.
        self._similarity_floor: dict[int, float] = {}
        #: Layers whose centroid matrix is a borrowed read-only view
        #: (e.g. an mmap slice owned by a snapshot store) instead of a
        #: private copy.  A view layer is promoted to RAM by the first
        #: :meth:`set_layer_entries` write.
        self._view_layers: set[int] = set()

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------

    def set_layer_entries(
        self, layer: int, class_ids: np.ndarray, centroids: np.ndarray
    ) -> None:
        """Install the entries of one cache layer (replacing any previous).

        Args:
            layer: cache-layer index.
            class_ids: integer array of shape ``(n,)``.
            centroids: float array of shape ``(n, d)``; rows are normalized
                to unit L2 norm (in double precision) on insertion, then
                stored C-contiguous in the cache dtype.
        """
        ids = np.asarray(class_ids, dtype=int)
        mat = np.asarray(centroids, dtype=np.float64)
        if ids.ndim != 1 or mat.ndim != 2 or ids.shape[0] != mat.shape[0]:
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, centroids {mat.shape}"
            )
        if ids.size == 0:
            self._layers.pop(layer, None)
            self._indexes.pop(layer, None)
            self._quantized.pop(layer, None)
            self._positions.pop(layer, None)
            self._view_layers.discard(layer)
            return
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate class ids in one cache layer")
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError("class id out of range")
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        if np.any(norms < _EPS):
            raise ValueError("cannot cache a zero centroid")
        stored = np.ascontiguousarray(mat / norms, dtype=self.dtype)
        self._layers[layer] = (ids.copy(), stored)
        # A write replaces any borrowed view: the layer now owns a
        # private RAM copy (the promotion contract of mapped serving).
        self._view_layers.discard(layer)
        if contracts.ENABLED:
            contracts.check_layer_entries(
                layer, ids, stored, self.dtype, self.num_classes
            )
        self._refresh_index(layer, ids, stored)
        self._refresh_quantized(layer, stored)
        self._refresh_positions(layer, ids)

    def set_layer_view(
        self, layer: int, class_ids: np.ndarray, centroids: np.ndarray
    ) -> None:
        """Point one cache layer at a borrowed read-only centroid matrix.

        Unlike :meth:`set_layer_entries`, the matrix is **not** copied or
        re-normalized: the cache stores a read-only view of ``centroids``
        (typically an mmap slice owned by a
        :class:`~repro.store.reader.MappedTableStore`), so untouched
        layer blocks are only faulted in from disk when a probe first
        reaches them.  Rows must therefore already be unit-normalized —
        true for any layer written by the snapshot writer, whose source
        tables keep merged rows normalized.  The first
        :meth:`set_layer_entries` write to the layer replaces the view
        with a private RAM copy.

        Args:
            layer: cache-layer index.
            class_ids: integer array of shape ``(n,)``.
            centroids: C-contiguous array of shape ``(n, d)`` whose dtype
                equals the cache dtype (no silent conversion — a cast
                would copy and defeat the mapping).
        """
        ids = np.asarray(class_ids, dtype=int)
        mat = np.asarray(centroids)
        if ids.ndim != 1 or mat.ndim != 2 or ids.shape[0] != mat.shape[0]:
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, centroids {mat.shape}"
            )
        if ids.size == 0:
            self._layers.pop(layer, None)
            self._indexes.pop(layer, None)
            self._quantized.pop(layer, None)
            self._positions.pop(layer, None)
            self._view_layers.discard(layer)
            return
        if mat.dtype != self.dtype:
            raise ValueError(
                f"view dtype {mat.dtype} does not match cache dtype "
                f"{self.dtype}; converting would copy — use "
                f"set_layer_entries for owned storage"
            )
        if not mat.flags.c_contiguous:
            raise ValueError("a layer view must be C-contiguous")
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate class ids in one cache layer")
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError("class id out of range")
        view = mat.view()
        view.flags.writeable = False
        self._layers[layer] = (ids.copy(), view)
        self._view_layers.add(layer)
        if contracts.ENABLED:
            contracts.check_layer_entries(
                layer, ids, view, self.dtype, self.num_classes
            )
        self._refresh_index(layer, ids, view)
        self._refresh_quantized(layer, view)
        self._refresh_positions(layer, ids)

    def _refresh_index(
        self, layer: int, ids: np.ndarray, stored: np.ndarray
    ) -> None:
        """Build / rebuild / drop the layer's A-LSH candidate index."""
        if self.prune_threshold is None or stored.shape[0] < self.prune_threshold:
            self._indexes.pop(layer, None)
            return
        index = self._indexes.get(layer)
        if index is None or index.dim != stored.shape[1]:
            index = AdaptiveLSH(
                dim=stored.shape[1],
                rng=derive_rng(self.prune_seed, "cache.prune-lsh", index=layer),
                base_bits=7,
                max_bits=18,
                # Bucket capacity is clamped to [16, 64]: beyond the
                # clamp, candidate neighbourhoods stay bounded as the
                # cache grows — that is where sub-linear lookup comes
                # from.
                max_bucket_size=min(64, max(16, self.prune_threshold // 16)),
                multi_probe=2,
            )
            self._indexes[layer] = index
        # Hyperplanes are anchored at the layer's centroid mean: cached
        # semantic vectors share a large common component, and
        # origin-anchored planes would barely separate them.
        index.set_center(stored.mean(axis=0))
        index.rebuild(stored)

    def _refresh_quantized(self, layer: int, stored: np.ndarray) -> None:
        """Build / drop the layer's quantized companion storage."""
        if (
            self.quantize_threshold is None
            or stored.shape[0] < self.quantize_threshold
        ):
            self._quantized.pop(layer, None)
            return
        tier = quantize_rows(stored, self.quantize_dtype)
        self._quantized[layer] = tier
        if contracts.ENABLED:
            contracts.check_quantized_tier(
                layer, stored, tier.codes, tier.scales, tier.staged, tier.bound
            )

    def _refresh_positions(self, layer: int, ids: np.ndarray) -> None:
        """Maintain the class -> column map of an accelerated layer."""
        if layer not in self._indexes and layer not in self._quantized:
            self._positions.pop(layer, None)
            return
        positions = np.full(self.num_classes, -1, dtype=np.int64)
        positions[ids] = np.arange(ids.size)
        self._positions[layer] = positions

    def pruned_layers(self) -> list[int]:
        """Layers currently probed through the A-LSH shortlist."""
        return sorted(self._indexes)

    def quantized_layers(self) -> list[int]:
        """Layers currently probed through the two-tier quantized kernel."""
        return sorted(self._quantized)

    def shortlist_layers(self) -> list[int]:
        """Layers a session shortlist / candidate set can be primed from
        (pruned or quantized), in depth order — engines prime from the
        deepest."""
        return sorted(set(self._indexes) | set(self._quantized))

    def view_backed_layers(self) -> list[int]:
        """Layers served from borrowed read-only views (mapped storage)."""
        return sorted(self._view_layers)

    def is_view_backed(self, layer: int) -> bool:
        """Whether a layer's centroids are a borrowed read-only view."""
        return layer in self._view_layers

    def quantized_tier(self, layer: int) -> QuantizedTier | None:
        """The layer's quantized companion storage (``None`` when the
        layer is below the threshold or quantization is disabled)."""
        return self._quantized.get(layer)

    def set_probe_threads(self, probe_threads: int) -> None:
        """Apply a (per-node) worker budget to the probe kernels."""
        if probe_threads < 1:
            raise ValueError(f"probe_threads must be >= 1, got {probe_threads}")
        self.probe_threads = int(probe_threads)

    def set_similarity_floor(self, layer: int, floor: float) -> None:
        """Require a minimum top-entry cosine at ``layer`` for a hit."""
        if not -1.0 <= floor <= 1.0:
            raise ValueError(f"floor must be a cosine in [-1, 1], got {floor}")
        self._similarity_floor[layer] = float(floor)

    def similarity_floor(self, layer: int) -> float:
        """The hit floor at a layer (-1 when none is set)."""
        return self._similarity_floor.get(layer, -1.0)

    def clear(self) -> None:
        self._layers.clear()
        self._indexes.clear()
        self._quantized.clear()
        self._positions.clear()
        self._similarity_floor.clear()
        self._view_layers.clear()

    @property
    def active_layers(self) -> list[int]:
        """Activated cache-layer indices in lookup (ascending) order."""
        return sorted(self._layers)

    def num_entries(self, layer: int) -> int:
        if layer not in self._layers:
            return 0
        return int(self._layers[layer][0].size)

    @property
    def total_entries(self) -> int:
        return sum(ids.size for ids, _ in self._layers.values())

    def entries_at(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """(class ids, centroid matrix) of one layer (copies)."""
        if layer not in self._layers:
            raise KeyError(f"cache layer {layer} is not activated")
        ids, mat = self._layers[layer]
        return ids.copy(), mat.copy()

    def classes_at(self, layer: int) -> set[int]:
        if layer not in self._layers:
            return set()
        return set(int(i) for i in self._layers[layer][0])

    def size_bytes(self, entry_size_of_layer: Callable[[int], int]) -> int:
        """Total memory under a per-layer entry-size function (Eq. 6)."""
        return sum(
            ids.size * int(entry_size_of_layer(layer))
            for layer, (ids, _) in self._layers.items()
        )

    def content_equal(self, other: "SemanticCache", atol: float = 0.0) -> bool:
        """Whether two caches would serve identical lookups.

        Compares the lookup-relevant state: hyper-parameters (alpha,
        theta, dtype), the activated layers, each layer's (class id,
        centroid) entries, and the per-layer similarity floors.  With
        ``atol=0`` the centroid comparison is exact — the contract a
        replicated server must satisfy (e.g. a 1-shard cluster node
        against the single-server reference).
        """
        if (
            self.num_classes != other.num_classes
            or self.alpha != other.alpha
            or self.theta != other.theta
            or self.dtype != other.dtype
            or self.active_layers != other.active_layers
        ):
            return False
        for layer in self.active_layers:
            ids_a, mat_a = self._layers[layer]
            ids_b, mat_b = other._layers[layer]
            if not np.array_equal(ids_a, ids_b):
                return False
            if atol == 0.0:
                if not np.array_equal(mat_a, mat_b):
                    return False
            elif not np.allclose(mat_a, mat_b, atol=atol, rtol=0.0):
                return False
            floor_gap = abs(
                self.similarity_floor(layer) - other.similarity_floor(layer)
            )
            if floor_gap > atol:
                return False
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def start_session(self) -> "LookupSession":
        """Begin the per-inference sequential lookup."""
        return LookupSession(self)

    def start_batch_session(
        self, batch_size: int, workspace: LookupWorkspace | None = None
    ) -> "BatchedLookupSession":
        """Begin a vectorized lookup over a batch of concurrent inferences.

        Pass a long-lived :class:`LookupWorkspace` (e.g. the engine's) to
        reuse probe buffers across sessions; without one the session
        allocates a private workspace.
        """
        return BatchedLookupSession(self, batch_size, workspace=workspace)

    def __repr__(self) -> str:
        layers = {j: self.num_entries(j) for j in self.active_layers}
        return (
            f"SemanticCache(theta={self.theta}, dtype={self.dtype.name}, "
            f"layers={layers})"
        )


class LookupSession:
    """Accumulates Eq. 1 scores across the activated layers of one inference.

    Probe layers in ascending order via :meth:`probe`; the session keeps the
    per-class accumulated similarity ``A`` between calls.  Math runs in the
    cache's dtype; with pruning enabled, the first probe of an indexed
    layer pins the session's candidate-class shortlist (the query's
    multi-probe LSH buckets) and subsequent indexed layers score only
    those classes' columns — falling back to the dense scan when the
    shortlist resolves to fewer than two columns.
    """

    def __init__(self, cache: SemanticCache) -> None:
        self._cache = cache
        self._accumulated = np.zeros(cache.num_classes, dtype=cache.dtype)
        self._shortlist: np.ndarray | None = None  # LSH candidate class ids
        self._candidates: np.ndarray | None = None  # coarse-tier class ids
        self._primed = False

    def accumulated_score(self, class_id: int) -> float:
        """Current ``A`` value of a class (0 before its first probe)."""
        return float(self._accumulated[class_id])

    def prime_shortlist(self, layer: int, vector: np.ndarray) -> None:
        """Pin the session's candidate shortlist from a chosen layer.

        Class separation grows with depth, so the deepest activated
        accelerated layer concentrates best — engines prime from there
        before probing shallow layers.  An indexed layer pins the LSH
        shortlist; a quantized layer additionally runs the coarse tier
        (over the shortlist's columns when both are present) and pins
        the re-score candidate set.  No-op when the layer has neither
        accelerator or the session is already primed.
        """
        if self._primed:
            return
        cache = self._cache
        index = cache._indexes.get(layer)
        tier = cache._quantized.get(layer)
        if index is None and tier is None:
            return
        self._primed = True
        vec = np.asarray(vector, dtype=float)
        ids = cache._layers[layer][0]
        if index is not None and self._shortlist is None:
            # ``query`` unions disjoint buckets, so the candidate
            # positions (and the gathered class ids) are duplicate-free.
            candidates = index.query(vec)
            self._shortlist = ids[np.asarray(candidates, dtype=np.intp)]
        if tier is not None:
            cols: np.ndarray | None = None
            if self._shortlist is not None:
                pos = cache._positions[layer][self._shortlist]
                pos = pos[pos >= 0]
                if 2 <= pos.size < ids.size:
                    cols = pos
            staged = tier.staged if cols is None else tier.staged[cols]
            sub_ids = ids if cols is None else ids[cols]
            coarse = staged @ vec.astype(np.float32, copy=False)
            if coarse.size >= 2:
                order = np.argsort(coarse)
                second = float(coarse[order[-2]])
                margin = 2.0 * tier.bound + cache.coarse_margin
                keep = np.flatnonzero(coarse >= second - margin)
                if 2 <= keep.size < ids.size:
                    self._candidates = sub_ids[keep]

    def probe(self, layer: int, vector: np.ndarray) -> LayerProbe:
        """Probe one activated layer with the sample's semantic vector.

        Returns a :class:`LayerProbe`; ``hit`` is ``True`` when the Eq. 2
        score exceeds the cache's theta.  A layer with fewer than two
        entries can never hit (the discriminative score needs a runner-up).
        """
        cache = self._cache
        ids, mat = cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        if isinstance(vector, np.ndarray) and vector.dtype == cache.dtype:
            vec = vector  # already conforming: no cast, no copy
        else:
            vec = np.asarray(vector, dtype=cache.dtype)
        if vec.shape != (mat.shape[1],):
            raise ValueError(
                f"vector shape {vec.shape} does not match centroid dim {mat.shape[1]}"
            )
        if ids.size < 2:
            similarity = mat @ vec
            updated = similarity + cache.alpha * self._accumulated[ids]
            self._accumulated[ids] = updated
            top = int(ids[0]) if ids.size == 1 else -1
            return LayerProbe(
                layer=layer, top_class=top, second_class=-1, score=0.0, hit=False
            )

        if cache._quantized.get(layer) is not None:
            self.prime_shortlist(layer, vec)
            if self._candidates is not None:
                cols = cache._positions[layer][self._candidates]
                cols = cols[cols >= 0]
                if cols.size >= 2:
                    # Exact float32/float64 re-score of the coarse-tier
                    # candidates: decisions come from full precision.
                    return self._finish(layer, ids[cols], mat[cols] @ vec)
        if cache._indexes.get(layer) is not None:
            self.prime_shortlist(layer, vec)
            if self._shortlist is not None:
                cols = cache._positions[layer][self._shortlist]
                cols = cols[cols >= 0]
                if cols.size >= 2:
                    return self._finish(layer, ids[cols], mat[cols] @ vec)
        return self._finish(layer, ids, mat @ vec)

    def _finish(
        self, layer: int, sub_ids: np.ndarray, similarity: np.ndarray
    ) -> LayerProbe:
        """Eq. 1 fold + Eq. 2 scoring over the scored entry subset."""
        cache = self._cache
        updated = similarity + cache.alpha * self._accumulated[sub_ids]
        self._accumulated[sub_ids] = updated
        order = np.argsort(updated)
        best_idx, second_idx = order[-1], order[-2]
        a_best = float(updated[best_idx])
        a_second = float(updated[second_idx])
        score = discriminative_score(a_best, a_second)
        floor = cache.similarity_floor(layer)
        hit = (
            score > cache.theta
            and a_best > 0
            and float(similarity[best_idx]) >= floor
        )
        return LayerProbe(
            layer=layer,
            top_class=int(sub_ids[best_idx]),
            second_class=int(sub_ids[second_idx]),
            score=score,
            hit=hit,
        )


@dataclass(frozen=True)
class BatchLayerProbe:
    """Outcome of probing one cache layer for a batch of samples.

    All arrays are aligned with ``rows`` (the batch rows probed); entry
    semantics per row match the scalar :class:`LayerProbe` fields.
    """

    layer: int
    rows: np.ndarray
    top_class: np.ndarray
    second_class: np.ndarray
    score: np.ndarray
    hit: np.ndarray


class BatchedLookupSession:
    """Eq. 1/2 accumulation for a whole batch of concurrent inferences.

    The accumulated-similarity state lives in the cache dtype in one of
    two layouts.  While every probed layer scores the *same* entry-id
    set — the common case: ACA allocates one hot-spot class set across
    its activated layers, and the pruned kernel pins one shortlist per
    session — the accumulator is a ``(batch, n_entries)`` matrix aligned
    with the scored columns, so Eq. 1 needs only contiguous row
    gathers.  The first layer that scores a *different* id set spills
    into the general ``(batch, num_classes)`` matrix, which every
    later probe addresses through flat-index gather/scatter.  Each
    :meth:`probe` call advances one cache layer for the still-alive
    subset of rows with a single ``(n_alive, d) @ (d, n_entries)``
    matmul followed by vectorized top-2 selection and scoring — the
    batch counterpart of running one :class:`LookupSession` per sample.
    All intermediates live in the session's :class:`LookupWorkspace`;
    only the per-row result arrays of each :class:`BatchLayerProbe` are
    freshly allocated.
    """

    def __init__(
        self,
        cache: SemanticCache,
        batch_size: int,
        workspace: LookupWorkspace | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._cache = cache
        self.batch_size = batch_size
        self._workspace = workspace if workspace is not None else LookupWorkspace()
        #: Column-mode accumulator state: the id set shared by every
        #: layer probed so far and its (batch, n_entries) A matrix.
        self._acc_ids: np.ndarray | None = None
        self._acc_cols: np.ndarray | None = None
        #: General accumulator, lazily materialized on id-set divergence.
        self._acc_full: np.ndarray | None = None
        self._shortlist: np.ndarray | None = None  # LSH candidate class ids
        self._candidates: np.ndarray | None = None  # coarse-tier class ids
        self._primed = False
        #: Optional wall-clock stage accumulator (seconds) for the
        #: ``repro profile-round`` probe split: ``"shortlist"`` covers
        #: session priming (LSH buckets + the coarse quantized pass),
        #: ``"rescore"`` the exact dense-kernel scoring.
        self.timings: dict[str, float] | None = None

    def _spill_to_full(self) -> None:
        """Leave column mode: scatter A into the (batch, num_classes)
        matrix (one-way — later probes use flat-index addressing)."""
        self._acc_full = np.zeros(
            (self.batch_size, self._cache.num_classes), dtype=self._cache.dtype
        )
        if self._acc_ids is not None:
            self._acc_full[:, self._acc_ids] = self._acc_cols
        self._acc_ids = None
        self._acc_cols = None

    def accumulated_score(self, row: int, class_id: int) -> float:
        """Current ``A`` value of a class for one batch row."""
        if self._acc_full is not None:
            return float(self._acc_full[row, class_id])
        if self._acc_ids is None:
            return 0.0
        position = np.flatnonzero(self._acc_ids == class_id)
        if position.size == 0:
            return 0.0
        return float(self._acc_cols[row, position[0]])

    def prime_shortlist(self, layer: int, vectors: np.ndarray) -> None:
        """Pin the session's candidate shortlist from a chosen layer.

        An indexed layer unions the multi-probe A-LSH buckets of every
        query into the session shortlist; a quantized layer additionally
        runs the coarse tier — one staged-float32 matmul over the
        shortlist's columns (or all columns) — and pins the re-score
        candidate set.  Class separation grows with depth, so engines
        prime from the *deepest* activated accelerated layer — it
        concentrates far better than the shallow layers a session
        probes first.  No-op when the layer has no accelerator or the
        session is already primed (probing an accelerated layer without
        priming primes from that layer instead).
        """
        if self._primed:
            return
        cache = self._cache
        index = cache._indexes.get(layer)
        tier = cache._quantized.get(layer)
        if index is None and tier is None:
            return
        self._primed = True
        start = time.perf_counter() if self.timings is not None else 0.0
        if index is not None and self._shortlist is None:
            ids = cache._layers[layer][0]
            # ``shortlist`` returns sorted unique positions and a layer
            # stores each class once, so the gather is duplicate-free.
            self._shortlist = ids[index.shortlist(vectors)]
        if tier is not None:
            self._coarse_candidates(layer, tier, vectors)
        if self.timings is not None:
            self.timings["shortlist"] = (
                self.timings.get("shortlist", 0.0) + time.perf_counter() - start
            )

    def _coarse_candidates(
        self, layer: int, tier: QuantizedTier, vectors: np.ndarray
    ) -> None:
        """Coarse quantized pass: pin the session's re-score candidates.

        Scores the staged dequantized matrix (restricted to the LSH
        shortlist's columns when one is pinned) against every query in
        one float32 matmul, then keeps each column whose coarse score
        reaches any row's runner-up minus ``2 * bound + coarse_margin``:
        for unit-norm queries, a column whose *exact* score reaches the
        exact top-2 of the primed layer can never fall below that
        threshold (each coarse score is within ``bound`` of its exact
        score, and the second order statistic moves by at most
        ``bound``), so the provable part of the margin guarantees the
        primed layer's decisive columns survive; ``coarse_margin``
        covers cross-layer rank drift.  Degenerate selections (fewer
        than two candidates, or no reduction) leave the candidate set
        unpinned and probes fall back to the shortlist / dense kernels.
        """
        # repro-lint: kernel
        cache = self._cache
        ws = self._workspace
        ids = cache._layers[layer][0]
        cols: np.ndarray | None = None
        if self._shortlist is not None:
            pos = cache._positions[layer][self._shortlist]
            pos = pos[pos >= 0]
            if 2 <= pos.size < ids.size:
                cols = pos
        if cols is None:
            sub = tier.staged
            sub_ids = ids
        else:
            sub = ws.floats(
                "coarse.mat", (cols.size, tier.staged.shape[1]), np.float32
            )
            np.take(tier.staged, cols, axis=0, out=sub)
            sub_ids = ids[cols]
        n, e = vectors.shape[0], sub.shape[0]
        if vectors.dtype == np.float32:
            qvecs = vectors
        else:
            qvecs = ws.floats("coarse.vecs", vectors.shape, np.float32)
            np.copyto(qvecs, vectors)
        coarse = ws.floats("coarse.sim", (n, e), np.float32)
        if contracts.ENABLED:
            contracts.check_distinct_views(coarse=coarse, qvecs=qvecs, sub=sub)
        np.matmul(qvecs, sub.T, out=coarse)
        _, _, _, second = ws.top2(coarse)
        margin = np.float32(2.0 * tier.bound + cache.coarse_margin)
        thresh = ws.floats("coarse.thresh", (n,), np.float32)
        np.subtract(second, margin, out=thresh)
        mask = ws.bools("coarse.mask", (n, e))
        np.greater_equal(coarse, thresh[:, None], out=mask)
        keep = ws.bools("coarse.keep", (e,))
        np.any(mask, axis=0, out=keep)
        cand = np.flatnonzero(keep)
        if 2 <= cand.size < ids.size:
            self._candidates = sub_ids[cand]
            if contracts.ENABLED:
                contracts.check_candidate_ids(
                    self._candidates, cache.num_classes
                )

    def probe(
        self, layer: int, vectors: np.ndarray, rows: np.ndarray | None = None
    ) -> BatchLayerProbe:
        """Probe one activated layer for a subset of batch rows.

        Args:
            layer: activated cache layer to probe.
            vectors: ``(n, d)`` semantic vectors of the probed samples.
            rows: batch-row index of each vector (default: all rows, in
                which case ``n`` must equal the batch size).

        An empty ``rows`` subset returns an empty probe (no work, no
        degenerate-layer special casing).
        """
        cache = self._cache
        ids, mat = cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        if (
            isinstance(vectors, np.ndarray)
            and vectors.dtype == cache.dtype
            and vectors.ndim == 2
        ):
            vecs = vectors  # already conforming: no cast, no copy
        else:
            vecs = np.asarray(vectors, dtype=cache.dtype)
        if rows is None:
            rows = np.arange(self.batch_size)
        else:
            rows = np.asarray(rows, dtype=int)
        if vecs.ndim != 2 or vecs.shape != (rows.size, mat.shape[1]):
            raise ValueError(
                f"vectors shape {vecs.shape} does not match "
                f"({rows.size}, {mat.shape[1]})"
            )

        n = rows.size
        if n == 0:
            return BatchLayerProbe(
                layer=layer,
                rows=rows,
                top_class=np.empty(0, dtype=int),
                second_class=np.empty(0, dtype=int),
                score=np.empty(0, dtype=cache.dtype),
                hit=np.empty(0, dtype=bool),
            )
        if ids.size < 2:
            similarity = vecs @ mat.T
            self._fold(similarity, ids, rows)
            top = int(ids[0]) if ids.size == 1 else -1
            return BatchLayerProbe(
                layer=layer,
                rows=rows,
                top_class=np.full(n, top, dtype=int),
                second_class=np.full(n, -1, dtype=int),
                score=np.zeros(n, dtype=cache.dtype),
                hit=np.zeros(n, dtype=bool),
            )

        if cache._quantized.get(layer) is not None:
            return self._probe_twotier(layer, ids, mat, vecs, rows)
        if cache._indexes.get(layer) is not None:
            return self._probe_pruned(layer, ids, mat, vecs, rows)
        return self._probe_dense(layer, ids, mat, vecs, rows)

    # ------------------------------------------------------------------
    # Eq. 1 fold
    # ------------------------------------------------------------------

    def _sync_acc_mode(self, ids: np.ndarray, e: int) -> None:
        """Establish the accumulator layout for the id set about to be
        folded — column mode on the first probe / matching id sets, a
        one-way spill to the general matrix on divergence.  Called once
        per probe *before* row blocks dispatch, so the fold itself is
        free of shared-state transitions and thread-safe."""
        if self._acc_full is not None:
            return
        if self._acc_ids is None:
            self._acc_ids = ids
            self._acc_cols = np.zeros((self.batch_size, e), dtype=self._cache.dtype)
        elif self._acc_ids is not ids and not np.array_equal(self._acc_ids, ids):
            self._spill_to_full()

    def _fold(
        self, similarity: np.ndarray, ids: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Accumulate Eq. 1 over the scored entries: returns the updated
        ``A`` values (a workspace view) and writes them back.

        Stays in column mode while every probed layer scores the same id
        set (contiguous row gathers, no index arithmetic); the first
        divergent id set spills to the general per-class matrix.
        """
        self._sync_acc_mode(ids, similarity.shape[1])
        return self._fold_block(similarity, ids, rows, 0, rows.size, self._workspace)

    def _fold_block(
        self,
        similarity: np.ndarray,
        ids: np.ndarray,
        rows: np.ndarray,
        lo: int,
        hi: int,
        ws: LookupWorkspace,
    ) -> np.ndarray:
        """Eq. 1 fold of one row block (``rows[lo:hi]``) against the
        established accumulator layout.

        Fused fast path: when the block's rows are consecutive batch
        rows (the whole-batch probe, and every thread block of one),
        the accumulator slice is updated *in place* — ``A = alpha * A +
        C`` with no gather, no scratch ``upd`` buffer and no scatter —
        and the returned view aliases the accumulator.  Thread-safe for
        disjoint row blocks: every path writes only its own rows.
        """
        # repro-lint: kernel
        cache = self._cache
        n, e = similarity.shape
        rblk = rows[lo:hi]
        if self._acc_full is None:
            assert self._acc_cols is not None
            if self._consecutive(rblk, ws):
                view = self._acc_cols[int(rblk[0]) : int(rblk[0]) + n]
                np.multiply(view, cache.alpha, out=view)
                np.add(view, similarity, out=view)
                return view
            upd = ws.floats("probe.upd", (n, e), cache.dtype)
            np.take(self._acc_cols, rblk, axis=0, out=upd)
            np.multiply(upd, cache.alpha, out=upd)
            np.add(upd, similarity, out=upd)
            self._acc_cols[rblk] = upd
            return upd
        upd = ws.floats("probe.upd", (n, e), cache.dtype)
        flat = ws.ints("probe.flat", (n, e))
        row_off = ws.ints("probe.row_off", (n,))
        np.multiply(rblk, cache.num_classes, out=row_off)
        np.add(row_off[:, None], ids[None, :], out=flat)
        acc_flat = self._acc_full.reshape(-1)
        np.take(acc_flat, flat, out=upd)
        np.multiply(upd, cache.alpha, out=upd)
        np.add(upd, similarity, out=upd)
        acc_flat[flat] = upd
        return upd

    @staticmethod
    def _consecutive(rblk: np.ndarray, ws: LookupWorkspace) -> bool:
        """Whether a row block addresses strictly consecutive batch rows."""
        n = rblk.size
        if n <= 1:
            return True
        if int(rblk[n - 1]) - int(rblk[0]) != n - 1:
            return False
        mono = ws.bools("fold.mono", (n - 1,))
        np.less(rblk[:-1], rblk[1:], out=mono)
        return bool(mono.all())

    # ------------------------------------------------------------------
    # Dense (exact) kernel
    # ------------------------------------------------------------------

    def _probe_dense(
        self,
        layer: int,
        ids: np.ndarray,
        mat: np.ndarray,
        vecs: np.ndarray,
        rows: np.ndarray,
    ) -> BatchLayerProbe:
        """Exact probe: matmul + fold + top-2 + scoring, zero large allocs.

        With ``probe_threads > 1`` and enough rows, the batch splits
        into contiguous row blocks dispatched across the workspace's
        worker pool; every block runs :meth:`_dense_block` against its
        own child workspace and writes disjoint row slices of the
        parent-pooled outputs.  Row math is independent, so the blocked
        result is identical to the single-threaded one.
        """
        # repro-lint: kernel
        cache = self._cache
        ws = self._workspace
        n, e = vecs.shape[0], ids.size
        dtype = cache.dtype
        start = time.perf_counter() if self.timings is not None else 0.0
        self._sync_acc_mode(ids, e)

        top_idx = ws.ints("dense.top_idx", (n,))
        second_idx = ws.ints("dense.second_idx", (n,))
        score = ws.floats("dense.score", (n,), dtype)
        hit = ws.bools("dense.hit", (n,))
        blocks = 1
        if cache.probe_threads > 1:
            blocks = min(cache.probe_threads, n // _MIN_BLOCK_ROWS)
        if blocks > 1:
            pool = ws.executor(blocks - 1)
            step = -(-n // blocks)  # ceil division
            futures: list[Future[None]] = []
            for b in range(1, blocks):
                lo = b * step
                hi = min(n, lo + step)
                if lo >= hi:
                    continue
                futures.append(
                    pool.submit(
                        self._dense_block,
                        layer, ids, mat, vecs, rows, lo, hi,
                        ws.for_thread(b), top_idx, second_idx, score, hit,
                    )
                )
            self._dense_block(
                layer, ids, mat, vecs, rows, 0, min(n, step),
                ws.for_thread(0), top_idx, second_idx, score, hit,
            )
            for future in futures:
                future.result()
        else:
            self._dense_block(
                layer, ids, mat, vecs, rows, 0, n,
                ws, top_idx, second_idx, score, hit,
            )
        if self.timings is not None:
            self.timings["rescore"] = (
                self.timings.get("rescore", 0.0) + time.perf_counter() - start
            )
        return BatchLayerProbe(
            layer=layer,
            rows=rows,
            top_class=ids[top_idx],
            second_class=ids[second_idx],
            score=score.copy(),
            hit=hit.copy(),
        )

    def _dense_block(
        self,
        layer: int,
        ids: np.ndarray,
        mat: np.ndarray,
        vecs: np.ndarray,
        rows: np.ndarray,
        lo: int,
        hi: int,
        ws: LookupWorkspace,
        top_idx_out: np.ndarray,
        second_idx_out: np.ndarray,
        score_out: np.ndarray,
        hit_out: np.ndarray,
    ) -> None:
        """One row block of the dense kernel: matmul over ``vecs[lo:hi]``,
        Eq. 1 fold, top-2 selection, Eq. 2 scoring and the floor check —
        all scratch from the block's own workspace, all per-row results
        written into the caller's ``[lo:hi]`` output slices."""
        # repro-lint: kernel
        cache = self._cache
        n, e = hi - lo, ids.size
        dtype = cache.dtype
        vblk = vecs[lo:hi]

        sim = ws.floats("probe.sim", (n, e), dtype)
        if contracts.ENABLED:
            contracts.check_distinct_views(sim=sim, vecs=vblk, mat=mat)
        np.matmul(vblk, mat.T, out=sim)
        upd = self._fold_block(sim, ids, rows, lo, hi, ws)
        if contracts.ENABLED:
            contracts.check_distinct_views(sim=sim, upd=upd)

        best_idx, second_idx, a_best, a_second = ws.top2(upd)
        score = score_out[lo:hi]
        ws.scores_into(a_best, a_second, score)

        hit = hit_out[lo:hi]
        aux = ws.bools("probe.aux", (n,))
        np.greater(score, cache.theta, out=hit)
        np.greater(a_best, 0, out=aux)
        np.logical_and(hit, aux, out=hit)
        sim_best = ws.floats("probe.sim_best", (n,), dtype)
        best_flat = ws.ints("probe.best_flat", (n,))
        np.multiply(ws.arange(n), e, out=best_flat)
        np.add(best_flat, best_idx, out=best_flat)
        np.take(sim.reshape(-1), best_flat, out=sim_best)
        np.greater_equal(sim_best, cache.similarity_floor(layer), out=aux)
        np.logical_and(hit, aux, out=hit)
        top_idx_out[lo:hi] = best_idx
        second_idx_out[lo:hi] = second_idx

    # ------------------------------------------------------------------
    # LSH-pruned kernel
    # ------------------------------------------------------------------

    def _probe_pruned(
        self,
        layer: int,
        ids: np.ndarray,
        mat: np.ndarray,
        vecs: np.ndarray,
        rows: np.ndarray,
    ) -> BatchLayerProbe:
        """Approximate probe: the dense kernel on the session shortlist.

        The first pruned probe of the session unions the multi-probe
        LSH buckets of every probed row into a pinned candidate-class
        shortlist (rows only ever leave a batch, so the first probed
        set covers all later ones).  Each pruned layer then gathers the
        shortlist's columns once and runs the exact dense kernel on the
        sub-matrix: accumulation stays consistent across layers, and a
        batch dominated by hot-spot runs probes a small fraction of the
        cache.  Falls back to the full dense kernel when the shortlist
        resolves to fewer than two of this layer's columns (no Eq. 2
        runner-up) or to no reduction at all.
        """
        cache = self._cache
        ws = self._workspace
        self.prime_shortlist(layer, vecs)
        if self._shortlist is None:
            # Session primed at a quantized-only layer: no LSH shortlist
            # exists, so this indexed layer probes dense.
            return self._probe_dense(layer, ids, mat, vecs, rows)
        cols = cache._positions[layer][self._shortlist]
        cols = cols[cols >= 0]
        if cols.size < 2 or cols.size >= ids.size:
            return self._probe_dense(layer, ids, mat, vecs, rows)
        sub_mat = ws.floats(
            "pruned.mat", (cols.size, mat.shape[1]), cache.dtype
        )
        np.take(mat, cols, axis=0, out=sub_mat)
        return self._probe_dense(layer, ids[cols], sub_mat, vecs, rows)

    # ------------------------------------------------------------------
    # Two-tier quantized kernel
    # ------------------------------------------------------------------

    def _probe_twotier(
        self,
        layer: int,
        ids: np.ndarray,
        mat: np.ndarray,
        vecs: np.ndarray,
        rows: np.ndarray,
    ) -> BatchLayerProbe:
        """Two-tier probe: coarse quantized shortlist, exact re-score.

        The session's first quantized probe runs the coarse tier (via
        :meth:`prime_shortlist`, unless an engine already primed from a
        deeper layer); every quantized layer then gathers the pinned
        candidate set's columns and runs the **exact** dense kernel on
        the full-precision sub-matrix, so Eq. 1 accumulation and Eq. 2
        decisions are computed entirely in the cache dtype — the
        quantized codes only ever choose *which* columns to score.
        Falls back to the LSH-pruned or dense kernel when the candidate
        set is unpinned or resolves to fewer than two of this layer's
        columns.
        """
        # repro-lint: kernel
        cache = self._cache
        ws = self._workspace
        self.prime_shortlist(layer, vecs)
        if self._candidates is None:
            if cache._indexes.get(layer) is not None:
                return self._probe_pruned(layer, ids, mat, vecs, rows)
            return self._probe_dense(layer, ids, mat, vecs, rows)
        cols = cache._positions[layer][self._candidates]
        cols = cols[cols >= 0]
        if cols.size < 2 or cols.size >= ids.size:
            return self._probe_dense(layer, ids, mat, vecs, rows)
        sub_mat = ws.floats(
            "rescore.mat", (cols.size, mat.shape[1]), cache.dtype
        )
        np.take(mat, cols, axis=0, out=sub_mat)
        return self._probe_dense(layer, ids[cols], sub_mat, vecs, rows)
