"""The class-based semantic cache (Sec. II-3).

A :class:`SemanticCache` holds, per activated cache layer, one unit-norm
semantic centroid per hot-spot class.  During inference a
:class:`LookupSession` walks the activated layers in order, accumulating
per-class cosine similarities:

    A[i, j] = C[i, j] + alpha * A[i, j-1]                       (Eq. 1)

where ``C[i, j]`` is the cosine similarity between the sample's layer-``j``
semantic vector and class ``i``'s cached centroid, and ``j-1`` is the
*previously probed* layer.  The layer's discriminative score compares the
two best classes ``a`` and ``b``:

    D[j] = (A[a, j] - A[b, j]) / A[b, j]                        (Eq. 2)

The cache hits when ``D[j]`` exceeds the threshold theta; inference then
terminates early returning class ``a``.  Eq. 2 presumes a positive
runner-up: when ``A[b] <= 0`` the relative gap is undefined and no
confident hit is possible, so :func:`discriminative_score` clamps ``D``
to 0 instead of dividing by a tiny epsilon.

Two session flavours share the machinery: :class:`LookupSession` walks
one sample at a time, and :class:`BatchedLookupSession` runs a whole
batch of samples per layer as single NumPy matrix operations (one
``(n_alive, d) @ (d, n_entries)`` product, vectorized Eq. 1/2), producing
outcomes identical to the scalar path.

Serving-path performance rests on three policies layered on top:

* **Dtype policy.**  Centroid matrices are stored C-contiguous in a
  configurable dtype, ``float32`` by default: unit-norm cosine geometry
  loses nothing observable at single precision (scores carry ~1e-6
  relative rounding against margins of ~1e-2) while matmul bandwidth and
  FLOP throughput double.  Session accumulators match the cache dtype,
  so all probe math runs in single precision end to end.  Constructing
  with ``dtype=np.float64`` restores the bit-exact double-precision
  path the exact-equivalence suites run on.
* **Zero-allocation kernel.**  A :class:`LookupWorkspace` owns reusable
  flat buffer pools; the batched probe writes its matmul, accumulator
  gather/scatter, top-2 selection and scoring into workspace views
  (``out=`` everywhere), so steady-state probes allocate only their
  small per-row output arrays.  Engines own a workspace and thread it
  through every session they open, so buffers persist across probes,
  batches and protocol rounds.
* **LSH-pruned candidate lookup.**  With ``prune_threshold`` set, any
  layer holding at least that many entries keeps an array-backed
  :class:`~repro.lsh.alsh.AdaptiveLSH` index over its centroids
  (rebuilt in place — same hyperplanes — whenever
  :meth:`SemanticCache.set_layer_entries` replaces the layer).  At a
  session's first pruned probe, the multi-probe buckets of every query
  in the batch are unioned into one *session shortlist* of candidate
  classes; every pruned layer is then probed with the exact dense
  kernel restricted to that shortlist's columns.  Pinning the shortlist
  per session keeps Eq. 1 accumulation consistent across layers, and
  unioning over the batch exploits the stream's hot-spot runs: a batch
  that revisits few classes probes few columns.  Layers below the
  threshold, and shortlists with fewer than two usable columns, fall
  back to the full dense kernel.  Pruning is approximate (a query's
  true top-2 can land outside the shortlist), which is why it is
  opt-in and disabled wherever exact equivalence is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np
from numpy.typing import DTypeLike

from repro import contracts
from repro.core.rng import derive_rng
from repro.lsh.alsh import AdaptiveLSH

_EPS = 1e-9

#: Dtypes the cache may store centroids in (the probe-kernel contract).
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def discriminative_score(
    a_best: float | np.ndarray, a_second: float | np.ndarray
) -> float | np.ndarray:
    """Eq. 2 score ``(A[a] - A[b]) / A[b]`` with a safe denominator.

    When the runner-up accumulated similarity ``A[b]`` is non-positive
    the relative gap is undefined — naively substituting an epsilon
    denominator explodes the score to ~1e9 and manufactures spurious
    hits.  No confident hit is possible against a non-positive runner-up,
    so the score clamps to 0 there.  A *genuinely positive but tiny*
    runner-up still yields a large score: that is Eq. 2's own unbounded
    semantics (a huge relative margin), and deployments gate such fires
    with the calibrated per-layer similarity floors.

    Accepts scalars or equally-shaped arrays; returns a float for scalar
    inputs and an array otherwise.
    """
    best = np.asarray(a_best, dtype=float)
    second = np.asarray(a_second, dtype=float)
    positive = second > _EPS
    score = np.where(
        positive, (best - second) / np.where(positive, second, 1.0), 0.0
    )
    if score.ndim == 0:
        return float(score)
    return score


class LookupWorkspace:
    """Reusable scratch buffers for the batched probe kernels.

    Buffers are flat pools keyed by ``(name, dtype)`` and grown
    geometrically; :meth:`floats` / :meth:`ints` / :meth:`bools` return
    C-contiguous views of the requested shape, so ``out=`` matmuls and
    ufuncs write straight into pooled memory.  One workspace is owned
    per engine (or per cluster node) and reused across probes, batches
    and rounds — the steady-state probe path allocates nothing
    proportional to ``batch x n_entries``.

    Not thread-safe and not re-entrant: a buffer name is a claim on the
    pool until the caller is done with the view.  The single-threaded
    round pipeline (and the virtual-time cluster driver, which runs
    clients sequentially) satisfies this by construction.
    """

    def __init__(self) -> None:
        self._pools: dict[tuple[str, np.dtype], np.ndarray] = {}
        self._arange = np.empty(0, dtype=np.intp)

    def _pool(self, name: str, dtype: np.dtype, size: int) -> np.ndarray:
        key = (name, dtype)
        buf = self._pools.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 16), dtype=dtype)
            self._pools[key] = buf
        return buf

    def floats(
        self, name: str, shape: tuple[int, ...], dtype: DTypeLike
    ) -> np.ndarray:
        """A C-contiguous float view of ``shape`` from the named pool."""
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return self._pool(name, np.dtype(dtype), size)[:size].reshape(shape)

    def ints(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """An index (``intp``) view — argmax targets, flat gather indices."""
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return self._pool(name, np.dtype(np.intp), size)[:size].reshape(shape)

    def bools(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return self._pool(name, np.dtype(np.bool_), size)[:size].reshape(shape)

    def arange(self, n: int) -> np.ndarray:
        """A read-only-by-convention view of ``[0, n)``."""
        if self._arange.size < n:
            self._arange = np.arange(max(n, 16), dtype=np.intp)
        return self._arange[:n]

    def top2(
        self, matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Row-wise top-2 of a 2-D score matrix via two argmax passes.

        The winner is masked to ``-inf``, the runner-up located, and the
        winner restored — the cheapest exact top-2 for small row counts.
        ``matrix`` is temporarily modified in place (restored on return);
        C-contiguous input takes the flat-index gather path, anything
        else the (allocating) fancy-index path.  All four returned
        arrays are workspace views valid until the next ``top2`` call.
        """
        n, e = matrix.shape
        best_idx = self.ints("top2.best_idx", (n,))
        second_idx = self.ints("top2.second_idx", (n,))
        best = self.floats("top2.best", (n,), matrix.dtype)
        second = self.floats("top2.second", (n,), matrix.dtype)
        if contracts.ENABLED:
            contracts.check_distinct_views(
                matrix=matrix,
                best_idx=best_idx,
                second_idx=second_idx,
                best=best,
                second=second,
            )
        np.argmax(matrix, axis=1, out=best_idx)
        if matrix.flags.c_contiguous:
            flat = self.ints("top2.flat", (n,))
            matrix_flat = matrix.reshape(-1)
            np.multiply(self.arange(n), e, out=flat)
            np.add(flat, best_idx, out=flat)
            np.take(matrix_flat, flat, out=best)
            matrix_flat[flat] = -np.inf
            np.argmax(matrix, axis=1, out=second_idx)
            second_flat = self.ints("top2.second_flat", (n,))
            np.multiply(self.arange(n), e, out=second_flat)
            np.add(second_flat, second_idx, out=second_flat)
            np.take(matrix_flat, second_flat, out=second)
            matrix_flat[flat] = best  # restore the winners
        else:
            take = self.arange(n)
            best[:] = matrix[take, best_idx]
            matrix[take, best_idx] = -np.inf
            np.argmax(matrix, axis=1, out=second_idx)
            second[:] = matrix[take, second_idx]
            matrix[take, best_idx] = best  # restore the winners
        return best_idx, second_idx, best, second

    def scores_into(
        self, best: np.ndarray, second: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Eq. 2 scores written into ``out`` (allocation-free
        :func:`discriminative_score` for equal-shaped 1-D arrays)."""
        n = best.shape[0]
        nonpos = self.bools("scores.nonpos", (n,))
        denom = self.floats("scores.denom", (n,), out.dtype)
        np.less_equal(second, _EPS, out=nonpos)
        np.copyto(denom, second)
        denom[nonpos] = 1.0
        np.subtract(best, second, out=out)
        np.divide(out, denom, out=out)
        out[nonpos] = 0.0
        return out


class LayerProbe(NamedTuple):
    """Outcome of probing one cache layer during an inference.

    A ``NamedTuple`` rather than a dataclass: probe records are built per
    (sample, layer) on the hot path, where tuple construction is several
    times cheaper than frozen-dataclass field assignment.

    Attributes:
        layer: index of the probed cache layer.
        top_class: class with the highest accumulated similarity.
        second_class: runner-up class (or ``-1`` with a single entry).
        score: discriminative score ``D`` of Eq. 2.
        hit: whether ``score`` exceeded the session threshold.
    """

    layer: int
    top_class: int
    second_class: int
    score: float
    hit: bool


class SemanticCache:
    """Per-layer class centroids plus the Eq. 1/2 lookup machinery.

    Args:
        num_classes: size of the class universe (row space of the global
            cache table this cache was extracted from).
        alpha: Eq. 1 decay for previous-layer accumulated similarity.
        theta: Eq. 2 discriminative-score hit threshold.
        dtype: storage/compute dtype of the probe path (``float32``
            default; ``float64`` is the exact-equivalence mode).
        prune_threshold: entry count at which a layer gains an A-LSH
            candidate index and probes switch to the pruned kernel
            (``None`` disables pruning everywhere — the exact mode).
        prune_seed: seed of the per-layer LSH hyperplane draws.
    """

    def __init__(
        self,
        num_classes: int,
        alpha: float = 0.5,
        theta: float = 0.05,
        dtype: DTypeLike = np.float32,
        prune_threshold: int | None = None,
        prune_seed: int = 0,
    ) -> None:
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.dtype = np.dtype(dtype)
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {[str(d) for d in SUPPORTED_DTYPES]}, "
                f"got {self.dtype}"
            )
        if prune_threshold is not None and prune_threshold < 2:
            raise ValueError(
                f"prune_threshold must be >= 2 (a layer needs a runner-up), "
                f"got {prune_threshold}"
            )
        self.num_classes = num_classes
        self.alpha = alpha
        self.theta = theta
        self.prune_threshold = prune_threshold
        self.prune_seed = int(prune_seed)
        self._layers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: Per-layer A-LSH candidate indexes (pruned layers only).
        self._indexes: dict[int, AdaptiveLSH] = {}
        #: Per-layer class -> column maps (pruned layers only): the
        #: session shortlist is a class-id set, resolved to each pruned
        #: layer's columns through these.
        self._positions: dict[int, np.ndarray] = {}
        # Optional per-layer absolute similarity floors: a hit additionally
        # requires the top entry's *current-layer* cosine to reach the
        # floor.  The relative score D alone cannot reject a sample of an
        # uncached class whose nearest cached entry happens to be isolated
        # (large relative gap at modest absolute similarity); the floor —
        # calibrated by the server from true-hit similarities on the
        # shared dataset — closes exactly that hole.
        self._similarity_floor: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------

    def set_layer_entries(
        self, layer: int, class_ids: np.ndarray, centroids: np.ndarray
    ) -> None:
        """Install the entries of one cache layer (replacing any previous).

        Args:
            layer: cache-layer index.
            class_ids: integer array of shape ``(n,)``.
            centroids: float array of shape ``(n, d)``; rows are normalized
                to unit L2 norm (in double precision) on insertion, then
                stored C-contiguous in the cache dtype.
        """
        ids = np.asarray(class_ids, dtype=int)
        mat = np.asarray(centroids, dtype=np.float64)
        if ids.ndim != 1 or mat.ndim != 2 or ids.shape[0] != mat.shape[0]:
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, centroids {mat.shape}"
            )
        if ids.size == 0:
            self._layers.pop(layer, None)
            self._indexes.pop(layer, None)
            self._positions.pop(layer, None)
            return
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate class ids in one cache layer")
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError("class id out of range")
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        if np.any(norms < _EPS):
            raise ValueError("cannot cache a zero centroid")
        stored = np.ascontiguousarray(mat / norms, dtype=self.dtype)
        self._layers[layer] = (ids.copy(), stored)
        if contracts.ENABLED:
            contracts.check_layer_entries(
                layer, ids, stored, self.dtype, self.num_classes
            )
        self._refresh_index(layer, ids, stored)

    def _refresh_index(
        self, layer: int, ids: np.ndarray, stored: np.ndarray
    ) -> None:
        """Build / rebuild / drop the layer's A-LSH candidate index."""
        if self.prune_threshold is None or stored.shape[0] < self.prune_threshold:
            self._indexes.pop(layer, None)
            self._positions.pop(layer, None)
            return
        index = self._indexes.get(layer)
        if index is None or index.dim != stored.shape[1]:
            index = AdaptiveLSH(
                dim=stored.shape[1],
                rng=derive_rng(self.prune_seed, "cache.prune-lsh", index=layer),
                base_bits=7,
                max_bits=18,
                # Bucket capacity is clamped to [16, 64]: beyond the
                # clamp, candidate neighbourhoods stay bounded as the
                # cache grows — that is where sub-linear lookup comes
                # from.
                max_bucket_size=min(64, max(16, self.prune_threshold // 16)),
                multi_probe=2,
            )
            self._indexes[layer] = index
        # Hyperplanes are anchored at the layer's centroid mean: cached
        # semantic vectors share a large common component, and
        # origin-anchored planes would barely separate them.
        index.set_center(stored.mean(axis=0))
        index.rebuild(stored)
        positions = np.full(self.num_classes, -1, dtype=np.int64)
        positions[ids] = np.arange(ids.size)
        self._positions[layer] = positions

    def pruned_layers(self) -> list[int]:
        """Layers currently probed through the A-LSH shortlist."""
        return sorted(self._indexes)

    def set_similarity_floor(self, layer: int, floor: float) -> None:
        """Require a minimum top-entry cosine at ``layer`` for a hit."""
        if not -1.0 <= floor <= 1.0:
            raise ValueError(f"floor must be a cosine in [-1, 1], got {floor}")
        self._similarity_floor[layer] = float(floor)

    def similarity_floor(self, layer: int) -> float:
        """The hit floor at a layer (-1 when none is set)."""
        return self._similarity_floor.get(layer, -1.0)

    def clear(self) -> None:
        self._layers.clear()
        self._indexes.clear()
        self._positions.clear()
        self._similarity_floor.clear()

    @property
    def active_layers(self) -> list[int]:
        """Activated cache-layer indices in lookup (ascending) order."""
        return sorted(self._layers)

    def num_entries(self, layer: int) -> int:
        if layer not in self._layers:
            return 0
        return int(self._layers[layer][0].size)

    @property
    def total_entries(self) -> int:
        return sum(ids.size for ids, _ in self._layers.values())

    def entries_at(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """(class ids, centroid matrix) of one layer (copies)."""
        if layer not in self._layers:
            raise KeyError(f"cache layer {layer} is not activated")
        ids, mat = self._layers[layer]
        return ids.copy(), mat.copy()

    def classes_at(self, layer: int) -> set[int]:
        if layer not in self._layers:
            return set()
        return set(int(i) for i in self._layers[layer][0])

    def size_bytes(self, entry_size_of_layer: Callable[[int], int]) -> int:
        """Total memory under a per-layer entry-size function (Eq. 6)."""
        return sum(
            ids.size * int(entry_size_of_layer(layer))
            for layer, (ids, _) in self._layers.items()
        )

    def content_equal(self, other: "SemanticCache", atol: float = 0.0) -> bool:
        """Whether two caches would serve identical lookups.

        Compares the lookup-relevant state: hyper-parameters (alpha,
        theta, dtype), the activated layers, each layer's (class id,
        centroid) entries, and the per-layer similarity floors.  With
        ``atol=0`` the centroid comparison is exact — the contract a
        replicated server must satisfy (e.g. a 1-shard cluster node
        against the single-server reference).
        """
        if (
            self.num_classes != other.num_classes
            or self.alpha != other.alpha
            or self.theta != other.theta
            or self.dtype != other.dtype
            or self.active_layers != other.active_layers
        ):
            return False
        for layer in self.active_layers:
            ids_a, mat_a = self._layers[layer]
            ids_b, mat_b = other._layers[layer]
            if not np.array_equal(ids_a, ids_b):
                return False
            if atol == 0.0:
                if not np.array_equal(mat_a, mat_b):
                    return False
            elif not np.allclose(mat_a, mat_b, atol=atol, rtol=0.0):
                return False
            floor_gap = abs(
                self.similarity_floor(layer) - other.similarity_floor(layer)
            )
            if floor_gap > atol:
                return False
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def start_session(self) -> "LookupSession":
        """Begin the per-inference sequential lookup."""
        return LookupSession(self)

    def start_batch_session(
        self, batch_size: int, workspace: LookupWorkspace | None = None
    ) -> "BatchedLookupSession":
        """Begin a vectorized lookup over a batch of concurrent inferences.

        Pass a long-lived :class:`LookupWorkspace` (e.g. the engine's) to
        reuse probe buffers across sessions; without one the session
        allocates a private workspace.
        """
        return BatchedLookupSession(self, batch_size, workspace=workspace)

    def __repr__(self) -> str:
        layers = {j: self.num_entries(j) for j in self.active_layers}
        return (
            f"SemanticCache(theta={self.theta}, dtype={self.dtype.name}, "
            f"layers={layers})"
        )


class LookupSession:
    """Accumulates Eq. 1 scores across the activated layers of one inference.

    Probe layers in ascending order via :meth:`probe`; the session keeps the
    per-class accumulated similarity ``A`` between calls.  Math runs in the
    cache's dtype; with pruning enabled, the first probe of an indexed
    layer pins the session's candidate-class shortlist (the query's
    multi-probe LSH buckets) and subsequent indexed layers score only
    those classes' columns — falling back to the dense scan when the
    shortlist resolves to fewer than two columns.
    """

    def __init__(self, cache: SemanticCache) -> None:
        self._cache = cache
        self._accumulated = np.zeros(cache.num_classes, dtype=cache.dtype)
        self._shortlist: np.ndarray | None = None  # candidate class ids

    def accumulated_score(self, class_id: int) -> float:
        """Current ``A`` value of a class (0 before its first probe)."""
        return float(self._accumulated[class_id])

    def prime_shortlist(self, layer: int, vector: np.ndarray) -> None:
        """Pin the session's candidate shortlist from a chosen layer.

        Class separation grows with depth, so the deepest activated
        pruned layer's buckets concentrate best — engines prime from
        there before probing shallow layers.  No-op when the layer has
        no index or a shortlist is already pinned.
        """
        if self._shortlist is not None:
            return
        cache = self._cache
        index = cache._indexes.get(layer)
        if index is None:
            return
        ids = cache._layers[layer][0]
        candidates = index.query(np.asarray(vector, dtype=float))
        self._shortlist = np.unique(ids[np.asarray(candidates, dtype=np.intp)])

    def probe(self, layer: int, vector: np.ndarray) -> LayerProbe:
        """Probe one activated layer with the sample's semantic vector.

        Returns a :class:`LayerProbe`; ``hit`` is ``True`` when the Eq. 2
        score exceeds the cache's theta.  A layer with fewer than two
        entries can never hit (the discriminative score needs a runner-up).
        """
        cache = self._cache
        ids, mat = cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        if isinstance(vector, np.ndarray) and vector.dtype == cache.dtype:
            vec = vector  # already conforming: no cast, no copy
        else:
            vec = np.asarray(vector, dtype=cache.dtype)
        if vec.shape != (mat.shape[1],):
            raise ValueError(
                f"vector shape {vec.shape} does not match centroid dim {mat.shape[1]}"
            )
        if ids.size < 2:
            similarity = mat @ vec
            updated = similarity + cache.alpha * self._accumulated[ids]
            self._accumulated[ids] = updated
            top = int(ids[0]) if ids.size == 1 else -1
            return LayerProbe(
                layer=layer, top_class=top, second_class=-1, score=0.0, hit=False
            )

        if cache._indexes.get(layer) is not None:
            self.prime_shortlist(layer, vec)
            cols = cache._positions[layer][self._shortlist]
            cols = cols[cols >= 0]
            if cols.size >= 2:
                return self._finish(layer, ids[cols], mat[cols] @ vec)
        return self._finish(layer, ids, mat @ vec)

    def _finish(
        self, layer: int, sub_ids: np.ndarray, similarity: np.ndarray
    ) -> LayerProbe:
        """Eq. 1 fold + Eq. 2 scoring over the scored entry subset."""
        cache = self._cache
        updated = similarity + cache.alpha * self._accumulated[sub_ids]
        self._accumulated[sub_ids] = updated
        order = np.argsort(updated)
        best_idx, second_idx = order[-1], order[-2]
        a_best = float(updated[best_idx])
        a_second = float(updated[second_idx])
        score = discriminative_score(a_best, a_second)
        floor = cache.similarity_floor(layer)
        hit = (
            score > cache.theta
            and a_best > 0
            and float(similarity[best_idx]) >= floor
        )
        return LayerProbe(
            layer=layer,
            top_class=int(sub_ids[best_idx]),
            second_class=int(sub_ids[second_idx]),
            score=score,
            hit=hit,
        )


@dataclass(frozen=True)
class BatchLayerProbe:
    """Outcome of probing one cache layer for a batch of samples.

    All arrays are aligned with ``rows`` (the batch rows probed); entry
    semantics per row match the scalar :class:`LayerProbe` fields.
    """

    layer: int
    rows: np.ndarray
    top_class: np.ndarray
    second_class: np.ndarray
    score: np.ndarray
    hit: np.ndarray


class BatchedLookupSession:
    """Eq. 1/2 accumulation for a whole batch of concurrent inferences.

    The accumulated-similarity state lives in the cache dtype in one of
    two layouts.  While every probed layer scores the *same* entry-id
    set — the common case: ACA allocates one hot-spot class set across
    its activated layers, and the pruned kernel pins one shortlist per
    session — the accumulator is a ``(batch, n_entries)`` matrix aligned
    with the scored columns, so Eq. 1 needs only contiguous row
    gathers.  The first layer that scores a *different* id set spills
    into the general ``(batch, num_classes)`` matrix, which every
    later probe addresses through flat-index gather/scatter.  Each
    :meth:`probe` call advances one cache layer for the still-alive
    subset of rows with a single ``(n_alive, d) @ (d, n_entries)``
    matmul followed by vectorized top-2 selection and scoring — the
    batch counterpart of running one :class:`LookupSession` per sample.
    All intermediates live in the session's :class:`LookupWorkspace`;
    only the per-row result arrays of each :class:`BatchLayerProbe` are
    freshly allocated.
    """

    def __init__(
        self,
        cache: SemanticCache,
        batch_size: int,
        workspace: LookupWorkspace | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._cache = cache
        self.batch_size = batch_size
        self._workspace = workspace if workspace is not None else LookupWorkspace()
        #: Column-mode accumulator state: the id set shared by every
        #: layer probed so far and its (batch, n_entries) A matrix.
        self._acc_ids: np.ndarray | None = None
        self._acc_cols: np.ndarray | None = None
        #: General accumulator, lazily materialized on id-set divergence.
        self._acc_full: np.ndarray | None = None
        self._shortlist: np.ndarray | None = None  # candidate class ids

    def _spill_to_full(self) -> None:
        """Leave column mode: scatter A into the (batch, num_classes)
        matrix (one-way — later probes use flat-index addressing)."""
        self._acc_full = np.zeros(
            (self.batch_size, self._cache.num_classes), dtype=self._cache.dtype
        )
        if self._acc_ids is not None:
            self._acc_full[:, self._acc_ids] = self._acc_cols
        self._acc_ids = None
        self._acc_cols = None

    def accumulated_score(self, row: int, class_id: int) -> float:
        """Current ``A`` value of a class for one batch row."""
        if self._acc_full is not None:
            return float(self._acc_full[row, class_id])
        if self._acc_ids is None:
            return 0.0
        position = np.flatnonzero(self._acc_ids == class_id)
        if position.size == 0:
            return 0.0
        return float(self._acc_cols[row, position[0]])

    def prime_shortlist(self, layer: int, vectors: np.ndarray) -> None:
        """Pin the session's candidate shortlist from a chosen layer.

        Unions the multi-probe A-LSH buckets of every query against the
        layer's index.  Class separation grows with depth, so engines
        prime from the *deepest* activated pruned layer — its buckets
        concentrate far better than the shallow layers a session probes
        first.  No-op when the layer has no index or a shortlist is
        already pinned (probing an indexed layer without priming pins
        the shortlist from that layer instead).
        """
        if self._shortlist is not None:
            return
        cache = self._cache
        index = cache._indexes.get(layer)
        if index is None:
            return
        ids = cache._layers[layer][0]
        positions = index.shortlist(vectors)
        self._shortlist = np.unique(ids[positions])

    def probe(
        self, layer: int, vectors: np.ndarray, rows: np.ndarray | None = None
    ) -> BatchLayerProbe:
        """Probe one activated layer for a subset of batch rows.

        Args:
            layer: activated cache layer to probe.
            vectors: ``(n, d)`` semantic vectors of the probed samples.
            rows: batch-row index of each vector (default: all rows, in
                which case ``n`` must equal the batch size).

        An empty ``rows`` subset returns an empty probe (no work, no
        degenerate-layer special casing).
        """
        cache = self._cache
        ids, mat = cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        if (
            isinstance(vectors, np.ndarray)
            and vectors.dtype == cache.dtype
            and vectors.ndim == 2
        ):
            vecs = vectors  # already conforming: no cast, no copy
        else:
            vecs = np.asarray(vectors, dtype=cache.dtype)
        if rows is None:
            rows = np.arange(self.batch_size)
        else:
            rows = np.asarray(rows, dtype=int)
        if vecs.ndim != 2 or vecs.shape != (rows.size, mat.shape[1]):
            raise ValueError(
                f"vectors shape {vecs.shape} does not match "
                f"({rows.size}, {mat.shape[1]})"
            )

        n = rows.size
        if n == 0:
            return BatchLayerProbe(
                layer=layer,
                rows=rows,
                top_class=np.empty(0, dtype=int),
                second_class=np.empty(0, dtype=int),
                score=np.empty(0, dtype=cache.dtype),
                hit=np.empty(0, dtype=bool),
            )
        if ids.size < 2:
            similarity = vecs @ mat.T
            self._fold(similarity, ids, rows)
            top = int(ids[0]) if ids.size == 1 else -1
            return BatchLayerProbe(
                layer=layer,
                rows=rows,
                top_class=np.full(n, top, dtype=int),
                second_class=np.full(n, -1, dtype=int),
                score=np.zeros(n, dtype=cache.dtype),
                hit=np.zeros(n, dtype=bool),
            )

        if cache._indexes.get(layer) is not None:
            return self._probe_pruned(layer, ids, mat, vecs, rows)
        return self._probe_dense(layer, ids, mat, vecs, rows)

    # ------------------------------------------------------------------
    # Eq. 1 fold
    # ------------------------------------------------------------------

    def _fold(
        self, similarity: np.ndarray, ids: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Accumulate Eq. 1 over the scored entries: returns the updated
        ``A`` values (a workspace view) and writes them back.

        Stays in column mode while every probed layer scores the same id
        set (contiguous row gathers, no index arithmetic); the first
        divergent id set spills to the general per-class matrix.
        """
        cache = self._cache
        ws = self._workspace
        n, e = similarity.shape
        if self._acc_full is None:
            if self._acc_ids is None:
                self._acc_ids = ids
                self._acc_cols = np.zeros(
                    (self.batch_size, e), dtype=cache.dtype
                )
            elif self._acc_ids is not ids and not np.array_equal(
                self._acc_ids, ids
            ):
                self._spill_to_full()
        upd = ws.floats("probe.upd", (n, e), cache.dtype)
        if self._acc_full is None:
            np.take(self._acc_cols, rows, axis=0, out=upd)
            np.multiply(upd, cache.alpha, out=upd)
            np.add(upd, similarity, out=upd)
            self._acc_cols[rows] = upd
        else:
            flat = ws.ints("probe.flat", (n, e))
            row_off = ws.ints("probe.row_off", (n,))
            np.multiply(rows, cache.num_classes, out=row_off)
            np.add(row_off[:, None], ids[None, :], out=flat)
            acc_flat = self._acc_full.reshape(-1)
            np.take(acc_flat, flat, out=upd)
            np.multiply(upd, cache.alpha, out=upd)
            np.add(upd, similarity, out=upd)
            acc_flat[flat] = upd
        return upd

    # ------------------------------------------------------------------
    # Dense (exact) kernel
    # ------------------------------------------------------------------

    def _probe_dense(
        self,
        layer: int,
        ids: np.ndarray,
        mat: np.ndarray,
        vecs: np.ndarray,
        rows: np.ndarray,
    ) -> BatchLayerProbe:
        """Exact probe: one matmul over all entries, zero large allocs."""
        cache = self._cache
        ws = self._workspace
        n, e = vecs.shape[0], ids.size
        dtype = cache.dtype

        sim = ws.floats("probe.sim", (n, e), dtype)
        if contracts.ENABLED:
            contracts.check_distinct_views(sim=sim, vecs=vecs, mat=mat)
        np.matmul(vecs, mat.T, out=sim)
        upd = self._fold(sim, ids, rows)
        if contracts.ENABLED:
            contracts.check_distinct_views(sim=sim, upd=upd)

        best_idx, second_idx, a_best, a_second = ws.top2(upd)
        score = ws.floats("probe.score", (n,), dtype)
        ws.scores_into(a_best, a_second, score)

        hit = ws.bools("probe.hit", (n,))
        aux = ws.bools("probe.aux", (n,))
        np.greater(score, cache.theta, out=hit)
        np.greater(a_best, 0, out=aux)
        np.logical_and(hit, aux, out=hit)
        sim_best = ws.floats("probe.sim_best", (n,), dtype)
        best_flat = ws.ints("probe.best_flat", (n,))
        np.multiply(ws.arange(n), e, out=best_flat)
        np.add(best_flat, best_idx, out=best_flat)
        np.take(sim.reshape(-1), best_flat, out=sim_best)
        np.greater_equal(sim_best, cache.similarity_floor(layer), out=aux)
        np.logical_and(hit, aux, out=hit)

        return BatchLayerProbe(
            layer=layer,
            rows=rows,
            top_class=ids[best_idx],
            second_class=ids[second_idx],
            score=score.copy(),
            hit=hit.copy(),
        )

    # ------------------------------------------------------------------
    # LSH-pruned kernel
    # ------------------------------------------------------------------

    def _probe_pruned(
        self,
        layer: int,
        ids: np.ndarray,
        mat: np.ndarray,
        vecs: np.ndarray,
        rows: np.ndarray,
    ) -> BatchLayerProbe:
        """Approximate probe: the dense kernel on the session shortlist.

        The first pruned probe of the session unions the multi-probe
        LSH buckets of every probed row into a pinned candidate-class
        shortlist (rows only ever leave a batch, so the first probed
        set covers all later ones).  Each pruned layer then gathers the
        shortlist's columns once and runs the exact dense kernel on the
        sub-matrix: accumulation stays consistent across layers, and a
        batch dominated by hot-spot runs probes a small fraction of the
        cache.  Falls back to the full dense kernel when the shortlist
        resolves to fewer than two of this layer's columns (no Eq. 2
        runner-up) or to no reduction at all.
        """
        cache = self._cache
        ws = self._workspace
        self.prime_shortlist(layer, vecs)
        cols = cache._positions[layer][self._shortlist]
        cols = cols[cols >= 0]
        if cols.size < 2 or cols.size >= ids.size:
            return self._probe_dense(layer, ids, mat, vecs, rows)
        sub_mat = ws.floats(
            "pruned.mat", (cols.size, mat.shape[1]), cache.dtype
        )
        np.take(mat, cols, axis=0, out=sub_mat)
        return self._probe_dense(layer, ids[cols], sub_mat, vecs, rows)
