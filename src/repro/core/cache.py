"""The class-based semantic cache (Sec. II-3).

A :class:`SemanticCache` holds, per activated cache layer, one unit-norm
semantic centroid per hot-spot class.  During inference a
:class:`LookupSession` walks the activated layers in order, accumulating
per-class cosine similarities:

    A[i, j] = C[i, j] + alpha * A[i, j-1]                       (Eq. 1)

where ``C[i, j]`` is the cosine similarity between the sample's layer-``j``
semantic vector and class ``i``'s cached centroid, and ``j-1`` is the
*previously probed* layer.  The layer's discriminative score compares the
two best classes ``a`` and ``b``:

    D[j] = (A[a, j] - A[b, j]) / A[b, j]                        (Eq. 2)

The cache hits when ``D[j]`` exceeds the threshold theta; inference then
terminates early returning class ``a``.  Eq. 2 presumes a positive
runner-up: when ``A[b] <= 0`` the relative gap is undefined and no
confident hit is possible, so :func:`discriminative_score` clamps ``D``
to 0 instead of dividing by a tiny epsilon.

Two session flavours share the machinery: :class:`LookupSession` walks
one sample at a time, and :class:`BatchedLookupSession` runs a whole
batch of samples per layer as single NumPy matrix operations (one
``(n_alive, d) @ (d, n_entries)`` product, vectorized Eq. 1/2), producing
outcomes identical to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

_EPS = 1e-9


def discriminative_score(a_best, a_second):
    """Eq. 2 score ``(A[a] - A[b]) / A[b]`` with a safe denominator.

    When the runner-up accumulated similarity ``A[b]`` is non-positive
    the relative gap is undefined — naively substituting an epsilon
    denominator explodes the score to ~1e9 and manufactures spurious
    hits.  No confident hit is possible against a non-positive runner-up,
    so the score clamps to 0 there.  A *genuinely positive but tiny*
    runner-up still yields a large score: that is Eq. 2's own unbounded
    semantics (a huge relative margin), and deployments gate such fires
    with the calibrated per-layer similarity floors.

    Accepts scalars or equally-shaped arrays; returns a float for scalar
    inputs and an array otherwise.
    """
    best = np.asarray(a_best, dtype=float)
    second = np.asarray(a_second, dtype=float)
    positive = second > _EPS
    score = np.where(
        positive, (best - second) / np.where(positive, second, 1.0), 0.0
    )
    if score.ndim == 0:
        return float(score)
    return score


class LayerProbe(NamedTuple):
    """Outcome of probing one cache layer during an inference.

    A ``NamedTuple`` rather than a dataclass: probe records are built per
    (sample, layer) on the hot path, where tuple construction is several
    times cheaper than frozen-dataclass field assignment.

    Attributes:
        layer: index of the probed cache layer.
        top_class: class with the highest accumulated similarity.
        second_class: runner-up class (or ``-1`` with a single entry).
        score: discriminative score ``D`` of Eq. 2.
        hit: whether ``score`` exceeded the session threshold.
    """

    layer: int
    top_class: int
    second_class: int
    score: float
    hit: bool


class SemanticCache:
    """Per-layer class centroids plus the Eq. 1/2 lookup machinery.

    Args:
        num_classes: size of the class universe (row space of the global
            cache table this cache was extracted from).
        alpha: Eq. 1 decay for previous-layer accumulated similarity.
        theta: Eq. 2 discriminative-score hit threshold.
    """

    def __init__(self, num_classes: int, alpha: float = 0.5, theta: float = 0.05) -> None:
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.num_classes = num_classes
        self.alpha = alpha
        self.theta = theta
        self._layers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Optional per-layer absolute similarity floors: a hit additionally
        # requires the top entry's *current-layer* cosine to reach the
        # floor.  The relative score D alone cannot reject a sample of an
        # uncached class whose nearest cached entry happens to be isolated
        # (large relative gap at modest absolute similarity); the floor —
        # calibrated by the server from true-hit similarities on the
        # shared dataset — closes exactly that hole.
        self._similarity_floor: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------

    def set_layer_entries(
        self, layer: int, class_ids: np.ndarray, centroids: np.ndarray
    ) -> None:
        """Install the entries of one cache layer (replacing any previous).

        Args:
            layer: cache-layer index.
            class_ids: integer array of shape ``(n,)``.
            centroids: float array of shape ``(n, d)``; rows are normalized
                to unit L2 norm on insertion.
        """
        ids = np.asarray(class_ids, dtype=int)
        mat = np.asarray(centroids, dtype=float)
        if ids.ndim != 1 or mat.ndim != 2 or ids.shape[0] != mat.shape[0]:
            raise ValueError(
                f"shape mismatch: ids {ids.shape}, centroids {mat.shape}"
            )
        if ids.size == 0:
            self._layers.pop(layer, None)
            return
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate class ids in one cache layer")
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError("class id out of range")
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        if np.any(norms < _EPS):
            raise ValueError("cannot cache a zero centroid")
        self._layers[layer] = (ids.copy(), mat / norms)

    def set_similarity_floor(self, layer: int, floor: float) -> None:
        """Require a minimum top-entry cosine at ``layer`` for a hit."""
        if not -1.0 <= floor <= 1.0:
            raise ValueError(f"floor must be a cosine in [-1, 1], got {floor}")
        self._similarity_floor[layer] = float(floor)

    def similarity_floor(self, layer: int) -> float:
        """The hit floor at a layer (-1 when none is set)."""
        return self._similarity_floor.get(layer, -1.0)

    def clear(self) -> None:
        self._layers.clear()
        self._similarity_floor.clear()

    @property
    def active_layers(self) -> list[int]:
        """Activated cache-layer indices in lookup (ascending) order."""
        return sorted(self._layers)

    def num_entries(self, layer: int) -> int:
        if layer not in self._layers:
            return 0
        return int(self._layers[layer][0].size)

    @property
    def total_entries(self) -> int:
        return sum(ids.size for ids, _ in self._layers.values())

    def entries_at(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """(class ids, centroid matrix) of one layer (copies)."""
        if layer not in self._layers:
            raise KeyError(f"cache layer {layer} is not activated")
        ids, mat = self._layers[layer]
        return ids.copy(), mat.copy()

    def classes_at(self, layer: int) -> set[int]:
        if layer not in self._layers:
            return set()
        return set(int(i) for i in self._layers[layer][0])

    def size_bytes(self, entry_size_of_layer) -> int:
        """Total memory under a per-layer entry-size function (Eq. 6)."""
        return sum(
            ids.size * int(entry_size_of_layer(layer))
            for layer, (ids, _) in self._layers.items()
        )

    def content_equal(self, other: "SemanticCache", atol: float = 0.0) -> bool:
        """Whether two caches would serve identical lookups.

        Compares the lookup-relevant state: hyper-parameters (alpha,
        theta), the activated layers, each layer's (class id, centroid)
        entries, and the per-layer similarity floors.  With ``atol=0`` the
        centroid comparison is exact — the contract a replicated server
        must satisfy (e.g. a 1-shard cluster node against the
        single-server reference).
        """
        if (
            self.num_classes != other.num_classes
            or self.alpha != other.alpha
            or self.theta != other.theta
            or self.active_layers != other.active_layers
        ):
            return False
        for layer in self.active_layers:
            ids_a, mat_a = self._layers[layer]
            ids_b, mat_b = other._layers[layer]
            if not np.array_equal(ids_a, ids_b):
                return False
            if atol == 0.0:
                if not np.array_equal(mat_a, mat_b):
                    return False
            elif not np.allclose(mat_a, mat_b, atol=atol, rtol=0.0):
                return False
            floor_gap = abs(
                self.similarity_floor(layer) - other.similarity_floor(layer)
            )
            if floor_gap > atol:
                return False
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def start_session(self) -> "LookupSession":
        """Begin the per-inference sequential lookup."""
        return LookupSession(self)

    def start_batch_session(self, batch_size: int) -> "BatchedLookupSession":
        """Begin a vectorized lookup over a batch of concurrent inferences."""
        return BatchedLookupSession(self, batch_size)

    def __repr__(self) -> str:
        layers = {j: self.num_entries(j) for j in self.active_layers}
        return f"SemanticCache(theta={self.theta}, layers={layers})"


class LookupSession:
    """Accumulates Eq. 1 scores across the activated layers of one inference.

    Probe layers in ascending order via :meth:`probe`; the session keeps the
    per-class accumulated similarity ``A`` between calls.
    """

    def __init__(self, cache: SemanticCache) -> None:
        self._cache = cache
        self._accumulated = np.zeros(cache.num_classes)

    def accumulated_score(self, class_id: int) -> float:
        """Current ``A`` value of a class (0 before its first probe)."""
        return float(self._accumulated[class_id])

    def probe(self, layer: int, vector: np.ndarray) -> LayerProbe:
        """Probe one activated layer with the sample's semantic vector.

        Returns a :class:`LayerProbe`; ``hit`` is ``True`` when the Eq. 2
        score exceeds the cache's theta.  A layer with fewer than two
        entries can never hit (the discriminative score needs a runner-up).
        """
        ids, mat = self._cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (mat.shape[1],):
            raise ValueError(
                f"vector shape {vec.shape} does not match centroid dim {mat.shape[1]}"
            )

        similarity = mat @ vec  # C[i, j] for cached classes
        updated = similarity + self._cache.alpha * self._accumulated[ids]
        self._accumulated[ids] = updated

        if ids.size < 2:
            top = int(ids[0]) if ids.size == 1 else -1
            return LayerProbe(
                layer=layer, top_class=top, second_class=-1, score=0.0, hit=False
            )

        order = np.argsort(updated)
        best_idx, second_idx = order[-1], order[-2]
        a_best = float(updated[best_idx])
        a_second = float(updated[second_idx])
        score = discriminative_score(a_best, a_second)
        floor = self._cache.similarity_floor(layer)
        hit = (
            score > self._cache.theta
            and a_best > 0
            and float(similarity[best_idx]) >= floor
        )
        return LayerProbe(
            layer=layer,
            top_class=int(ids[best_idx]),
            second_class=int(ids[second_idx]),
            score=score,
            hit=hit,
        )


@dataclass(frozen=True)
class BatchLayerProbe:
    """Outcome of probing one cache layer for a batch of samples.

    All arrays are aligned with ``rows`` (the batch rows probed); entry
    semantics per row match the scalar :class:`LayerProbe` fields.
    """

    layer: int
    rows: np.ndarray
    top_class: np.ndarray
    second_class: np.ndarray
    score: np.ndarray
    hit: np.ndarray


class BatchedLookupSession:
    """Eq. 1/2 accumulation for a whole batch of concurrent inferences.

    The accumulated-similarity state is a ``(batch, num_classes)`` matrix;
    each :meth:`probe` call advances one cache layer for the still-alive
    subset of rows with a single ``(n_alive, d) @ (d, n_entries)`` matmul
    followed by vectorized top-2 selection and scoring — the batch
    counterpart of running one :class:`LookupSession` per sample.
    """

    def __init__(self, cache: SemanticCache, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._cache = cache
        self.batch_size = batch_size
        self._accumulated = np.zeros((batch_size, cache.num_classes))

    def accumulated_score(self, row: int, class_id: int) -> float:
        """Current ``A`` value of a class for one batch row."""
        return float(self._accumulated[row, class_id])

    def probe(
        self, layer: int, vectors: np.ndarray, rows: np.ndarray | None = None
    ) -> BatchLayerProbe:
        """Probe one activated layer for a subset of batch rows.

        Args:
            layer: activated cache layer to probe.
            vectors: ``(n, d)`` semantic vectors of the probed samples.
            rows: batch-row index of each vector (default: all rows, in
                which case ``n`` must equal the batch size).
        """
        ids, mat = self._cache._layers.get(layer, (None, None))
        if ids is None:
            raise KeyError(f"cache layer {layer} is not activated")
        vecs = np.asarray(vectors, dtype=float)
        if rows is None:
            rows = np.arange(self.batch_size)
        else:
            rows = np.asarray(rows, dtype=int)
        if vecs.ndim != 2 or vecs.shape != (rows.size, mat.shape[1]):
            raise ValueError(
                f"vectors shape {vecs.shape} does not match "
                f"({rows.size}, {mat.shape[1]})"
            )

        similarity = vecs @ mat.T  # C[i, j] for every (row, cached class)
        row_index = rows[:, None]
        updated = similarity + self._cache.alpha * self._accumulated[row_index, ids]
        self._accumulated[row_index, ids] = updated

        n = rows.size
        if ids.size < 2:
            top = int(ids[0]) if ids.size == 1 else -1
            return BatchLayerProbe(
                layer=layer,
                rows=rows,
                top_class=np.full(n, top, dtype=int),
                second_class=np.full(n, -1, dtype=int),
                score=np.zeros(n),
                hit=np.zeros(n, dtype=bool),
            )

        take = np.arange(n)
        # Top-2 via two argmax passes (far cheaper than a row sort or
        # partition): mask the winner, find the runner-up, restore.
        best_idx = np.argmax(updated, axis=1)
        a_best = updated[take, best_idx]  # fancy indexing copies
        updated[take, best_idx] = -np.inf
        second_idx = np.argmax(updated, axis=1)
        a_second = updated[take, second_idx]
        updated[take, best_idx] = a_best
        score = discriminative_score(a_best, a_second)
        floor = self._cache.similarity_floor(layer)
        hit = (
            (score > self._cache.theta)
            & (a_best > 0)
            & (similarity[take, best_idx] >= floor)
        )
        return BatchLayerProbe(
            layer=layer,
            rows=rows,
            top_class=ids[best_idx],
            second_class=ids[second_idx],
            score=score,
            hit=hit,
        )
