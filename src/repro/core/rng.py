"""Named, collision-checked derivation of seeded RNG streams.

Components that need their own random stream used to derive it inline as
``np.random.default_rng(seed + <magic offset>)``, scattering magic
numbers across the codebase with nothing preventing two components from
picking the same offset — which would silently correlate their draws.
:func:`derive_rng` replaces those sites: every stream is registered here
by name with its offset (and optional per-index stride), and the
registry is validated at import time so an offset collision is an
``ImportError`` at development time instead of a statistics bug at run
time.

The offsets are exactly the historical magic numbers, so every stream
produces bit-identical draws to the code it replaced — determinism
suites and tuned benchmark gates are unaffected.

Adding a stream: add a :class:`StreamSpec` entry to :data:`STREAMS`.
If validation rejects it, pick a different offset — that is the point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Highest per-stream index the collision check certifies.  Strided
#: streams (one generator per layer/shard/...) may not use an index
#: above this without re-validating the registry.
MAX_STREAM_INDEX = 4096


@dataclass(frozen=True)
class StreamSpec:
    """One named seed stream: ``effective seed = seed + offset + stride*index``.

    Attributes:
        offset: the stream's base displacement from the caller's seed.
        stride: per-index displacement for families of streams (e.g. one
            LSH generator per cache layer); 0 for scalar streams.
    """

    offset: int
    stride: int = 0

    def seeds(self) -> range:
        """Every effective displacement this stream can occupy."""
        if self.stride == 0:
            return range(self.offset, self.offset + 1)
        return range(
            self.offset,
            self.offset + self.stride * (MAX_STREAM_INDEX + 1),
            self.stride,
        )


#: The registry of every derived seed stream in the codebase.
STREAMS: dict[str, StreamSpec] = {
    # FoggyCache baseline: shared LSH hyperplane draws (was seed + 31_337).
    "foggycache.lsh": StreamSpec(offset=31_337),
    # Replacement-policy baseline: RANDOM eviction choices (was seed + 404).
    "replacement.evict": StreamSpec(offset=404),
    # LearnedCache baseline: exit-head noise (was seed + 77_001).
    "learnedcache.noise": StreamSpec(offset=77_001),
    # Global-updates experiment: probe-set sample draws (was seed + 9_901).
    "experiments.global-updates-probe": StreamSpec(offset=9_901),
    # SemanticCache: per-layer A-LSH hyperplane draws, indexed by cache
    # layer (was prune_seed + 7_919 * layer).
    "cache.prune-lsh": StreamSpec(offset=0, stride=7_919),
}


def _validate(streams: dict[str, StreamSpec]) -> None:
    """Reject any two streams that can collide within the index bound."""
    occupied: dict[int, str] = {}
    for name, spec in streams.items():
        if spec.stride < 0:
            raise ValueError(f"stream {name!r}: stride must be >= 0")
        for seed in spec.seeds():
            owner = occupied.get(seed)
            if owner is not None and owner != name:
                raise ValueError(
                    f"seed-stream collision: {name!r} and {owner!r} both "
                    f"reach displacement {seed} within index "
                    f"{MAX_STREAM_INDEX}"
                )
            occupied[seed] = name
    # NOTE: scalar streams are cheap to check exhaustively; strided
    # streams occupy MAX_STREAM_INDEX+1 slots each.  With few streams
    # this stays trivial; if the registry ever grows large, switch to
    # pairwise congruence checks.


_validate(STREAMS)


def derive_rng(
    seed: int, stream: str, index: int = 0
) -> np.random.Generator:
    """A seeded generator for a registered named stream.

    Args:
        seed: the run's base seed (scenario seed, prune seed, ...).
        stream: a key of :data:`STREAMS`.
        index: which member of a strided stream family (must be 0 for
            scalar streams).

    Returns:
        ``np.random.default_rng(seed + offset + stride * index)`` —
        bit-identical to the historical inline derivations.
    """
    spec = STREAMS.get(stream)
    if spec is None:
        raise KeyError(
            f"unknown RNG stream {stream!r}; register it in "
            f"repro.core.rng.STREAMS (known: {sorted(STREAMS)})"
        )
    if index < 0 or index > MAX_STREAM_INDEX:
        raise ValueError(
            f"stream index must be in [0, {MAX_STREAM_INDEX}], got {index}"
        )
    if spec.stride == 0 and index != 0:
        raise ValueError(
            f"stream {stream!r} is scalar (stride 0); index must be 0"
        )
    return np.random.default_rng(seed + spec.offset + spec.stride * index)
