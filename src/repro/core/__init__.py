"""CoCa core: semantic cache, client, server, ACA allocation, framework."""

from repro.core.allocation import (
    AllocationResult,
    aca_allocate,
    class_scores,
    select_hotspot_classes,
)
from repro.core.cache import (
    BatchedLookupSession,
    BatchLayerProbe,
    LayerProbe,
    LookupSession,
    LookupWorkspace,
    SemanticCache,
    discriminative_score,
)
from repro.core.client import ClientStatus, CoCaClient, RoundReport
from repro.core.config import CoCaConfig, recommended_theta
from repro.core.engine import (
    BatchedInferenceEngine,
    BatchOutcomes,
    CachedInferenceEngine,
    InferenceOutcome,
)
from repro.core.framework import CoCaFramework, FrameworkResult, RoundSummary
from repro.core.server import CoCaServer, GlobalCacheTable

__all__ = [
    "AllocationResult",
    "BatchLayerProbe",
    "BatchedInferenceEngine",
    "BatchOutcomes",
    "BatchedLookupSession",
    "CachedInferenceEngine",
    "ClientStatus",
    "CoCaClient",
    "CoCaConfig",
    "CoCaFramework",
    "CoCaServer",
    "FrameworkResult",
    "GlobalCacheTable",
    "InferenceOutcome",
    "LayerProbe",
    "LookupSession",
    "LookupWorkspace",
    "RoundReport",
    "RoundSummary",
    "SemanticCache",
    "aca_allocate",
    "class_scores",
    "discriminative_score",
    "recommended_theta",
    "select_hotspot_classes",
]
