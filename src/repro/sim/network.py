"""Server-load model for cache-request response latency (Fig. 10b).

The paper's testbed connects Jetson clients to an edge server over WiFi and
measures the *response latency* of a cache-allocation request: the time from
a client issuing the request to receiving the (personalized) cache, which is
typically smaller than 1 MB.  Response latency grows mildly with the number
of connected clients (ResNet101: 56.70 ms at 60 clients to 60.93 ms at 160,
a 7.46% increase) because requests contend for global-cache access on the
server.

We reproduce that mechanism with an M/D/1 queueing model: clients issue
allocation requests as a Poisson stream whose rate is #clients / round
duration, and the server serializes the allocation + serialization work.
The shape — slow superlinear growth, still far from saturation at 160
clients — matches the measurement; the absolute base latency is dominated
by the (modelled) network transfer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass


@dataclass(frozen=True)
class ServerLoadModel:
    """Response-latency model for cache requests on a shared edge server.

    Attributes:
        base_latency_ms: fixed per-request cost — network round trip plus
            cache serialization and download (< 1 MB payloads).
        service_time_ms: deterministic per-request CPU time the server
            spends running cache allocation (ACA) and packing the sub-table.
        round_duration_ms: virtual duration of one client round (F frames
            times mean per-frame latency); each client issues one request
            per round, so the aggregate arrival rate is
            ``num_clients / round_duration_ms``.
    """

    base_latency_ms: float = 52.8
    service_time_ms: float = 1.35
    round_duration_ms: float = 9000.0
    contention_ms_per_client: float = 0.042

    def utilization(self, num_clients: int) -> float:
        """Server utilization (rho) under ``num_clients`` requesting clients."""
        if num_clients < 0:
            raise ValueError(f"num_clients must be >= 0, got {num_clients}")
        arrival_rate = num_clients / self.round_duration_ms  # requests per ms
        rho = arrival_rate * self.service_time_ms
        return rho

    def mean_wait_ms(self, num_clients: int) -> float:
        """Mean M/D/1 waiting time (excluding service) for a cache request."""
        rho = self.utilization(num_clients)
        if rho >= 1.0:
            raise ValueError(
                f"server saturated: utilization {rho:.3f} >= 1 with "
                f"{num_clients} clients"
            )
        # M/D/1: W = rho * s / (2 * (1 - rho))
        return rho * self.service_time_ms / (2.0 * (1.0 - rho))

    def response_latency_ms(self, num_clients: int) -> float:
        """End-to-end response latency of one cache request.

        base (network + download) + queueing wait + service time + a
        contention term linear in the client count, modelling lock
        contention on the shared global cache table (the mechanism the
        paper names for the mild latency growth).

        A saturated server (utilization >= 1) has no finite steady-state
        response latency: the result is ``float("inf")`` with a
        :class:`RuntimeWarning`, so capacity sweeps can chart the
        saturation cliff instead of aborting at the first point past it.
        Use :meth:`mean_wait_ms` directly when saturation should be a
        hard error.
        """
        rho = self.utilization(num_clients)
        if rho >= 1.0:
            warnings.warn(
                f"server saturated: utilization {rho:.3f} >= 1 with "
                f"{num_clients} clients; response latency is unbounded",
                RuntimeWarning,
                stacklevel=2,
            )
            return float("inf")
        return (
            self.base_latency_ms
            + self.mean_wait_ms(num_clients)
            + self.service_time_ms
            + self.contention_ms_per_client * num_clients
        )

    def sweep(self, client_counts: list[int]) -> dict[int, float]:
        """Response latency for each client count (the Fig. 10b series).

        Saturated counts map to ``float("inf")`` (with a warning from
        :meth:`response_latency_ms`) rather than poisoning the whole
        sweep with a :class:`ValueError`.
        """
        return {n: self.response_latency_ms(n) for n in client_counts}
