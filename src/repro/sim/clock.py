"""Virtual time for deterministic latency simulation.

The paper measures wall-clock inference latency on NVIDIA Jetson TX2
hardware.  This reproduction replaces the hardware with an additive latency
model (see :mod:`repro.models.profiles`), so all "time" in the simulator is
virtual: components charge costs in milliseconds to a :class:`VirtualClock`
and experiments read accumulated totals from it.  Runs are therefore exactly
reproducible and independent of the host machine's speed.
"""

from __future__ import annotations

from types import TracebackType

from repro import contracts


class VirtualClock:
    """A monotonically non-decreasing virtual clock measured in milliseconds.

    The clock only moves forward via :meth:`advance`; it never observes host
    time.  A simulation typically owns one clock per client so that per-client
    latency accounting stays independent.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {start_ms}")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Move the clock forward by ``delta_ms`` and return the new time.

        Raises:
            ValueError: if ``delta_ms`` is negative (virtual time cannot
                run backwards).
        """
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ms}")
        previous = self._now_ms
        self._now_ms += float(delta_ms)
        if contracts.ENABLED:
            contracts.check_clock_monotonic(previous, self._now_ms)
        return self._now_ms

    def advance_to(self, timestamp_ms: float) -> float:
        """Move the clock forward to an absolute virtual time and return it.

        Event-driven components wait on each other by joining clocks: a
        client whose cache request completes at server time ``t`` calls
        ``advance_to(t)`` on its own clock.  A timestamp at or before the
        current time is a no-op (the event already lies in this clock's
        past), so the clock stays monotone without the caller having to
        compute ``max`` deltas.
        """
        previous = self._now_ms
        self._now_ms = max(self._now_ms, float(timestamp_ms))
        if contracts.ENABLED:
            contracts.check_clock_monotonic(previous, self._now_ms)
        return self._now_ms

    def elapsed_since(self, t0_ms: float) -> float:
        """Return virtual milliseconds elapsed since the timestamp ``t0_ms``."""
        return self._now_ms - t0_ms

    def reset(self, start_ms: float = 0.0) -> None:
        """Rewind the clock to ``start_ms`` (for reusing a clock between runs)."""
        if start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {start_ms}")
        self._now_ms = float(start_ms)

    def __repr__(self) -> str:
        return f"VirtualClock(now_ms={self._now_ms:.3f})"


class Stopwatch:
    """Measures a span of virtual time on a :class:`VirtualClock`.

    Example:
        >>> clock = VirtualClock()
        >>> with Stopwatch(clock) as sw:
        ...     _ = clock.advance(12.5)
        >>> sw.elapsed_ms
        12.5
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start_ms: float | None = None
        self.elapsed_ms: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start_ms = self._clock.now_ms
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        assert self._start_ms is not None
        self.elapsed_ms = self._clock.elapsed_since(self._start_ms)
