"""Aggregation of per-inference results into the paper's two metrics.

The evaluation section reports *average latency* (total inference time
divided by total samples across all clients, Sec. VI-B) and *overall
accuracy* (fraction of correctly classified samples across all clients).
:class:`MetricsCollector` accumulates :class:`InferenceRecord` rows and
derives those metrics plus the cache-specific diagnostics used by the
motivation and threshold studies (hit ratio, hit accuracy, per-layer hit
histograms).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class InferenceRecord:
    """Outcome of a single inference on one frame.

    Attributes:
        true_class: ground-truth class of the frame.
        predicted_class: class returned to the application.
        latency_ms: end-to-end virtual latency charged for the frame.
        hit_layer: index of the cache layer that served the result, or
            ``None`` when the frame ran through the full model (cache miss
            or cache-free execution).
        client_id: identifier of the client that processed the frame.
    """

    true_class: int
    predicted_class: int
    latency_ms: float
    hit_layer: int | None = None
    client_id: int = 0

    @property
    def correct(self) -> bool:
        return self.true_class == self.predicted_class

    @property
    def hit(self) -> bool:
        return self.hit_layer is not None


@dataclass
class MetricsSummary:
    """Aggregated metrics over a set of inference records."""

    num_samples: int
    avg_latency_ms: float
    accuracy: float
    hit_ratio: float
    hit_accuracy: float
    miss_accuracy: float
    per_layer_hits: dict[int, int] = field(default_factory=dict)
    per_layer_hit_accuracy: dict[int, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, float]:
        """Flat representation used by the benchmark table printers."""
        return {
            "samples": self.num_samples,
            "latency_ms": round(self.avg_latency_ms, 2),
            "accuracy_pct": round(100.0 * self.accuracy, 2),
            "hit_ratio_pct": round(100.0 * self.hit_ratio, 2),
            "hit_accuracy_pct": round(100.0 * self.hit_accuracy, 2),
        }


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of a set of latency measurements.

    The shared reporting shape for anything that measures per-item
    times — the wall-clock load generator (:mod:`repro.serve`) and the
    ``repro profile-round`` per-round breakdown both emit it — so tail
    behaviour (p95/p99) is reported everywhere a mean alone would hide
    queueing or stragglers.
    """

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_row(self) -> dict[str, float]:
        """Flat representation for JSON payloads and table printers."""
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }

    def format(self) -> str:
        """One-line human rendering (``p50/p95/p99`` with mean and max)."""
        return (
            f"n={self.count} mean={self.mean_ms:.2f}ms "
            f"p50={self.p50_ms:.2f}ms p95={self.p95_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms max={self.max_ms:.2f}ms"
        )


def summarize_latencies(
    values_ms: Sequence[float] | np.ndarray,
) -> LatencySummary:
    """Percentile summary (p50/p95/p99, mean, max) of latency samples.

    Percentiles use linear interpolation (NumPy's default), so known
    small distributions have exact, testable values.

    Raises:
        ValueError: on an empty input — every reported statistic would
            be undefined, same contract as :meth:`MetricsCollector.summary`.
    """
    data = np.asarray(values_ms, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarize an empty latency set")
    if data.ndim != 1:
        data = data.reshape(-1)
    p50, p95, p99 = np.percentile(data, (50.0, 95.0, 99.0))
    return LatencySummary(
        count=int(data.size),
        mean_ms=float(data.mean()),
        p50_ms=float(p50),
        p95_ms=float(p95),
        p99_ms=float(p99),
        max_ms=float(data.max()),
    )


class MetricsCollector:
    """Accumulates inference records and produces a :class:`MetricsSummary`."""

    def __init__(self) -> None:
        self._records: list[InferenceRecord] = []

    def record(self, record: InferenceRecord) -> None:
        self._records.append(record)

    def extend(self, records: list[InferenceRecord]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> list[InferenceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> MetricsSummary:
        """Aggregate all recorded inferences.

        Raises:
            ValueError: if no records have been collected, because every
                reported metric would otherwise be undefined.
        """
        if not self._records:
            raise ValueError("cannot summarize an empty MetricsCollector")

        n = len(self._records)
        total_latency = sum(r.latency_ms for r in self._records)
        correct = sum(1 for r in self._records if r.correct)
        hits = [r for r in self._records if r.hit]
        misses = [r for r in self._records if not r.hit]

        hit_correct = sum(1 for r in hits if r.correct)
        miss_correct = sum(1 for r in misses if r.correct)

        layer_hits = Counter(r.hit_layer for r in hits)
        layer_correct = Counter(r.hit_layer for r in hits if r.correct)
        per_layer_hits = {int(j): int(c) for j, c in sorted(layer_hits.items())}
        per_layer_hit_accuracy = {
            int(j): layer_correct[j] / layer_hits[j] for j in sorted(layer_hits)
        }

        return MetricsSummary(
            num_samples=n,
            avg_latency_ms=total_latency / n,
            accuracy=correct / n,
            hit_ratio=len(hits) / n,
            hit_accuracy=hit_correct / len(hits) if hits else 0.0,
            miss_accuracy=miss_correct / len(misses) if misses else 0.0,
            per_layer_hits=per_layer_hits,
            per_layer_hit_accuracy=per_layer_hit_accuracy,
        )

    def summary_for_client(self, client_id: int) -> MetricsSummary:
        """Aggregate only the records produced by one client."""
        sub = MetricsCollector()
        sub.extend([r for r in self._records if r.client_id == client_id])
        return sub.summary()


def per_class_hit_rates(
    records: list[InferenceRecord], min_samples: int = 1
) -> dict[int, float]:
    """Cache-hit rate per ground-truth class over a set of records.

    Returns ``{class_id: hits / samples}`` for every class that appears in
    at least ``min_samples`` records.  Used to compare a sharded cluster
    run against its single-server reference class by class: aggregate hit
    ratio can mask a cluster that trades hits on one region's classes for
    hits on another's.
    """
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")
    seen: Counter = Counter()
    hits: Counter = Counter()
    for record in records:
        seen[record.true_class] += 1
        if record.hit:
            hits[record.true_class] += 1
    return {
        int(class_id): hits[class_id] / count
        for class_id, count in sorted(seen.items())
        if count >= min_samples
    }


def merge_summaries(summaries: list[MetricsSummary]) -> MetricsSummary:
    """Sample-weighted merge of per-client summaries (Eq. 8 of the paper).

    The paper defines global average latency as the sample-count-weighted
    mean of per-client averages; accuracy and hit statistics merge the same
    way.
    """
    if not summaries:
        raise ValueError("cannot merge an empty list of summaries")
    total = sum(s.num_samples for s in summaries)
    if total == 0:
        raise ValueError("summaries contain no samples")

    def weighted(attr: str) -> float:
        return sum(getattr(s, attr) * s.num_samples for s in summaries) / total

    hits_total = sum(s.hit_ratio * s.num_samples for s in summaries)
    hit_acc = (
        sum(s.hit_accuracy * s.hit_ratio * s.num_samples for s in summaries) / hits_total
        if hits_total > 0
        else 0.0
    )
    merged_layer_hits: Counter = Counter()
    for s in summaries:
        merged_layer_hits.update(s.per_layer_hits)
    return MetricsSummary(
        num_samples=total,
        avg_latency_ms=weighted("avg_latency_ms"),
        accuracy=weighted("accuracy"),
        hit_ratio=weighted("hit_ratio"),
        hit_accuracy=hit_acc,
        miss_accuracy=weighted("miss_accuracy"),
        per_layer_hits=dict(merged_layer_hits),
        per_layer_hit_accuracy={},
    )
