"""Simulation substrate: virtual time, metric aggregation, server load.

This package replaces the paper's physical testbed (Jetson TX2 clients, WiFi
router, Docker Swarm + MPI) with deterministic models so that every
experiment is reproducible on a laptop.  See DESIGN.md for the substitution
rationale.
"""

from repro.sim.clock import Stopwatch, VirtualClock
from repro.sim.metrics import (
    InferenceRecord,
    LatencySummary,
    MetricsCollector,
    MetricsSummary,
    merge_summaries,
    per_class_hit_rates,
    summarize_latencies,
)
from repro.sim.network import ServerLoadModel

__all__ = [
    "InferenceRecord",
    "LatencySummary",
    "MetricsCollector",
    "MetricsSummary",
    "ServerLoadModel",
    "Stopwatch",
    "VirtualClock",
    "merge_summaries",
    "per_class_hit_rates",
    "summarize_latencies",
]
