"""Simulated cache-instrumented model.

A :class:`SimulatedModel` stands in for a PyTorch model pre-set with cache
layers (Sec. II-3): it is partitioned into ``L + 1`` blocks with cache
layer ``j`` after block ``j``, exposes the per-layer semantic vector of a
sample (what global average pooling would produce), the final classifier
output, and charges compute / lookup costs to a virtual clock via its
:class:`~repro.models.profiles.LatencyProfile`.

The inference *control flow* (which layers to probe, when to exit early)
lives in :mod:`repro.core.engine` and the baseline pipelines — the model is
the passive substrate they all share.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import DatasetSpec
from repro.data.stream import Frame, FrameBlock
from repro.models.feature import (
    FeatureSpaceConfig,
    SampleBatch,
    SampleFeatures,
    SemanticFeatureSpace,
)
from repro.models.profiles import LatencyProfile


class SimulatedModel:
    """A block-structured DNN simulator with preset cache layers.

    Args:
        name: model identifier (e.g. ``"resnet101"``).
        dataset: the dataset spec the model is "trained" on; fixes the
            class count and difficulty level.
        profile: per-block latency + entry-size model.
        feature_config: semantic feature-space tunables.
        num_clients: number of client drift profiles to generate.
        seed: seed for the static feature geometry.
    """

    def __init__(
        self,
        name: str,
        dataset: DatasetSpec,
        profile: LatencyProfile,
        feature_config: FeatureSpaceConfig,
        num_clients: int = 1,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.dataset = dataset
        self.profile = profile
        geometry_rng = np.random.default_rng(seed)
        self.feature_space = SemanticFeatureSpace(
            num_classes=dataset.num_classes,
            num_layers=profile.num_cache_layers,
            num_clients=num_clients,
            config=feature_config,
            rng=geometry_rng,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes

    @property
    def num_cache_layers(self) -> int:
        """Number of preset cache layers ``L``."""
        return self.profile.num_cache_layers

    @property
    def total_compute_ms(self) -> float:
        """No-cache end-to-end latency (the Edge-Only cost)."""
        return self.profile.total_compute_ms

    # ------------------------------------------------------------------
    # Execution primitives
    # ------------------------------------------------------------------

    def draw_sample(
        self, frame: Frame, client_id: int, rng: np.random.Generator
    ) -> SampleFeatures:
        """Materialize the semantic features of one frame for one client."""
        return self.feature_space.draw_sample(frame, client_id, rng)

    def draw_samples(
        self,
        frames: FrameBlock | list[Frame],
        client_id: int,
        rng: np.random.Generator,
    ) -> SampleBatch:
        """Materialize a whole batch of frames as one :class:`SampleBatch`
        (vectorized counterpart of :meth:`draw_sample`)."""
        return self.feature_space.draw_samples(frames, client_id, rng)

    def block_time_ms(self, block: int) -> float:
        """Compute time of block ``block`` (0..L)."""
        return self.profile.block_time_ms(block)

    def lookup_cost_ms(self, num_entries: int) -> float:
        """Cost of probing one cache layer holding ``num_entries`` entries."""
        return self.profile.lookup_cost_ms(num_entries)

    def classify(self, sample: SampleFeatures) -> tuple[int, np.ndarray]:
        """Full-model output: (predicted class, softmax probabilities)."""
        return sample.model_prediction(), sample.probabilities()

    def classify_vectors(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized full-model output for a batch of final-layer vectors:
        ``(predictions, top-2 probability gaps)``, one row per sample."""
        return self.feature_space.classify_vectors(vectors)

    # ------------------------------------------------------------------
    # Cache-content helpers
    # ------------------------------------------------------------------

    def ideal_centroids(self, layer: int) -> np.ndarray:
        """Per-class centroids at a layer as learned from the global shared
        dataset — the initial content of the server's global cache table."""
        return self.feature_space.centroid_matrix(layer)

    def measure_accuracy(
        self,
        num_samples: int,
        rng: np.random.Generator,
        client_id: int = 0,
        class_distribution: np.ndarray | None = None,
        base_difficulty: float | None = None,
    ) -> float:
        """Monte-Carlo estimate of full-model accuracy (calibration aid)."""
        from repro.data.stream import StreamGenerator

        if class_distribution is None:
            class_distribution = np.full(self.num_classes, 1.0 / self.num_classes)
        stream = StreamGenerator(
            class_distribution=class_distribution,
            mean_run_length=self.dataset.mean_run_length,
            rng=rng,
            base_difficulty=(
                self.dataset.difficulty if base_difficulty is None else base_difficulty
            ),
            working_set_size=None,  # model accuracy, not stream composition
        )
        block = stream.take_block(num_samples)
        batch = self.draw_samples(block, client_id, rng)
        predictions, _ = self.classify_vectors(batch.final_vectors())
        return float(np.mean(predictions == block.class_ids))

    def __repr__(self) -> str:
        return (
            f"SimulatedModel({self.name!r}, classes={self.num_classes}, "
            f"cache_layers={self.num_cache_layers}, "
            f"compute={self.total_compute_ms:.2f}ms)"
        )
