"""Model substrate: synthetic semantic features + calibrated latency profiles."""

from repro.models.base import SimulatedModel
from repro.models.feature import (
    FeatureSpaceConfig,
    SampleBatch,
    SampleFeatures,
    SemanticFeatureSpace,
)
from repro.models.profiles import (
    LatencyProfile,
    LookupCostModel,
    ResNetStagePlan,
    build_profile,
)
from repro.models.zoo import DEFAULT_CLIENT_DRIFT, available_models, build_model

__all__ = [
    "DEFAULT_CLIENT_DRIFT",
    "FeatureSpaceConfig",
    "LatencyProfile",
    "LookupCostModel",
    "ResNetStagePlan",
    "SampleBatch",
    "SampleFeatures",
    "SemanticFeatureSpace",
    "SimulatedModel",
    "available_models",
    "build_model",
    "build_profile",
]
