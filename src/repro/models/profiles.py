"""Latency and memory profiles of the simulated models.

Latency in the paper is additive: executing blocks costs their compute
time, and every *active* cache layer adds a lookup cost that grows with the
number of entries scanned.  The paper's own measurements anchor the
calibration:

* ResNet101 end-to-end (no cache) ~= 40.6 ms on UCF101-50 (Table I);
* the total lookup latency of all 34 ResNet101 cache layers with a
  50-class cache equals 56.22% of the no-cache inference latency
  (Sec. III-1), i.e. ~0.67 ms per layer at 50 entries.

Memory accounting uses per-layer entry sizes: a cache entry at layer ``j``
is the pooled channel vector of that layer, so its size is
``channels_j * 4`` bytes; deep layers cost more memory, exactly the
``m_{i,j}`` of the paper's Eq. 6.

The lookup-cost definition lives in exactly one place —
:class:`LookupCostModel` / the profile's ``lookup_base_ms`` /
``lookup_per_entry_ms`` fields — and is shared by the inference engines
and ACA's expected-latency greedy, so the optimizer can never drift from
what the engine actually charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

#: Default lookup-cost calibration: 34 ResNet101 cache layers at 50
#: entries cost ~56% of the no-cache inference latency (Sec. III-1).
#: These are the ONLY copies of the literals — every consumer (engine,
#: ACA, profiles) goes through :class:`LookupCostModel` / a profile.
DEFAULT_LOOKUP_BASE_MS = 0.28
DEFAULT_LOOKUP_PER_ENTRY_MS = 0.0078


@dataclass(frozen=True)
class LookupCostModel:
    """The affine cache-lookup cost shared by every latency consumer.

    One lookup of a cache layer holding ``n > 0`` entries costs
    ``base_ms + per_entry_ms * n``; an empty layer costs nothing.  The
    inference engine charges this cost per probed layer, and ACA's
    expected-latency greedy optimizes against the *same* definition —
    extracting it here is what keeps the two from drifting apart.

    Attributes:
        base_ms: fixed cost of evaluating one active cache layer
            (pooling + normalization + bookkeeping).
        per_entry_ms: additional cost per cache entry scanned.
    """

    base_ms: float = DEFAULT_LOOKUP_BASE_MS
    per_entry_ms: float = DEFAULT_LOOKUP_PER_ENTRY_MS

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.per_entry_ms < 0:
            raise ValueError("lookup costs must be non-negative")

    def cost_ms(self, num_entries: int) -> float:
        """Cost of one cache-layer lookup scanning ``num_entries`` entries."""
        if num_entries < 0:
            raise ValueError(f"num_entries must be >= 0, got {num_entries}")
        if num_entries == 0:
            return 0.0
        return self.base_ms + self.per_entry_ms * num_entries

    __call__ = cost_ms


@dataclass(frozen=True)
class LatencyProfile:
    """Per-block compute times plus the cache-lookup cost model.

    A model with ``L`` cache layers has ``L + 1`` blocks; cache layer ``j``
    sits after block ``j`` (0-based).  A cache hit at layer ``j`` skips
    blocks ``j+1 .. L``.

    Attributes:
        block_times_ms: compute time of each of the ``L + 1`` blocks.
        lookup_base_ms: fixed cost of evaluating one active cache layer
            (pooling + normalization + bookkeeping).
        lookup_per_entry_ms: additional cost per cache entry scanned.
        entry_sizes_bytes: size of one cache entry at each of the ``L``
            cache layers (the per-class semantic centroid).
    """

    block_times_ms: tuple[float, ...]
    lookup_base_ms: float
    lookup_per_entry_ms: float
    entry_sizes_bytes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.block_times_ms) < 2:
            raise ValueError("need at least 2 blocks (1 cache layer)")
        if any(t < 0 for t in self.block_times_ms):
            raise ValueError("block times must be non-negative")
        if self.lookup_base_ms < 0 or self.lookup_per_entry_ms < 0:
            raise ValueError("lookup costs must be non-negative")
        if len(self.entry_sizes_bytes) != self.num_cache_layers:
            raise ValueError(
                f"entry_sizes_bytes must have {self.num_cache_layers} elements, "
                f"got {len(self.entry_sizes_bytes)}"
            )
        if any(s <= 0 for s in self.entry_sizes_bytes):
            raise ValueError("entry sizes must be positive")

    @property
    def num_blocks(self) -> int:
        return len(self.block_times_ms)

    @property
    def num_cache_layers(self) -> int:
        return len(self.block_times_ms) - 1

    @property
    def total_compute_ms(self) -> float:
        """End-to-end compute latency with no caching (Edge-Only)."""
        return float(sum(self.block_times_ms))

    def block_time_ms(self, block: int) -> float:
        return self.block_times_ms[block]

    def compute_up_to_layer_ms(self, layer: int) -> float:
        """Compute cost of blocks 0..layer (everything executed before a
        hit at cache layer ``layer`` can return)."""
        if not 0 <= layer < self.num_cache_layers:
            raise ValueError(f"layer {layer} out of range")
        return float(sum(self.block_times_ms[: layer + 1]))

    def saved_if_hit_at(self, layer: int) -> float:
        """Compute time skipped by a hit at cache layer ``layer`` (the
        paper's saved-inference-time vector Upsilon, compute time only)."""
        return self.total_compute_ms - self.compute_up_to_layer_ms(layer)

    @cached_property
    def lookup_cost_model(self) -> LookupCostModel:
        """This profile's lookup-cost definition as a shareable object
        (handed to ACA so allocation optimizes the true deployment cost)."""
        return LookupCostModel(
            base_ms=self.lookup_base_ms, per_entry_ms=self.lookup_per_entry_ms
        )

    def lookup_cost_ms(self, num_entries: int) -> float:
        """Cost of one cache-layer lookup scanning ``num_entries`` entries."""
        return self.lookup_cost_model.cost_ms(num_entries)

    def entry_size_bytes(self, layer: int) -> int:
        return self.entry_sizes_bytes[layer]

    def cache_size_bytes(self, entries_per_layer: dict[int, int]) -> int:
        """Total memory of a cache with ``entries_per_layer[j]`` entries at
        layer ``j`` (the paper's Eq. 6)."""
        total = 0
        for layer, count in entries_per_layer.items():
            if count < 0:
                raise ValueError(f"negative entry count at layer {layer}")
            total += count * self.entry_size_bytes(layer)
        return total


def build_profile(
    total_compute_ms: float,
    num_cache_layers: int,
    channels_per_layer: list[int],
    block_weights: list[float] | None = None,
    lookup_base_ms: float = DEFAULT_LOOKUP_BASE_MS,
    lookup_per_entry_ms: float = DEFAULT_LOOKUP_PER_ENTRY_MS,
) -> LatencyProfile:
    """Construct a :class:`LatencyProfile` from a total-latency budget.

    Args:
        total_compute_ms: calibrated end-to-end latency of the model.
        num_cache_layers: number of preset cache layers ``L``.
        channels_per_layer: pooled channel count at each cache layer
            (determines entry sizes; 4 bytes per channel).
        block_weights: optional relative compute weights of the ``L + 1``
            blocks; defaults to uniform.
        lookup_base_ms / lookup_per_entry_ms: lookup cost model, calibrated
            so 34 ResNet101 layers at 50 entries cost ~56% of the no-cache
            latency.
    """
    if total_compute_ms <= 0:
        raise ValueError("total_compute_ms must be positive")
    num_blocks = num_cache_layers + 1
    if block_weights is None:
        weights = np.full(num_blocks, 1.0)
    else:
        weights = np.asarray(block_weights, dtype=float)
        if weights.size != num_blocks:
            raise ValueError(
                f"block_weights must have {num_blocks} elements, got {weights.size}"
            )
        if np.any(weights <= 0):
            raise ValueError("block weights must be positive")
    weights = weights / weights.sum()
    block_times = tuple(float(t) for t in total_compute_ms * weights)
    if len(channels_per_layer) != num_cache_layers:
        raise ValueError(
            f"channels_per_layer must have {num_cache_layers} elements, "
            f"got {len(channels_per_layer)}"
        )
    entry_sizes = tuple(4 * int(c) for c in channels_per_layer)
    return LatencyProfile(
        block_times_ms=block_times,
        lookup_base_ms=lookup_base_ms,
        lookup_per_entry_ms=lookup_per_entry_ms,
        entry_sizes_bytes=entry_sizes,
    )


@dataclass(frozen=True)
class ResNetStagePlan:
    """Residual-stage layout used to derive ResNet channel counts / weights.

    Cache layers sit after the stem and after every residual block (hence
    ResNet101's 1 + 33 = 34 cache layers, matching the paper's "up to 34
    cache layers"); a final classifier-head block follows the last cache
    layer.
    """

    blocks_per_stage: tuple[int, ...] = (3, 4, 23, 3)
    channels_per_stage: tuple[int, ...] = (256, 512, 1024, 2048)
    stage_weight: tuple[float, ...] = field(default=(0.8, 0.9, 1.0, 1.35))
    stem_channels: int = 64
    stem_weight: float = 0.9
    head_weight: float = 0.45

    @property
    def num_cache_layers(self) -> int:
        return 1 + sum(self.blocks_per_stage)

    def channels(self) -> list[int]:
        """Pooled channel count at each cache layer (stem + every block)."""
        out: list[int] = [self.stem_channels]
        for count, ch in zip(self.blocks_per_stage, self.channels_per_stage):
            out.extend([ch] * count)
        return out

    def weights(self) -> list[float]:
        """Relative compute weights of the ``L + 1`` blocks (stem, residual
        blocks, classifier head)."""
        per_block: list[float] = [self.stem_weight]
        for count, w in zip(self.blocks_per_stage, self.stage_weight):
            per_block.extend([w] * count)
        per_block.append(self.head_weight)
        return per_block
