"""Synthetic semantic feature space replacing PyTorch activations.

The class-based semantic caching mechanism (Sec. II-3) consumes, at every
cache layer, a one-dimensional *semantic vector*: the global-average-pooled
intermediate activation, L2-normalized, compared to cached per-class
centroids by cosine similarity.  This module generates such vectors
directly, reproducing the geometry the paper's mechanism relies on:

* **Large common base, small isotropic spread.**  Pooled post-ReLU
  activations of *any* input correlate strongly with each other, so the
  cosine similarity between a sample and every cached centroid shares a
  large common base; only a small class-dependent margin rides on top.
  This is why the paper's discriminative scores are small numbers (Theta
  ~ 0.01-0.04) and, crucially, why a sample of a class *not present in the
  cache* produces a tight pack of similarities and a near-zero score —
  absent classes fall through to the full model instead of erroneously
  hitting.

* **Directed confusion, not isotropic noise.**  Real model errors are
  low-rank: a hard sample looks like a specific *confusable sibling*
  class, consistently at every depth.  Each sample therefore interpolates
  between its true class centroid and a per-sample confusion target from
  the same class cluster, with weight ``w`` driven by the frame's
  difficulty.  ``w > 0.5`` means the sample genuinely resembles the
  sibling more — the classifier and the cache err together, which is what
  bounds the cache's accuracy loss.

* **Depth-increasing class energy.**  The class-specific fraction of the
  representation grows with depth (shallow layers are dominated by the
  shared component), so discriminative margins — and hit ratios — grow
  with depth, while easy (low-``w``) samples already clear the threshold
  at shallow layers: the paper's Fig. 1b behaviour.

* **Per-client non-IID drift.**  A client's samples of class ``c``
  cluster around a client-specific offset of the global centroid; global
  cache updates (Sec. IV-D) exist precisely to track this.

Sampling comes in two granularities sharing the same generative process:
:meth:`SemanticFeatureSpace.draw_sample` materializes one
:class:`SampleFeatures` per frame (the reference scalar path), while
:meth:`SemanticFeatureSpace.draw_samples` draws a whole
:class:`SampleBatch` at once — sibling choice, the two-mode
confusion-weight draw, centroid mixing, and noise/normalization all
vectorized over the batch — feeding the batched inference engine and the
round pipeline without per-frame Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.stream import Frame, FrameBlock


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("cannot normalize a zero vector")
    return matrix / norms


@dataclass(frozen=True)
class FeatureSpaceConfig:
    """Tunables of the synthetic feature space.

    Attributes:
        dim: dimensionality of semantic vectors (stands in for the pooled
            channel count; fixed across layers for simplicity — memory
            accounting uses the real per-layer channel counts instead).
        class_energy_min / class_energy_max: fraction of centroid energy
            on the class-specific direction at the first / last cache
            layer (the remainder sits on the shared direction).
        final_class_energy: class-energy of the final classifier
            representation.
        iso_noise_max / iso_noise_min / final_iso_noise: isotropic noise
            scale at the first / last cache layer / final representation.
            Kept small: it models pooling jitter, not sample hardness.
        conf_base / conf_span / conf_mid / conf_sharp / conf_jitter: the
            difficulty -> confusion-weight mapping is *two-mode*: the
            frame is "hard" with probability
            ``sigmoid((h - conf_mid) / conf_sharp)``; easy frames draw

                w ~ conf_base + conf_jitter * U(0, 1)

            (far below the classification boundary), hard frames draw

                w ~ (boundary - 0.05) + conf_span * U(0, 1)

            capped at ``w_cap``, where ``boundary = 1 / (1 + primary
            share)`` is the weight at which the sample genuinely resembles
            its primary confusion target more than its own class.  Real
            streams are bimodal like this: most frames are unambiguous, a
            minority are genuine confusions on which the model and the
            cache err *together*.  ``conf_mid`` is the per-model accuracy
            knob: the hard-mode probability integrated over the difficulty
            distribution is (approximately) the model's error rate.
        conf_primary_share: the confusion mass splits over *two* sibling
            targets with this share on the primary one.  Splitting is what
            keeps absent-class samples from erroneously hitting a cached
            sibling: the top two cached siblings rise together, so the
            discriminative score stays below threshold unless the sample
            overwhelmingly resembles one specific sibling.
        w_cap: upper clip for the confusion weight.
        cluster_size: classes come in clusters of confusable siblings;
            confusion targets are drawn within the cluster.
        cluster_cos: energy fraction of the shared cluster direction in a
            class direction (sibling boost).
        smooth_frac / smooth_rank: energy fraction and rank of a low-rank
            *similarity continuum* shared by all classes.  Real class
            similarity matrices are smooth — every class has near and
            mid-distance neighbours at every similarity level — so the
            runner-up entry in any cache lookup is never far below the
            top.  Without this term all non-sibling similarities would be
            identical, and an absent class with exactly one cached sibling
            would see that sibling as a clean outlier: a confident
            erroneous hit.
        client_drift_scale: magnitude of per-(client, class) centroid
            offsets — the non-IID feature heterogeneity.
        drift_shared_frac: fraction of drift *energy* shared by all
            clients (the common environment shift — e.g. season, lighting,
            camera generation).  The paper's premise is that spatially
            proximate clients see similar data, which is exactly why
            aggregating their updates into a global cache helps; the
            shared component is what global updates can learn, the
            individual remainder is irreducible per-client mismatch.
        temperature: softmax temperature of the final classifier.
    """

    dim: int = 48
    class_energy_min: float = 0.08
    class_energy_max: float = 0.50
    final_class_energy: float = 0.55
    iso_noise_max: float = 0.24
    iso_noise_min: float = 0.12
    final_iso_noise: float = 0.10
    conf_base: float = 0.02
    conf_span: float = 0.38
    conf_mid: float = 0.545
    conf_sharp: float = 0.035
    conf_jitter: float = 0.10
    conf_primary_share: float = 0.65
    w_cap: float = 0.90
    cluster_size: int = 5
    cluster_cos: float = 0.40
    smooth_frac: float = 0.32
    smooth_rank: int = 8
    client_drift_scale: float = 0.0
    drift_shared_frac: float = 0.7
    temperature: float = 0.05

    def __post_init__(self) -> None:
        if self.dim < 4:
            raise ValueError(f"dim must be >= 4, got {self.dim}")
        if not 0.0 < self.class_energy_min <= self.class_energy_max <= 1.0:
            raise ValueError("need 0 < class_energy_min <= class_energy_max <= 1")
        if not 0.0 < self.final_class_energy <= 1.0:
            raise ValueError("final_class_energy must be in (0, 1]")
        if not 0.0 <= self.iso_noise_min <= self.iso_noise_max:
            raise ValueError("need 0 <= iso_noise_min <= iso_noise_max")
        if min(self.conf_base, self.conf_span, self.conf_jitter) < 0:
            raise ValueError("confusion parameters must be non-negative")
        if self.conf_sharp <= 0:
            raise ValueError("conf_sharp must be positive")
        if not 0.5 <= self.conf_primary_share <= 1.0:
            raise ValueError("conf_primary_share must be in [0.5, 1]")
        if not 0.5 <= self.w_cap <= 1.0:
            raise ValueError("w_cap must be in [0.5, 1]")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if not 0.0 <= self.cluster_cos < 1.0:
            raise ValueError("cluster_cos must be in [0, 1)")
        if not 0.0 <= self.smooth_frac < 1.0:
            raise ValueError("smooth_frac must be in [0, 1)")
        if self.cluster_cos + self.smooth_frac >= 1.0:
            raise ValueError("cluster_cos + smooth_frac must leave unique energy")
        if self.smooth_rank < 2:
            raise ValueError("smooth_rank must be >= 2")
        if not 0.0 <= self.drift_shared_frac <= 1.0:
            raise ValueError("drift_shared_frac must be in [0, 1]")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")


class SemanticFeatureSpace:
    """Generates per-layer semantic vectors for (class, client, frame).

    Args:
        num_classes: classes in the task.
        num_layers: number of cache layers; the *final* classifier
            representation lives at index ``num_layers``.
        num_clients: how many distinct client drift profiles to create.
        config: feature-space tunables.
        rng: generator for the static geometry (class directions, drifts).
            Per-sample randomness uses a generator passed at sampling time
            so streams can be re-drawn independently of the geometry.
    """

    def __init__(
        self,
        num_classes: int,
        num_layers: int,
        num_clients: int,
        config: FeatureSpaceConfig,
        rng: np.random.Generator,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {num_classes}")
        if num_layers < 1:
            raise ValueError(f"need >= 1 cache layer, got {num_layers}")
        if num_clients < 1:
            raise ValueError(f"need >= 1 client, got {num_clients}")
        self.num_classes = num_classes
        self.num_layers = num_layers
        self.num_clients = num_clients
        self.config = config

        d = config.dim
        # Class-specific unit directions: a cluster component (siblings
        # share it -> sibling cosine boost ~= cluster_cos), a smooth
        # low-rank background (continuum of mid-level similarities) and a
        # unique remainder.
        unique = _normalize_rows(rng.standard_normal((num_classes, d)))
        smooth_basis = rng.standard_normal((config.smooth_rank, d))
        smooth = _normalize_rows(rng.standard_normal((num_classes, config.smooth_rank)) @ smooth_basis)
        w_cluster = config.cluster_cos
        w_smooth = config.smooth_frac
        w_unique = 1.0 - w_cluster - w_smooth
        if w_cluster > 0 and config.cluster_size > 1:
            num_clusters = -(-num_classes // config.cluster_size)  # ceil
            cluster_dirs = _normalize_rows(rng.standard_normal((num_clusters, d)))
            assignments = np.arange(num_classes) // config.cluster_size
            cluster_part = cluster_dirs[assignments]
            self._cluster_of = assignments
        else:
            cluster_part = np.zeros((num_classes, d))
            w_unique += w_cluster
            w_cluster = 0.0
            self._cluster_of = np.arange(num_classes)
        mixed = (
            np.sqrt(w_cluster) * cluster_part
            + np.sqrt(w_smooth) * smooth
            + np.sqrt(w_unique) * unique
        )
        self._class_dirs = _normalize_rows(mixed)
        self._shared_dir = _normalize_rows(rng.standard_normal((1, d)))[0]
        # Per-(client, class) drift directions: a per-class environment
        # shift common to all clients plus an individual remainder.
        env = _normalize_rows(rng.standard_normal((num_classes, d)))
        indiv = _normalize_rows(rng.standard_normal((num_clients, num_classes, d)))
        f = config.drift_shared_frac
        self._drift_dirs = _normalize_rows(
            np.sqrt(f) * env[None, :, :] + np.sqrt(1.0 - f) * indiv
        )
        # Sibling lists for confusion-target sampling.
        self._siblings: list[np.ndarray] = []
        for c in range(num_classes):
            sibs = np.flatnonzero(
                (self._cluster_of == self._cluster_of[c])
                & (np.arange(num_classes) != c)
            )
            if sibs.size == 0:
                sibs = np.setdiff1d(np.arange(num_classes), [c])
            self._siblings.append(sibs)
        # Padded sibling table for vectorized confusion-target draws:
        # row c holds class c's siblings left-justified, padded with its
        # first sibling (the pad is never selected because draws are
        # bounded by the per-class sibling count).
        max_sibs = max(s.size for s in self._siblings)
        self._sibling_count = np.array([s.size for s in self._siblings])
        self._sibling_pad = np.zeros((num_classes, max_sibs), dtype=np.int64)
        for c, sibs in enumerate(self._siblings):
            self._sibling_pad[c, : sibs.size] = sibs
            self._sibling_pad[c, sibs.size :] = sibs[0]

        # Depth schedules (cache layers 0..L-1 plus the final layer at L).
        depth = np.linspace(0.0, 1.0, num_layers)
        energy = (
            config.class_energy_min
            + (config.class_energy_max - config.class_energy_min) * depth
        )
        noise = (
            config.iso_noise_max
            - (config.iso_noise_max - config.iso_noise_min) * depth
        )
        self._class_energy = np.append(energy, config.final_class_energy)
        self._iso_noise = np.append(noise, config.final_iso_noise)

        # Precompute ideal (undrifted) centroids for all layers: (L+1, I, d),
        # plus a class-major copy (I, L+1, d) so batched draws can gather
        # one contiguous (B, L+1, d) block per confusion role.
        self._centroids = np.stack(
            [self._layer_centroids(j) for j in range(num_layers + 1)]
        )
        self._centroids_by_class = np.ascontiguousarray(
            self._centroids.transpose(1, 0, 2)
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def _layer_centroids(self, layer: int) -> np.ndarray:
        a = self._class_energy[layer]
        mix = np.sqrt(a) * self._class_dirs + np.sqrt(1.0 - a) * self._shared_dir
        return _normalize_rows(mix)

    @property
    def final_layer(self) -> int:
        """Index of the final classifier representation."""
        return self.num_layers

    def cluster_of(self, class_id: int) -> int:
        """Confusion-cluster id of a class (siblings are confusable)."""
        return int(self._cluster_of[class_id])

    def siblings_of(self, class_id: int) -> np.ndarray:
        """Classes a sample of ``class_id`` can be confused with."""
        return self._siblings[class_id].copy()

    def class_energy(self, layer: int) -> float:
        """Class-specific energy fraction at a layer (grows with depth)."""
        return float(self._class_energy[layer])

    def noise_scale(self, layer: int) -> float:
        """Isotropic noise scale at a layer (shrinks with depth)."""
        return float(self._iso_noise[layer])

    def centroid(self, class_id: int, layer: int) -> np.ndarray:
        """Ideal global centroid of a class at a layer (unit norm).

        This is what a cache initialized from the server's *global shared
        dataset* contains before any global updates.
        """
        return self._centroids[layer, class_id].copy()

    def centroid_matrix(self, layer: int) -> np.ndarray:
        """All ideal class centroids at one layer: shape ``(I, dim)``."""
        return self._centroids[layer].copy()

    def classify_vectors(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized final classification of many samples at once.

        Args:
            vectors: ``(n, dim)`` final-layer semantic vectors.

        Returns:
            ``(predictions, top2_prob_gaps)`` — per row, the argmax class
            of the cosine logits and the gap between the two largest
            softmax probabilities (the Delta collection rule's signal),
            matching :meth:`SampleFeatures.model_prediction` /
            :meth:`SampleFeatures.probabilities` sample by sample.
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.config.dim:
            raise ValueError(
                f"vectors shape {vecs.shape} does not match (n, {self.config.dim})"
            )
        logits = vecs @ self._centroids[self.final_layer].T
        predictions = np.argmax(logits, axis=1)
        scaled = logits / self.config.temperature
        shifted = scaled - scaled.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        top2 = np.partition(probs, probs.shape[1] - 2, axis=1)[:, -2:]
        gaps = top2[:, 1] - top2[:, 0]
        return predictions, gaps

    def client_centroid(self, client_id: int, class_id: int, layer: int) -> np.ndarray:
        """Centre of *client* ``client_id``'s samples of a class at a layer.

        Equals the global centroid displaced by the client's drift; this is
        what a perfectly adapted cache entry would converge to for data
        from this client alone.
        """
        base = self._centroids[layer, class_id]
        drift = self._drift_dirs[client_id, class_id]
        mixed = base + self.config.client_drift_scale * drift
        return mixed / np.linalg.norm(mixed)

    # ------------------------------------------------------------------
    # Temporal evolution
    # ------------------------------------------------------------------

    def evolve_drift(self, magnitude: float, rng: np.random.Generator) -> None:
        """Random-walk the per-client drift directions (contextual change).

        The paper motivates periodic global updates with "capturing
        contextual feature changes in the client": environments evolve
        (lighting, season, traffic mix), so the centres of each client's
        class clusters move over time.  Calling this between rounds steps
        every drift direction by ``magnitude`` on the sphere; the shared
        fraction of the step follows :attr:`FeatureSpaceConfig.drift_shared_frac`,
        so global updates can keep tracking what is common.

        The walk *accumulates*: drift vectors are not renormalized, so the
        displacement from the initial (shared-dataset) state grows roughly
        with the square root of the number of steps — a frozen cache goes
        progressively stale, while updated caches keep tracking.

        A no-op when ``client_drift_scale`` is 0 (there is no drift to
        evolve).

        Args:
            magnitude: step size relative to the drift directions' initial
                unit norm (e.g. 0.1 = a 10% perturbation per call).
            rng: generator for the step.
        """
        if magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {magnitude}")
        if magnitude == 0 or self.config.client_drift_scale == 0:
            return
        f = self.config.drift_shared_frac
        shared_step = rng.standard_normal((1, self.num_classes, self.config.dim))
        indiv_step = rng.standard_normal(self._drift_dirs.shape)
        step = np.sqrt(f) * shared_step + np.sqrt(1.0 - f) * indiv_step
        step /= np.linalg.norm(step, axis=-1, keepdims=True)
        self._drift_dirs = self._drift_dirs + magnitude * step

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def confusion_weight(self, difficulty: float, rng: np.random.Generator) -> float:
        """Draw the per-sample confusion weight ``w`` for a difficulty."""
        cfg = self.config
        hard_prob = 1.0 / (1.0 + np.exp(-(difficulty - cfg.conf_mid) / cfg.conf_sharp))
        if rng.random() < hard_prob:
            boundary = 1.0 / (1.0 + cfg.conf_primary_share)
            w = (boundary - 0.05) + cfg.conf_span * float(rng.random())
        else:
            w = cfg.conf_base + cfg.conf_jitter * float(rng.random())
        return float(np.clip(w, 0.0, cfg.w_cap))

    def draw_sample(
        self,
        frame: Frame,
        client_id: int,
        rng: np.random.Generator,
    ) -> "SampleFeatures":
        """Materialize the per-layer semantic vectors of one frame.

        The sample interpolates between its class centroid and a randomly
        chosen confusion sibling with persistent weight ``w``, plus a small
        fresh isotropic perturbation per layer.
        """
        if not 0 <= frame.class_id < self.num_classes:
            raise ValueError(
                f"frame class {frame.class_id} out of range [0, {self.num_classes})"
            )
        if not 0 <= client_id < self.num_clients:
            raise ValueError(
                f"client_id {client_id} out of range [0, {self.num_clients})"
            )
        cfg = self.config
        d = cfg.dim
        num_levels = self.num_layers + 1

        siblings = self._siblings[frame.class_id]
        if siblings.size >= 2:
            chosen = rng.choice(siblings, size=2, replace=False)
            primary, secondary = int(chosen[0]), int(chosen[1])
        else:
            primary = secondary = int(siblings[0])
        w = self.confusion_weight(frame.difficulty, rng)
        share = cfg.conf_primary_share

        drift = cfg.client_drift_scale * self._drift_dirs[client_id]
        own_centers = self._centroids[:, frame.class_id, :] + drift[frame.class_id]
        primary_centers = self._centroids[:, primary, :] + drift[primary]
        secondary_centers = self._centroids[:, secondary, :] + drift[secondary]
        mixed = (
            (1.0 - w) * own_centers
            + w * share * primary_centers
            + w * (1.0 - share) * secondary_centers
        )  # (L+1, d)

        noise = rng.standard_normal((num_levels, d)) / np.sqrt(d)
        vectors = _normalize_rows(mixed + self._iso_noise[:, None] * noise)
        return SampleFeatures(
            frame=frame,
            client_id=client_id,
            vectors=vectors,
            space=self,
            confusion_target=primary,
            confusion_weight=w,
        )

    def draw_samples(
        self,
        frames: FrameBlock | Sequence[Frame],
        client_id: int,
        rng: np.random.Generator,
    ) -> "SampleBatch":
        """Materialize the semantic vectors of many frames at once.

        The batched counterpart of :meth:`draw_sample`: the same
        generative process — two distinct confusion siblings, the
        two-mode difficulty -> weight draw, centroid/drift mixing and
        per-layer isotropic noise — executed as whole-batch array
        operations.  Random-stream consumption differs from a per-frame
        ``draw_sample`` loop (arrays are drawn instead of scalars), so
        the two paths are distributionally, not bitwise, equivalent.
        """
        block = (
            frames
            if isinstance(frames, FrameBlock)
            else FrameBlock.from_frames(list(frames))
        )
        if not 0 <= client_id < self.num_clients:
            raise ValueError(
                f"client_id {client_id} out of range [0, {self.num_clients})"
            )
        cfg = self.config
        d = cfg.dim
        num_levels = self.num_layers + 1
        class_ids = block.class_ids
        batch = len(block)
        if batch == 0:
            return SampleBatch(
                block=block,
                client_id=client_id,
                vectors=np.zeros((0, num_levels, d)),
                space=self,
                confusion_targets=np.zeros(0, dtype=np.int64),
                confusion_weights=np.zeros(0),
            )
        if class_ids.min() < 0 or class_ids.max() >= self.num_classes:
            bad = int(class_ids.min() if class_ids.min() < 0 else class_ids.max())
            raise ValueError(
                f"frame class {bad} out of range [0, {self.num_classes})"
            )

        # Two distinct siblings per sample: a uniform index, then a
        # uniform index into the remaining pool shifted past the first —
        # the vectorized equivalent of ``rng.choice(sibs, 2, False)``.
        counts = self._sibling_count[class_ids]
        first = np.minimum((rng.random(batch) * counts).astype(np.int64), counts - 1)
        pool = np.maximum(counts - 1, 1)
        second = np.minimum((rng.random(batch) * pool).astype(np.int64), pool - 1)
        second = np.where(counts < 2, first, second + (second >= first))
        primary = self._sibling_pad[class_ids, first]
        secondary = self._sibling_pad[class_ids, second]

        # Two-mode confusion weights (vectorized confusion_weight).
        hard_prob = 1.0 / (
            1.0 + np.exp(-(block.difficulties - cfg.conf_mid) / cfg.conf_sharp)
        )
        is_hard = rng.random(batch) < hard_prob
        u = rng.random(batch)
        boundary = 1.0 / (1.0 + cfg.conf_primary_share)
        w = np.where(
            is_hard,
            (boundary - 0.05) + cfg.conf_span * u,
            cfg.conf_base + cfg.conf_jitter * u,
        )
        w = np.clip(w, 0.0, cfg.w_cap)

        # Class-major gathers yield fresh (B, L+1, d) blocks, so the mix
        # accumulates in place — no (L+1, B, d) transposed temporaries.
        centers = self._centroids_by_class
        share = cfg.conf_primary_share
        drift = (
            cfg.client_drift_scale * self._drift_dirs[client_id]
            if cfg.client_drift_scale != 0.0
            else None
        )
        mixed = centers[class_ids]
        if drift is not None:
            mixed += drift[class_ids][:, None, :]
        mixed *= (1.0 - w)[:, None, None]
        part = centers[primary]
        if drift is not None:
            part += drift[primary][:, None, :]
        part *= (w * share)[:, None, None]
        mixed += part
        part = centers[secondary]
        if drift is not None:
            part += drift[secondary][:, None, :]
        part *= (w * (1.0 - share))[:, None, None]
        mixed += part  # (B, L+1, d)
        noise = rng.standard_normal((batch, num_levels, d))
        noise *= (self._iso_noise / np.sqrt(d))[None, :, None]
        mixed += noise
        norms = np.sqrt(np.einsum("bld,bld->bl", mixed, mixed))
        if np.any(norms == 0):
            raise ValueError("cannot normalize a zero vector")
        mixed /= norms[:, :, None]
        vectors = mixed
        return SampleBatch(
            block=block,
            client_id=client_id,
            vectors=vectors,
            space=self,
            confusion_targets=primary,
            confusion_weights=w,
        )


class SampleFeatures:
    """Per-layer semantic vectors of one frame, plus final classification.

    Instances are produced by :meth:`SemanticFeatureSpace.draw_sample`; the
    inference engine reads vectors only at *active* cache layers, and the
    final logits only on a cache miss — mirroring what a real blockwise
    forward pass would compute.
    """

    def __init__(
        self,
        frame: Frame,
        client_id: int,
        vectors: np.ndarray,
        space: SemanticFeatureSpace,
        confusion_target: int,
        confusion_weight: float,
    ) -> None:
        self.frame = frame
        self.client_id = client_id
        self.confusion_target = confusion_target
        self.confusion_weight = confusion_weight
        self._vectors = vectors
        self._space = space
        self._logits: np.ndarray | None = None

    @property
    def true_class(self) -> int:
        return self.frame.class_id

    def vector(self, layer: int) -> np.ndarray:
        """Unit-norm semantic vector at cache layer ``layer``."""
        if not 0 <= layer <= self._space.num_layers:
            raise ValueError(
                f"layer {layer} out of range [0, {self._space.num_layers}]"
            )
        return self._vectors[layer]

    def vector_matrix(self) -> np.ndarray:
        """All per-layer semantic vectors as one ``(L + 1, dim)`` matrix
        (cache layers 0..L-1 plus the final representation at row L).

        Returned without copying so batch consumers can stack many
        samples cheaply — treat it as read-only.
        """
        return self._vectors

    def final_logits(self) -> np.ndarray:
        """Cosine logits of the full-model classifier (against global centroids)."""
        if self._logits is None:
            final = self._space.final_layer
            centroids = self._space._centroids[final]
            self._logits = centroids @ self._vectors[final]
        return self._logits

    def probabilities(self) -> np.ndarray:
        """Softmax class probabilities of the full model (for the Delta rule)."""
        logits = self.final_logits() / self._space.config.temperature
        shifted = logits - logits.max()
        exp = np.exp(shifted)
        return exp / exp.sum()

    def model_prediction(self) -> int:
        """Class the full model outputs when no cache layer hits."""
        return int(np.argmax(self.final_logits()))


class SampleBatch:
    """Structure-of-arrays batch of drawn samples.

    Produced by :meth:`SemanticFeatureSpace.draw_samples`.  Batch
    consumers (the batched inference engine, the round pipeline, server
    calibration) read the arrays directly; :meth:`sample` materializes a
    scalar :class:`SampleFeatures` view sharing the underlying vector
    row, so scalar reference paths can replay the identical batch.

    Attributes:
        block: the :class:`~repro.data.stream.FrameBlock` the samples
            were drawn for.
        client_id: drift profile the batch was drawn with.
        vectors: per-layer unit semantic vectors, shape ``(B, L+1, d)``
            (cache layers 0..L-1 plus the final representation at L).
        confusion_targets: primary confusion sibling per sample, ``(B,)``.
        confusion_weights: per-sample confusion weight ``w``, ``(B,)``.
    """

    def __init__(
        self,
        block: FrameBlock,
        client_id: int,
        vectors: np.ndarray,
        space: SemanticFeatureSpace,
        confusion_targets: np.ndarray,
        confusion_weights: np.ndarray,
    ) -> None:
        self.block = block
        self.client_id = client_id
        self.vectors = vectors
        self.confusion_targets = confusion_targets
        self.confusion_weights = confusion_weights
        self._space = space

    def __len__(self) -> int:
        return len(self.block)

    @property
    def space(self) -> SemanticFeatureSpace:
        return self._space

    @property
    def class_ids(self) -> np.ndarray:
        """Ground-truth class per sample (aligned with ``vectors``)."""
        return self.block.class_ids

    def final_vectors(self) -> np.ndarray:
        """Final-layer representations, shape ``(B, d)`` (no copy)."""
        return self.vectors[:, self._space.final_layer, :]

    def sample(self, index: int) -> SampleFeatures:
        """Scalar view of one batch element (shares the vector row)."""
        return SampleFeatures(
            frame=self.block.frame(index),
            client_id=self.client_id,
            vectors=self.vectors[index],
            space=self._space,
            confusion_target=int(self.confusion_targets[index]),
            confusion_weight=float(self.confusion_weights[index]),
        )

    def samples(self) -> list[SampleFeatures]:
        """Materialize every element as a scalar :class:`SampleFeatures`."""
        return [self.sample(i) for i in range(len(self))]
