"""Factory for the five evaluation models of the paper.

Latency budgets are calibrated to the paper's Edge-Only measurements:

================  =============  ==========================  ============
model             cache layers   no-cache latency (ms)       source
================  =============  ==========================  ============
VGG16_BN          13             29.94                       Table II
ResNet50          17             30.50                       Fig. 9
ResNet101         34             40.58                       Table I
ResNet152         51             62.85                       Table II
AST-Base          12             92.00                       Fig. 7b scale
================  =============  ==========================  ============

Cache-layer counts follow the architectures: one cache layer per conv layer
for VGG (13), stem + one per residual block for ResNets (ResNet101:
1 + 33 = 34, matching the paper's "up to 34 cache layers"), one per
transformer block for AST (12).
"""

from __future__ import annotations

from repro.data.datasets import DatasetSpec
from repro.models.base import SimulatedModel
from repro.models.feature import FeatureSpaceConfig
from repro.models.profiles import LatencyProfile, ResNetStagePlan, build_profile

#: Default drift magnitude for multi-client (non-IID feature) scenarios.
DEFAULT_CLIENT_DRIFT = 0.12

_RESNET_PLANS = {
    "resnet50": ResNetStagePlan(blocks_per_stage=(3, 4, 6, 3)),
    "resnet101": ResNetStagePlan(blocks_per_stage=(3, 4, 23, 3)),
    "resnet152": ResNetStagePlan(blocks_per_stage=(3, 8, 36, 3)),
}

_TOTAL_LATENCY_MS = {
    "vgg16_bn": 29.94,
    "resnet50": 30.50,
    "resnet101": 40.58,
    "resnet152": 62.85,
    "ast_base": 92.00,
}

#: Models whose feature space is slightly cleaner at shallow depth
#: (transformer attention pools globally; VGG has few cache layers so its
#: first one already sits deeper in relative depth).
_CLASS_ENERGY_MIN_OVERRIDE = {"ast_base": 0.11, "vgg16_bn": 0.10}

#: Confusion-midpoint offset per model, tuned so no-cache accuracy matches
#: the paper's Edge-Only numbers.  The midpoint is the dataset's base
#: difficulty plus this offset (deeper models tolerate more difficulty
#: before confusing a sample => larger offset => higher accuracy).
_CONF_MID_OFFSET = {
    "vgg16_bn": 0.191,
    "resnet50": 0.204,
    "resnet101": 0.205,
    "resnet152": 0.217,
    "ast_base": 0.216,
}


def _vgg_profile(total_ms: float) -> LatencyProfile:
    channels = [64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512]
    # Conv cost falls as spatial size shrinks faster than channels grow;
    # dense head is comparatively cheap at inference.
    weights = [1.3, 1.3, 1.15, 1.15, 1.0, 1.0, 1.0, 0.85, 0.85, 0.85, 0.7, 0.7, 0.7, 0.5]
    return build_profile(
        total_compute_ms=total_ms,
        num_cache_layers=13,
        channels_per_layer=channels,
        block_weights=weights,
    )


def _resnet_profile(name: str, total_ms: float) -> LatencyProfile:
    plan = _RESNET_PLANS[name]
    return build_profile(
        total_compute_ms=total_ms,
        num_cache_layers=plan.num_cache_layers,
        channels_per_layer=plan.channels(),
        block_weights=plan.weights(),
    )


def _ast_profile(total_ms: float) -> LatencyProfile:
    # Block 0 = patch embedding + first transformer block, blocks 1..11 =
    # remaining transformer blocks, block 12 = MLP head.
    channels = [768] * 12
    weights = [1.4] + [1.0] * 11 + [0.4]
    return build_profile(
        total_compute_ms=total_ms,
        num_cache_layers=12,
        channels_per_layer=channels,
        block_weights=weights,
    )


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_TOTAL_LATENCY_MS)


def build_model(
    name: str,
    dataset: DatasetSpec,
    num_clients: int = 1,
    seed: int = 0,
    client_drift_scale: float | None = None,
    feature_config: FeatureSpaceConfig | None = None,
) -> SimulatedModel:
    """Construct a calibrated simulated model.

    Args:
        name: one of :func:`available_models`.
        dataset: dataset spec (fixes class count and difficulty).
        num_clients: number of client drift profiles (use the experiment's
            client count whenever clients have non-IID features).
        seed: geometry seed; equal seeds give identical feature spaces.
        client_drift_scale: overrides the default non-IID feature drift
            (``None`` = :data:`DEFAULT_CLIENT_DRIFT` when ``num_clients > 1``
            else 0).
        feature_config: full override of the feature-space tunables (takes
            precedence over ``client_drift_scale``).
    """
    key = name.lower()
    if key not in _TOTAL_LATENCY_MS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    total_ms = _TOTAL_LATENCY_MS[key]
    if key == "vgg16_bn":
        profile = _vgg_profile(total_ms)
    elif key in _RESNET_PLANS:
        profile = _resnet_profile(key, total_ms)
    else:
        profile = _ast_profile(total_ms)

    if feature_config is None:
        if client_drift_scale is None:
            client_drift_scale = DEFAULT_CLIENT_DRIFT if num_clients > 1 else 0.0
        kwargs = {
            "client_drift_scale": client_drift_scale,
            "conf_mid": dataset.difficulty + _CONF_MID_OFFSET[key],
        }
        if key in _CLASS_ENERGY_MIN_OVERRIDE:
            kwargs["class_energy_min"] = _CLASS_ENERGY_MIN_OVERRIDE[key]
        feature_config = FeatureSpaceConfig(**kwargs)

    return SimulatedModel(
        name=key,
        dataset=dataset,
        profile=profile,
        feature_config=feature_config,
        num_clients=num_clients,
        seed=seed,
    )
