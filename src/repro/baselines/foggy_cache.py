"""FoggyCache baseline (Guo et al., MobiCom'18).

FoggyCache reuses computation *across devices*: each client keeps a local
cache of (feature vector, label) pairs indexed by A-LSH and answered by
homogenized kNN; on a local miss the query goes to the server, whose cache
aggregates entries from all clients (the cross-client reuse).  Caches use
LRU replacement — the policy the CoCa paper singles out as failing under
long-tail distributions.

Simulation mapping:

* the reuse feature is the semantic vector at a fixed early-mid layer
  (FoggyCache matches on input-derived features, i.e. shallow
  representations);
* a lookup hashes into the A-LSH index and scans only the returned
  candidates; its cost uses the model's lookup-cost coefficients over the
  candidate count;
* a server lookup adds a WiFi round trip (``server_rtt_ms``) and is only
  worthwhile because a server hit skips the remaining compute;
* labels are *inferred* (full-model outputs), as with every method here;
* local caches hold ``local_capacity`` entries with LRU eviction; the
  server cache aggregates what clients upload at round end.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.baselines.base import BaselineRunner
from repro.core.rng import derive_rng
from repro.experiments.scenario import Scenario
from repro.lsh.alsh import AdaptiveLSH
from repro.lsh.hknn import KnnVote, homogenized_knn
from repro.models.feature import SampleFeatures
from repro.sim.metrics import InferenceRecord


class LshLruCache:
    """Fixed-capacity (vector, label) cache: A-LSH candidates, LRU eviction."""

    def __init__(self, capacity: int, dim: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._index = AdaptiveLSH(dim=dim, rng=rng)
        # item id -> (vector, label); order = recency (oldest first).
        self._items: OrderedDict[int, tuple[np.ndarray, int]] = OrderedDict()
        # Running mean of stored vectors: the standardization center.
        self._mean = np.zeros(dim)
        self._mean_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def insert(self, vector: np.ndarray, label: int) -> None:
        vec = np.asarray(vector, dtype=float)
        item_id = self._index.insert(vec)
        self._items[item_id] = (vec.copy(), int(label))
        self._mean_count += 1
        self._mean += (vec - self._mean) / self._mean_count
        while len(self._items) > self.capacity:
            old_id, _ = self._items.popitem(last=False)
            self._index.delete(old_id)

    def candidates(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """(vectors, labels, ids) of the query's LSH bucket."""
        ids = [i for i in self._index.query(query) if i in self._items]
        if not ids:
            return np.zeros((0, query.size)), np.zeros(0, dtype=int), []
        vectors = np.stack([self._items[i][0] for i in ids])
        labels = np.array([self._items[i][1] for i in ids])
        return vectors, labels, ids

    def vote(
        self,
        query: np.ndarray,
        k: int,
        threshold: float,
        min_similarity: float = -1.0,
    ) -> tuple[KnnVote, int]:
        """H-kNN vote over the query's candidates; returns (vote, scanned)."""
        vectors, labels, ids = self.candidates(query)
        center = self._mean if self._mean_count > 0 else None
        vote = homogenized_knn(
            query,
            vectors,
            labels,
            k=k,
            threshold=threshold,
            center=center,
            min_similarity=min_similarity,
        )
        if vote.hit:
            # LRU touch of the entries that carried the vote's label.
            for item_id in ids:
                if self._items[item_id][1] == vote.label:
                    self._items.move_to_end(item_id)
        return vote, len(ids)


class FoggyCache(BaselineRunner):
    """Cross-client approximate reuse with A-LSH + H-kNN + LRU.

    Args:
        scenario: shared evaluation setting.
        reuse_depth: relative depth (0-1) of the feature layer used for
            matching.
        k: kNN neighbourhood size.
        homogeneity_threshold: H-kNN confidence needed for reuse.
        local_capacity: per-client cache entries.
        server_capacity: server cache entries.
        server_rtt_ms: round-trip latency of a server lookup.
        min_similarity: distance criterion of the homogenized vote
            (centered cosine below this does not count as a neighbour).
        insert_confidence: minimum full-model top-2 probability gap before
            a computed result is cached (a quality gate on reuse entries:
            misses skew toward hard frames, whose predicted labels would
            otherwise poison the cache).
        frames_per_round: frames per client per round.
    """

    name = "FoggyCache"

    def __init__(
        self,
        scenario: Scenario,
        reuse_depth: float = 0.45,
        k: int = 8,
        homogeneity_threshold: float = 0.85,
        local_capacity: int = 400,
        server_capacity: int = 4000,
        server_rtt_ms: float = 9.0,
        insert_confidence: float = 0.20,
        min_similarity: float = 0.72,
        frames_per_round: int = 300,
    ) -> None:
        super().__init__(scenario, frames_per_round)
        model = self.model
        self.reuse_layer = int(
            np.clip(
                round(reuse_depth * (model.num_cache_layers - 1)),
                0,
                model.num_cache_layers - 1,
            )
        )
        self.k = int(k)
        self.homogeneity_threshold = float(homogeneity_threshold)
        self.server_rtt_ms = float(server_rtt_ms)
        self.insert_confidence = float(insert_confidence)
        self.min_similarity = float(min_similarity)
        dim = model.feature_space.config.dim
        lsh_rng = derive_rng(scenario.seed, "foggycache.lsh")
        self._local = [
            LshLruCache(local_capacity, dim, lsh_rng)
            for _ in range(scenario.num_clients)
        ]
        self._server = LshLruCache(server_capacity, dim, lsh_rng)
        self._pending_uploads: list[list[tuple[np.ndarray, int]]] = [
            [] for _ in range(scenario.num_clients)
        ]

    # ------------------------------------------------------------------

    def _lookup_cost_ms(self, num_candidates: int) -> float:
        """Hash + candidate-scan cost, using the model's lookup model."""
        profile = self.model.profile
        return profile.lookup_base_ms + profile.lookup_per_entry_ms * num_candidates

    def process(self, client_id: int, sample: SampleFeatures) -> InferenceRecord:
        profile = self.model.profile
        layer = self.reuse_layer
        query = sample.vector(layer)
        # Reaching the reuse layer costs its prefix compute.
        latency = profile.compute_up_to_layer_ms(layer)

        vote, scanned = self._local[client_id].vote(
            query, self.k, self.homogeneity_threshold, self.min_similarity
        )
        latency += self._lookup_cost_ms(scanned)
        if vote.hit:
            return InferenceRecord(
                true_class=sample.true_class,
                predicted_class=vote.label,
                latency_ms=latency,
                hit_layer=layer,
                client_id=client_id,
            )

        # Local miss: consult the server's aggregated cache.
        server_vote, server_scanned = self._server.vote(
            query, self.k, self.homogeneity_threshold, self.min_similarity
        )
        latency += self.server_rtt_ms + self._lookup_cost_ms(server_scanned)
        if server_vote.hit:
            self._local[client_id].insert(query, server_vote.label)
            return InferenceRecord(
                true_class=sample.true_class,
                predicted_class=server_vote.label,
                latency_ms=latency,
                hit_layer=layer,
                client_id=client_id,
            )

        # Full miss: run the rest of the model; cache confident results.
        predicted, probs = self.model.classify(sample)
        latency += profile.total_compute_ms - profile.compute_up_to_layer_ms(layer)
        top2 = np.partition(probs, -2)[-2:]
        if float(abs(top2[1] - top2[0])) > self.insert_confidence:
            self._local[client_id].insert(query, predicted)
            self._pending_uploads[client_id].append((query.copy(), predicted))
        return InferenceRecord(
            true_class=sample.true_class,
            predicted_class=predicted,
            latency_ms=latency,
            hit_layer=None,
            client_id=client_id,
        )

    def on_client_round_end(self, client_id: int, round_index: int) -> None:
        """Push this round's new entries to the server cache."""
        for vector, label in self._pending_uploads[client_id]:
            self._server.insert(vector, label)
        self._pending_uploads[client_id].clear()
