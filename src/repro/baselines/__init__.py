"""Baseline inference pipelines evaluated against CoCa (Sec. VI-B)."""

from repro.baselines.base import BaselineRunner, EdgeOnly, top2_gap
from repro.baselines.coca_runner import CoCaRunner
from repro.baselines.foggy_cache import FoggyCache, LshLruCache
from repro.baselines.learned_cache import LearnedCache
from repro.baselines.replacement import POLICIES, ReplacementPolicyCache
from repro.baselines.smtm import SMTM

__all__ = [
    "POLICIES",
    "BaselineRunner",
    "CoCaRunner",
    "EdgeOnly",
    "FoggyCache",
    "LearnedCache",
    "LshLruCache",
    "ReplacementPolicyCache",
    "SMTM",
    "top2_gap",
]
