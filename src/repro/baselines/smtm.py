"""SMTM baseline (Li et al., MM'21), extended to multiple clients.

SMTM is the single-client semantic-caching system CoCa builds on: class
centroids of pooled intermediate features are cached at preset layers and
matched by cumulative cosine similarity — the same Eq. 1/2 machinery as
CoCa.  The differences, which are exactly CoCa's contributions, are:

* **no collaboration** — each client adapts its cache from its own stream
  only; there are no global updates, so non-IID feature drift is never
  shared (a client must rediscover everything itself);
* **fixed cache layers** — SMTM profiles the model offline and activates
  a static set of layers; only the *classes* in the cache adapt;
* **local class scoring** — hot-spot classes are chosen by the client's
  own frequency/recency statistics (the scheme CoCa generalizes in
  Eq. 10), with the same 95% score-mass rule.

Cache entries start from the server-deployed initial centroids (shared
dataset) and adapt locally with an EMA of confidently-hit samples.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineRunner
from repro.core.allocation import select_hotspot_classes
from repro.core.cache import SemanticCache
from repro.core.engine import CachedInferenceEngine
from repro.experiments.scenario import Scenario
from repro.models.feature import SampleFeatures
from repro.sim.metrics import InferenceRecord


class SMTM(BaselineRunner):
    """Per-client semantic cache with fixed layers and local adaptation.

    Args:
        scenario: shared evaluation setting.
        theta: Eq. 2 hit threshold.
        alpha: Eq. 1 cross-layer decay.
        num_layers_active: number of (evenly spaced) active cache layers.
        min_relative_depth: shallowest activated depth (0-1); SMTM's
            offline profiling avoids the undiscriminative early layers.
        hotspot_mass: score-mass rule for hot-spot classes (0.95).
        recency_base: recency discount base per stale round.
        ema: adaptation rate of cache entries toward confident hits.
        reinforce_margin: hit score needed before a sample adapts entries.
        frames_per_round: frames per client per round (cache refresh
            cadence).
    """

    name = "SMTM"

    def __init__(
        self,
        scenario: Scenario,
        theta: float = 0.04,
        alpha: float = 0.5,
        num_layers_active: int = 6,
        min_relative_depth: float = 0.25,
        hotspot_mass: float = 0.95,
        recency_base: float = 0.20,
        ema: float = 0.05,
        reinforce_margin: float = 0.10,
        frames_per_round: int = 300,
    ) -> None:
        super().__init__(scenario, frames_per_round)
        model = self.model
        L = model.num_cache_layers
        start = int(np.clip(round(min_relative_depth * (L - 1)), 0, L - 1))
        count = min(num_layers_active, L - start)
        self.active_layers = sorted(
            {int(round(x)) for x in np.linspace(start, L - 1, count)}
        )
        self.theta = float(theta)
        self.alpha = float(alpha)
        self.hotspot_mass = float(hotspot_mass)
        self.recency_base = float(recency_base)
        self.ema = float(ema)
        self.reinforce_margin = float(reinforce_margin)

        num_classes = model.num_classes
        # Per-client adapted centroids (start = server-deployed ideals).
        self._centroids = {
            j: np.stack(
                [model.ideal_centroids(j) for _ in range(scenario.num_clients)]
            )
            for j in self.active_layers
        }
        self._freq = np.zeros((scenario.num_clients, num_classes))
        self._tau = np.zeros((scenario.num_clients, num_classes))
        self._engines: list[CachedInferenceEngine] = []
        for k in range(scenario.num_clients):
            engine = CachedInferenceEngine(model, cache=None)
            self._engines.append(engine)
            self._refresh_cache(k)

    # ------------------------------------------------------------------

    def _local_scores(self, client_id: int) -> np.ndarray:
        staleness = np.floor(self._tau[client_id] / self.frames_per_round)
        freq = self._freq[client_id] + 1.0  # +1 prior: cold start caches all
        return freq * np.power(self.recency_base, staleness)

    def _refresh_cache(self, client_id: int) -> None:
        """Rebuild the client's cache from its local hot-spot classes."""
        hotspot = select_hotspot_classes(
            self._local_scores(client_id), self.hotspot_mass
        )
        cache = SemanticCache(
            self.model.num_classes, alpha=self.alpha, theta=self.theta
        )
        for layer in self.active_layers:
            cache.set_layer_entries(
                layer, hotspot, self._centroids[layer][client_id, hotspot]
            )
        self._engines[client_id].set_cache(cache)

    def process(self, client_id: int, sample: SampleFeatures) -> InferenceRecord:
        outcome = self._engines[client_id].infer(sample)
        predicted = outcome.predicted_class
        self._tau[client_id] += 1.0
        self._tau[client_id, predicted] = 0.0
        self._freq[client_id, predicted] += 1.0

        # Local adaptation: confident hits pull their entries toward the
        # sample (SMTM's online centroid update), up to the hit layer.
        if (
            outcome.hit_layer is not None
            and outcome.hit_score is not None
            and outcome.hit_score > self.reinforce_margin
        ):
            for probe in outcome.probes:
                layer = probe.layer
                current = self._centroids[layer][client_id, predicted]
                updated = (1 - self.ema) * current + self.ema * sample.vector(layer)
                norm = np.linalg.norm(updated)
                if norm > 0:
                    self._centroids[layer][client_id, predicted] = updated / norm

        return InferenceRecord(
            true_class=sample.true_class,
            predicted_class=predicted,
            latency_ms=outcome.latency_ms,
            hit_layer=outcome.hit_layer,
            client_id=client_id,
        )

    def on_client_round_end(self, client_id: int, round_index: int) -> None:
        self._refresh_cache(client_id)
