"""LearnedCache baseline (Balasubramanian et al., 2021).

LearnedCache inserts multiple *early exits* into the model; at each exit a
small learned head predicts the class and a confidence, and inference
terminates early when the head is confident.  The heads are retrained
frequently to track the stream distribution, which costs compute on the
device — the overhead the CoCa paper criticizes — and rare (long-tail)
classes never accumulate enough recent samples for effective retraining,
so their head predictions stay noisy.

Simulation mapping:

* exit heads sit at evenly spaced eligible cache layers; a head classifies
  from the layer's semantic vector against the ideal centroids, with extra
  Gaussian logit noise inversely proportional to sqrt(recent class
  frequency) — small heads are noisier than the full classifier, and
  noisier still for classes with little retraining data;
* an exit fires when the head's top-2 cosine-margin exceeds
  ``exit_margin``;
* every frame is charged ``head_cost_ms`` per evaluated exit (the head is
  a small FC layer — comparable to a cache lookup) plus an amortized
  ``retrain_ms_per_frame`` for the periodic on-device retraining.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineRunner
from repro.core.rng import derive_rng
from repro.experiments.scenario import Scenario
from repro.models.feature import SampleFeatures
from repro.sim.metrics import InferenceRecord


class LearnedCache(BaselineRunner):
    """Multi-exit inference with learned per-exit predictors.

    Args:
        scenario: shared evaluation setting.
        num_exits: number of early-exit heads.
        exit_margin: top-2 cosine-margin needed to exit early.
        head_noise: base logit-noise scale of an exit head.
        head_cost_ms: per-exit evaluation cost.
        retrain_ms_per_frame: amortized on-device retraining cost.
        frames_per_round: frames per client per round.
    """

    name = "LearnedCache"

    def __init__(
        self,
        scenario: Scenario,
        num_exits: int = 6,
        exit_margin: float = 0.055,
        head_noise: float = 0.035,
        head_cost_ms: float = 0.55,
        retrain_ms_per_frame: float = 0.85,
        frames_per_round: int = 300,
    ) -> None:
        super().__init__(scenario, frames_per_round)
        if num_exits < 1:
            raise ValueError(f"num_exits must be >= 1, got {num_exits}")
        model = self.model
        num_layers = model.num_cache_layers
        # Exits skip the first quarter of the network (too undiscriminative
        # for a small head) and spread evenly over the remainder.
        start = max(1, num_layers // 4)
        count = min(num_exits, num_layers - start)
        self.exit_layers = sorted(
            {int(round(x)) for x in np.linspace(start, num_layers - 1, count)}
        )
        self.exit_margin = float(exit_margin)
        self.head_noise = float(head_noise)
        self.head_cost_ms = float(head_cost_ms)
        self.retrain_ms_per_frame = float(retrain_ms_per_frame)
        self._centroids = {j: model.ideal_centroids(j) for j in self.exit_layers}
        # Recent class frequencies per client drive the long-tail noise
        # penalty (few recent samples => poorly retrained head).
        self._recent_freq = np.full(
            (scenario.num_clients, model.num_classes), 1.0 / model.num_classes
        )
        self._round_counts = np.zeros_like(self._recent_freq)
        self._noise_rng = derive_rng(scenario.seed, "learnedcache.noise")

    def _head_prediction(
        self, client_id: int, layer: int, sample: SampleFeatures
    ) -> tuple[int, float]:
        """Exit-head output: (predicted class, top-2 margin)."""
        sims = self._centroids[layer] @ sample.vector(layer)
        freq = self._recent_freq[client_id]
        noise_scale = self.head_noise / np.sqrt(
            np.maximum(freq * self.model.num_classes, 0.05)
        )
        noisy = sims + noise_scale * self._noise_rng.standard_normal(sims.size)
        order = np.argsort(noisy)
        margin = float(noisy[order[-1]] - noisy[order[-2]])
        return int(order[-1]), margin

    def process(self, client_id: int, sample: SampleFeatures) -> InferenceRecord:
        profile = self.model.profile
        latency = self.retrain_ms_per_frame
        for layer in self.exit_layers:
            latency += self.head_cost_ms
            predicted, margin = self._head_prediction(client_id, layer, sample)
            if margin > self.exit_margin:
                self._round_counts[client_id, predicted] += 1
                return InferenceRecord(
                    true_class=sample.true_class,
                    predicted_class=predicted,
                    latency_ms=latency + profile.compute_up_to_layer_ms(layer),
                    hit_layer=layer,
                    client_id=client_id,
                )
        predicted, _ = self.model.classify(sample)
        self._round_counts[client_id, predicted] += 1
        return InferenceRecord(
            true_class=sample.true_class,
            predicted_class=predicted,
            latency_ms=latency + profile.total_compute_ms,
            hit_layer=None,
            client_id=client_id,
        )

    def on_client_round_end(self, client_id: int, round_index: int) -> None:
        """Retraining refreshes the head's notion of class frequencies."""
        counts = self._round_counts[client_id]
        total = counts.sum()
        if total > 0:
            blend = 0.5
            self._recent_freq[client_id] = (
                (1 - blend) * self._recent_freq[client_id] + blend * counts / total
            )
        self._round_counts[client_id] = 0.0
