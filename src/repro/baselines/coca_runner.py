"""Adapter running CoCa itself under the baseline-runner interface.

Experiment drivers compare methods by calling ``runner.run(num_rounds)``
uniformly; this adapter wraps :class:`repro.core.framework.CoCaFramework`
(built from the same :class:`~repro.experiments.scenario.Scenario` seed
discipline, so the feature geometry and streams match the baselines).
"""

from __future__ import annotations

from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.experiments.scenario import Scenario
from repro.sim.metrics import MetricsCollector


class CoCaRunner:
    """CoCa under the common run(num_rounds, warmup_rounds) interface.

    Args:
        scenario: shared evaluation setting.
        config: CoCa hyper-parameters (``None`` = defaults).
        enable_dca / enable_gcu: ablation switches.
        budget_fraction: per-client cache budget as a fraction of the full
            global table (``None`` = config default).
        budget_bytes: absolute per-client budget override (takes
            precedence over ``budget_fraction``; used by the Fig. 8
            memory-matched comparison).
    """

    name = "CoCa"

    def __init__(
        self,
        scenario: Scenario,
        config: CoCaConfig | None = None,
        enable_dca: bool = True,
        enable_gcu: bool = True,
        budget_fraction: float | None = None,
        budget_bytes: int | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config if config is not None else CoCaConfig()
        self.framework = CoCaFramework(
            dataset=scenario.dataset,
            model_name=scenario.model_name,
            num_clients=scenario.num_clients,
            config=self.config,
            seed=scenario.seed,
            non_iid_level=scenario.non_iid_level,
            longtail_rho=scenario.longtail_rho,
            enable_dca=enable_dca,
            enable_gcu=enable_gcu,
            budget_fraction=budget_fraction,
            client_drift_scale=scenario.client_drift_scale,
        )
        if budget_bytes is not None:
            for client in self.framework.clients:
                client.cache_budget_bytes = int(budget_bytes)
        self.model = self.framework.model

    def run(self, num_rounds: int, warmup_rounds: int = 0) -> MetricsCollector:
        result = self.framework.run(num_rounds, warmup_rounds=warmup_rounds)
        return result.metrics
