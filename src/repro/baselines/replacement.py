"""Classical cache-replacement policies for the ACA comparison (Fig. 8).

The Fig. 8 experiment holds the cache *structure* fixed — a static set of
high-benefit cache layers, each able to hold at most ``cache_size`` class
entries — and varies only the policy deciding which classes are resident:

* **LRU** — evict the class unused for longest;
* **FIFO** — evict the class resident for longest;
* **RAND** — evict a uniformly random class;
* **ACA** (run via :class:`repro.core.framework.CoCaFramework` with the
  same total memory) — the paper's allocation algorithm.

On a miss, the full model runs and the predicted class's centroids are
installed at every active layer (one eviction if full).  Entry vectors
come from the server-deployed global table, as in the other methods.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.baselines.base import BaselineRunner
from repro.core.cache import SemanticCache
from repro.core.engine import CachedInferenceEngine
from repro.core.rng import derive_rng
from repro.experiments.scenario import Scenario
from repro.models.feature import SampleFeatures
from repro.sim.metrics import InferenceRecord

POLICIES = ("lru", "fifo", "rand")


class ReplacementPolicyCache(BaselineRunner):
    """Fixed-layer semantic cache managed by a classical policy.

    Args:
        scenario: shared evaluation setting.
        policy: one of ``"lru"``, ``"fifo"``, ``"rand"``.
        cache_size: maximum resident classes (entries per layer).
        theta: Eq. 2 hit threshold.
        alpha: Eq. 1 decay.
        num_layers_active: static active-layer count.
        min_relative_depth: shallowest activated depth (0-1).
        frames_per_round: frames per client per round.
    """

    def __init__(
        self,
        scenario: Scenario,
        policy: str = "lru",
        cache_size: int = 30,
        theta: float = 0.04,
        alpha: float = 0.5,
        num_layers_active: int = 6,
        min_relative_depth: float = 0.25,
        frames_per_round: int = 300,
    ) -> None:
        super().__init__(scenario, frames_per_round)
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if cache_size < 2:
            raise ValueError(f"cache_size must be >= 2, got {cache_size}")
        self.name = policy.upper()
        self.policy = policy
        self.cache_size = int(cache_size)
        model = self.model
        L = model.num_cache_layers
        start = int(np.clip(round(min_relative_depth * (L - 1)), 0, L - 1))
        count = min(num_layers_active, L - start)
        self.active_layers = sorted(
            {int(round(x)) for x in np.linspace(start, L - 1, count)}
        )
        self.theta = float(theta)
        self.alpha = float(alpha)
        self._centroids = {j: model.ideal_centroids(j) for j in self.active_layers}
        self._rand_rng = derive_rng(scenario.seed, "replacement.evict")

        # Per-client residency: class id -> insertion order (OrderedDict
        # gives both FIFO order and, via move_to_end, LRU order).
        self._resident: list[OrderedDict[int, None]] = []
        self._engines: list[CachedInferenceEngine] = []
        for k in range(scenario.num_clients):
            resident: OrderedDict[int, None] = OrderedDict()
            # Warm start: the first `cache_size` classes by client prior.
            order = np.argsort(-scenario.distributions[k])
            for class_id in order[: self.cache_size]:
                resident[int(class_id)] = None
            self._resident.append(resident)
            engine = CachedInferenceEngine(model, cache=None)
            self._engines.append(engine)
            self._rebuild(k)

    # ------------------------------------------------------------------

    def _rebuild(self, client_id: int) -> None:
        resident = list(self._resident[client_id])
        cache = SemanticCache(
            self.model.num_classes, alpha=self.alpha, theta=self.theta
        )
        ids = np.array(resident, dtype=int)
        for layer in self.active_layers:
            cache.set_layer_entries(layer, ids, self._centroids[layer][ids])
        self._engines[client_id].set_cache(cache)

    def _evict_one(self, client_id: int) -> None:
        resident = self._resident[client_id]
        if self.policy == "rand":
            victim = list(resident)[int(self._rand_rng.integers(len(resident)))]
            del resident[victim]
        else:
            # LRU keeps recency order via move_to_end; FIFO never reorders,
            # so popping the front implements both.
            resident.popitem(last=False)

    def process(self, client_id: int, sample: SampleFeatures) -> InferenceRecord:
        outcome = self._engines[client_id].infer(sample)
        predicted = outcome.predicted_class
        resident = self._resident[client_id]

        if outcome.hit_layer is not None:
            if self.policy == "lru" and predicted in resident:
                resident.move_to_end(predicted)
        elif predicted not in resident:
            # Miss on a non-resident class: install it (policy eviction).
            while len(resident) >= self.cache_size:
                self._evict_one(client_id)
            resident[predicted] = None
            self._rebuild(client_id)
        elif self.policy == "lru":
            resident.move_to_end(predicted)

        return InferenceRecord(
            true_class=sample.true_class,
            predicted_class=predicted,
            latency_ms=outcome.latency_ms,
            hit_layer=outcome.hit_layer,
            client_id=client_id,
        )

    def memory_bytes(self) -> int:
        """Total cache memory of one client (for budget-matched ACA runs)."""
        return self.cache_size * sum(
            self.model.profile.entry_size_bytes(j) for j in self.active_layers
        )
