"""Common multi-client round loop shared by all baseline pipelines.

Every baseline (Edge-Only, LearnedCache, FoggyCache, SMTM) processes the
same scenario streams in rounds of ``F`` frames per client, producing
:class:`~repro.sim.metrics.InferenceRecord` rows that aggregate exactly
like CoCa's.  Subclasses implement :meth:`process` (one inference) and may
override the round hooks for cache maintenance / uploads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.experiments.scenario import Scenario
from repro.models.feature import SampleFeatures
from repro.sim.metrics import InferenceRecord, MetricsCollector


class BaselineRunner(ABC):
    """Drives one inference pipeline over all clients of a scenario.

    Args:
        scenario: the shared evaluation setting.
        frames_per_round: frames per client per round (the paper's F).
    """

    #: Human-readable method name (overridden by subclasses).
    name: str = "baseline"

    def __init__(self, scenario: Scenario, frames_per_round: int = 300) -> None:
        if frames_per_round < 1:
            raise ValueError(f"frames_per_round must be >= 1, got {frames_per_round}")
        self.scenario = scenario
        self.model = scenario.model
        self.frames_per_round = frames_per_round
        self._rngs = [scenario.client_rng(k) for k in range(scenario.num_clients)]
        self._streams = [
            scenario.make_stream(k, self._rngs[k]) for k in range(scenario.num_clients)
        ]

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def process(self, client_id: int, sample: SampleFeatures) -> InferenceRecord:
        """Run one inference and return its record."""

    def on_client_round_end(self, client_id: int, round_index: int) -> None:
        """Per-client end-of-round maintenance (cache refresh, uploads)."""

    def on_round_end(self, round_index: int) -> None:
        """Global end-of-round maintenance (server-side aggregation)."""

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, num_rounds: int, warmup_rounds: int = 0) -> MetricsCollector:
        """Run the pipeline and collect records from the measured rounds."""
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        metrics = MetricsCollector()
        for r in range(warmup_rounds + num_rounds):
            measured = r >= warmup_rounds
            for client_id in range(self.scenario.num_clients):
                rng = self._rngs[client_id]
                for frame in self._streams[client_id].take(self.frames_per_round):
                    sample = self.model.draw_sample(frame, client_id, rng)
                    record = self.process(client_id, sample)
                    if measured:
                        metrics.record(record)
                self.on_client_round_end(client_id, r)
            self.on_round_end(r)
        return metrics


class EdgeOnly(BaselineRunner):
    """The conventional no-acceleration pipeline: full model, every frame."""

    name = "Edge-Only"

    def process(self, client_id: int, sample: SampleFeatures) -> InferenceRecord:
        predicted, _ = self.model.classify(sample)
        return InferenceRecord(
            true_class=sample.true_class,
            predicted_class=predicted,
            latency_ms=self.model.total_compute_ms,
            hit_layer=None,
            client_id=client_id,
        )


def top2_gap(probabilities: np.ndarray) -> float:
    """Gap between the two largest entries of a probability vector."""
    if probabilities.size < 2:
        return 1.0
    top2 = np.partition(probabilities, -2)[-2:]
    return float(abs(top2[1] - top2[0]))
