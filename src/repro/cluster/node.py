"""One edge-server node of the cluster: replica server + request queue.

Each node hosts one shard of the sharded global cache and serves its
assigned clients from a *replica* :class:`~repro.core.server.CoCaServer`
— a full table whose rows are refreshed from the authoritative shards by
the coordinator.  The node serializes its server-side work (cache
allocation, sub-table packing, update merging) on a single virtual CPU
modelled after :class:`~repro.sim.network.ServerLoadModel`: requests are
processed first-come-first-served against a ``busy_until`` horizon, so a
node with many concurrent clients develops queueing delay exactly like
the paper's single edge server does in Fig. 10b — and splitting clients
across nodes relieves it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import LookupWorkspace, SemanticCache
from repro.core.client import ClientStatus
from repro.core.server import CoCaServer
from repro.sim.clock import VirtualClock
from repro.sim.network import ServerLoadModel


@dataclass(frozen=True)
class RequestTiming:
    """Virtual timeline of one cache request served by a node.

    Attributes:
        arrival_ms: when the request reached the node.
        start_ms: when the node's CPU started serving it (>= arrival).
        finish_ms: when allocation + packing finished on the node.
        response_ms: when the client received the cache (finish + network
            base latency).
    """

    arrival_ms: float
    start_ms: float
    finish_ms: float
    response_ms: float

    @property
    def wait_ms(self) -> float:
        """Queueing delay before service started."""
        return self.start_ms - self.arrival_ms

    @property
    def latency_ms(self) -> float:
        """End-to-end response latency seen by the client."""
        return self.response_ms - self.arrival_ms


class EdgeServerNode:
    """A cluster node: one shard host with its own queueing behaviour.

    Args:
        node_id: index of the node (== the shard it hosts).
        server: replica server this node allocates from (typically built
            with :meth:`~repro.core.server.CoCaServer.replicate`).
        load: latency model supplying the per-request service time, the
            network base latency, and the per-client contention term.
        merge_service_ms: CPU time charged per client upload merged into
            the hosted shard (Eq. 4 scatter + Eq. 5 accumulation).
        sync_service_ms: CPU time charged per *remote* shard pulled
            during a cross-shard replica refresh (deserialize + scatter
            of the owned rows); the local shard is co-located and free.
        workspace: probe-buffer pool shared by every engine this node
            serves (``None`` = create a private one).  The cluster
            driver points the batched engines of all clients assigned to
            this node at it, so one buffer set per shard survives the
            whole fleet run instead of one per client.
        probe_threads: per-node worker budget for the thread-blocked
            probe kernel — applied to every cache this node allocates,
            overriding the server config's ``probe_threads`` (``None``
            = keep the config's value).  Lets heterogeneous nodes run
            different thread counts against the same global config.
    """

    def __init__(
        self,
        node_id: int,
        server: CoCaServer,
        load: ServerLoadModel | None = None,
        merge_service_ms: float = 0.5,
        sync_service_ms: float = 2.0,
        workspace: LookupWorkspace | None = None,
        probe_threads: int | None = None,
    ) -> None:
        if merge_service_ms < 0:
            raise ValueError(f"merge_service_ms must be >= 0, got {merge_service_ms}")
        if sync_service_ms < 0:
            raise ValueError(f"sync_service_ms must be >= 0, got {sync_service_ms}")
        if probe_threads is not None and probe_threads < 1:
            raise ValueError(f"probe_threads must be >= 1, got {probe_threads}")
        self.node_id = node_id
        self.server = server
        self.load = load if load is not None else ServerLoadModel()
        self.merge_service_ms = float(merge_service_ms)
        self.sync_service_ms = float(sync_service_ms)
        self.workspace = workspace if workspace is not None else LookupWorkspace()
        self.probe_threads = probe_threads
        self.clock = VirtualClock()  # tracks the CPU's busy horizon
        self.assigned_clients: list[int] = []
        self.requests_served = 0
        self.merges_served = 0
        self.syncs_served = 0
        self.sync_payload_bytes = 0
        self.total_wait_ms = 0.0
        self.total_busy_ms = 0.0

    # ------------------------------------------------------------------
    # Virtual-time queue
    # ------------------------------------------------------------------

    def _occupy(self, arrival_ms: float, service_ms: float) -> tuple[float, float]:
        """Claim the node CPU FCFS: returns (start, finish) and advances
        the busy horizon."""
        if arrival_ms < 0:
            raise ValueError(f"arrival_ms must be >= 0, got {arrival_ms}")
        start = max(self.clock.now_ms, arrival_ms)
        finish = start + service_ms
        self.clock.advance_to(finish)
        self.total_busy_ms += service_ms
        return start, finish

    def serve_request(self, arrival_ms: float) -> RequestTiming:
        """Serve one cache-allocation request arriving at ``arrival_ms``.

        Charges the model's deterministic service time plus the
        global-table contention term for this node's client population;
        the queueing wait is whatever the FCFS backlog implies at this
        arrival instant (the event-driven counterpart of the M/D/1
        steady-state wait in :meth:`ServerLoadModel.response_latency_ms`).
        """
        service = (
            self.load.service_time_ms
            + self.load.contention_ms_per_client * len(self.assigned_clients)
        )
        start, finish = self._occupy(arrival_ms, service)
        response = finish + self.load.base_latency_ms
        self.requests_served += 1
        self.total_wait_ms += start - arrival_ms
        return RequestTiming(
            arrival_ms=arrival_ms,
            start_ms=start,
            finish_ms=finish,
            response_ms=response,
        )

    def serve_merge(self, arrival_ms: float, num_entries: int) -> float:
        """Charge the merge of one uploaded update piece; returns finish time.

        Merge cost is one fixed Eq. 4 scatter pass per upload piece —
        the vectorized merge is one pass regardless of entry count —
        so ``num_entries`` only guards the no-op case.
        """
        if num_entries <= 0:
            return max(self.clock.now_ms, arrival_ms)
        _, finish = self._occupy(arrival_ms, self.merge_service_ms)
        self.merges_served += 1
        return finish

    def serve_sync(
        self,
        num_remote_shards: int,
        arrival_ms: float | None = None,
        payload_bytes: int = 0,
    ) -> float:
        """Charge one cross-shard replica refresh; returns the finish time.

        The refresh costs ``sync_service_ms`` per remote shard pulled and
        cannot start before ``arrival_ms`` — the coordinator passes the
        virtual time at which every remote shard's pending writes have
        finished, so a replica never receives rows earlier than the merge
        that produced them.  Refreshing the co-located shard is free, so
        a 1-shard cluster charges nothing here.

        ``payload_bytes`` is pure telemetry — the bytes this refresh
        shipped for remote rows (full copies or delta rows), accumulated
        in :attr:`sync_payload_bytes`.  It deliberately does not change
        the timing model, so delta sync alters bandwidth accounting
        without perturbing the virtual-time results of existing runs.
        """
        if num_remote_shards < 0:
            raise ValueError(
                f"num_remote_shards must be >= 0, got {num_remote_shards}"
            )
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_remote_shards == 0:
            return self.clock.now_ms
        self.sync_payload_bytes += int(payload_bytes)
        arrival = self.clock.now_ms if arrival_ms is None else arrival_ms
        _, finish = self._occupy(
            arrival, self.sync_service_ms * num_remote_shards
        )
        self.syncs_served += 1
        return finish

    # ------------------------------------------------------------------
    # Allocation service (replica reads)
    # ------------------------------------------------------------------

    def allocate(self, status: ClientStatus) -> SemanticCache:
        """Run ACA on the replica table for one client status upload."""
        cache, _ = self.server.allocate(
            status.timestamps,
            status.hit_ratio,
            status.cache_budget_bytes,
            local_freq=status.frequencies,
        )
        return self._apply_thread_budget(cache)

    def build_cache(self, layer_classes: dict[int, np.ndarray]) -> SemanticCache:
        """Materialize a static allocation from the replica table."""
        return self._apply_thread_budget(self.server.build_cache(layer_classes))

    def _apply_thread_budget(self, cache: SemanticCache) -> SemanticCache:
        """Stamp this node's probe-thread budget onto an allocated cache."""
        if self.probe_threads is not None:
            cache.set_probe_threads(self.probe_threads)
        return cache

    def close(self) -> None:
        """Release the node's probe workspace (threads + buffer pools)."""
        self.workspace.close()

    @property
    def mean_wait_ms(self) -> float:
        """Observed mean queueing wait across served cache requests."""
        if self.requests_served == 0:
            return 0.0
        return self.total_wait_ms / self.requests_served

    def __repr__(self) -> str:
        return (
            f"EdgeServerNode(id={self.node_id}, "
            f"clients={len(self.assigned_clients)}, "
            f"busy_until={self.clock.now_ms:.1f}ms)"
        )
