"""Sharded edge-server cluster: the horizontal scaling layer.

One :class:`~repro.core.server.CoCaServer` holding the entire global
cache table is the paper's deployment; this package is the scale-out
story on top of it.  The table's rows (classes) are partitioned across N
shards (:class:`ClassShardRouter`, :class:`ShardedGlobalCache`), each
hosted on an :class:`EdgeServerNode` with its own queueing behaviour;
clients are routed to nodes by hash, region affinity, or load
(:func:`assign_clients`); and a :class:`ClusterCoordinator` bounds
cross-shard staleness with a configurable sync interval.
:class:`ClusterFramework` drives the whole fleet on virtual clocks.

Because Eq. 4 merges are independent per ``(class, layer)`` key, a
1-shard cluster — and an N-shard cluster at sync interval 1 — reproduces
the single-server protocol exactly; what sharding changes is the virtual
timeline: server-side work that a single node serializes is spread over
N queues (see ``benchmarks/test_cluster_scale.py``).
"""

from repro.cluster.coordinator import (
    ASSIGNMENT_POLICIES,
    ClusterCoordinator,
    assign_clients,
)
from repro.cluster.driver import (
    ClusterFramework,
    ClusterResult,
    ClusterRoundSummary,
)
from repro.cluster.node import EdgeServerNode, RequestTiming
from repro.cluster.sharding import ClassShardRouter, ShardedGlobalCache

__all__ = [
    "ASSIGNMENT_POLICIES",
    "ClassShardRouter",
    "ClusterCoordinator",
    "ClusterFramework",
    "ClusterResult",
    "ClusterRoundSummary",
    "EdgeServerNode",
    "RequestTiming",
    "ShardedGlobalCache",
    "assign_clients",
]
