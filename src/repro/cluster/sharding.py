"""Class-sharded global cache: partitioning the table across servers.

A single :class:`~repro.core.server.GlobalCacheTable` holds every
``(class, layer)`` centroid on one edge server.  To scale past one
server, the cluster partitions the table's *rows* (classes) across N
shards: each shard is the authority for the entries and Eq. 5 frequency
counts of the classes it owns, and every Eq. 4 write for a class is
routed to — and only to — the owning shard.  Because Eq. 4 merges are
independent per ``(class, layer)`` key, routing a client's update table
shard by shard and applying each piece with the one-pass flat-index
:meth:`~repro.core.server.GlobalCacheTable.merge_updates` scatter yields
*exactly* the table a single server would have produced from the same
sequence of uploads.  Sharding therefore changes where rows live and who
contends for them, never what they contain.

:class:`ClassShardRouter` defines the class -> shard map: a seeded
permutation of the class universe dealt round-robin across shards, so
the assignment is deterministic in ``(num_classes, num_shards, salt)``,
perfectly balanced (shard sizes differ by at most one), and uncorrelated
with class-id order (adjacent ids — often semantically related in real
label spaces — land on different shards).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import contracts
from repro.core.server import GlobalCacheTable, unpack_update_entries

if TYPE_CHECKING:
    from repro.store.delta import SnapshotDelta


class ClassShardRouter:
    """Deterministic, balanced class -> shard assignment.

    Args:
        num_classes: size of the class universe (rows of the table).
        num_shards: number of shards (>= 1).
        salt: seed of the dealing permutation; two routers with equal
            ``(num_classes, num_shards, salt)`` produce identical maps.
    """

    def __init__(self, num_classes: int, num_shards: int, salt: int = 0) -> None:
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > num_classes:
            raise ValueError(
                f"cannot spread {num_classes} classes over {num_shards} shards"
            )
        self.num_classes = num_classes
        self.num_shards = num_shards
        self.salt = int(salt)
        permutation = np.random.default_rng(self.salt).permutation(num_classes)
        assignment = np.empty(num_classes, dtype=np.int64)
        assignment[permutation] = np.arange(num_classes) % num_shards
        self._assignment = assignment

    def shard_of(self, class_ids: int | np.ndarray) -> np.ndarray | int:
        """Owning shard per class id (vectorized; scalar in, scalar out)."""
        ids = np.asarray(class_ids, dtype=np.int64)
        if np.any(ids < 0) or np.any(ids >= self.num_classes):
            raise ValueError(f"class id out of range [0, {self.num_classes})")
        shards = self._assignment[ids]
        if shards.ndim == 0:
            return int(shards)
        return shards

    def classes_of(self, shard: int) -> np.ndarray:
        """Class ids owned by one shard, ascending."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")
        return np.flatnonzero(self._assignment == shard)

    def owned_mask(self, shard: int) -> np.ndarray:
        """Boolean ``(num_classes,)`` ownership mask of one shard."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")
        return self._assignment == shard

    def shard_sizes(self) -> np.ndarray:
        """Classes per shard; max and min differ by at most one."""
        return np.bincount(self._assignment, minlength=self.num_shards)

    def mass_per_shard(self, class_distribution: np.ndarray) -> np.ndarray:
        """Probability mass each shard owns under a class distribution.

        The region-affinity assignment policy routes a client to the node
        hosting the shard with the largest share of the client's stream.
        """
        probs = np.asarray(class_distribution, dtype=float)
        if probs.shape != (self.num_classes,):
            raise ValueError(
                f"distribution shape {probs.shape} != ({self.num_classes},)"
            )
        return np.bincount(
            self._assignment, weights=probs, minlength=self.num_shards
        )

    def __repr__(self) -> str:
        return (
            f"ClassShardRouter(num_classes={self.num_classes}, "
            f"num_shards={self.num_shards}, salt={self.salt})"
        )


class ShardedGlobalCache:
    """The global cache table partitioned row-wise across N shards.

    Each shard is a full-geometry :class:`GlobalCacheTable` of which only
    the owned rows are authoritative; the non-owned rows of a shard are
    never written through the sharded write path and never read through
    the merged view.  Keeping full geometry lets every shard reuse the
    vectorized ``merge_updates`` scatter unchanged.

    Args:
        router: the class -> shard map.
        initial: canonical table to seed every shard's owned rows from
            (the shared-dataset initialization), or ``None`` to start
            empty with zero frequencies.
        num_layers / dim: table geometry when ``initial`` is ``None``.
    """

    def __init__(
        self,
        router: ClassShardRouter,
        initial: GlobalCacheTable | None = None,
        num_layers: int | None = None,
        dim: int | None = None,
    ) -> None:
        self.router = router
        if initial is not None:
            if initial.num_classes != router.num_classes:
                raise ValueError(
                    f"table has {initial.num_classes} classes, router expects "
                    f"{router.num_classes}"
                )
            num_layers, dim = initial.num_layers, initial.dim
        elif num_layers is None or dim is None:
            raise ValueError("need either an initial table or num_layers and dim")
        self.num_layers = int(num_layers)
        self.dim = int(dim)
        self.shards: list[GlobalCacheTable] = [
            initial.copy()
            if initial is not None
            else GlobalCacheTable(router.num_classes, self.num_layers, self.dim)
            for _ in range(router.num_shards)
        ]
        # Ownership masks are immutable per router; precompute them once
        # rather than per upload on the hot Eq. 5 path.
        self._owned_masks = [
            router.owned_mask(shard_id) for shard_id in range(router.num_shards)
        ]
        # Write-epoch bookkeeping for delta sync: ``_epoch`` counts
        # uploads applied through :meth:`apply_client_update`, and the
        # per-(shard, class) stamp arrays record the epoch of each row's
        # last entry write / frequency accumulation.  A replica synced at
        # epoch ``e`` catches up by receiving exactly the rows stamped
        # ``> e`` — see :meth:`snapshot_delta`.
        self._epoch = 0
        shape = (router.num_shards, router.num_classes)
        self._entry_epoch = np.full(shape, -1, dtype=np.int64)
        self._freq_epoch = np.full(shape, -1, dtype=np.int64)

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_classes(self) -> int:
        return self.router.num_classes

    @property
    def epoch(self) -> int:
        """Monotonic write epoch: uploads applied so far."""
        return self._epoch

    def apply_client_update(
        self,
        update_entries: dict[tuple[int, int], np.ndarray],
        local_freq: np.ndarray,
        gamma: float,
    ) -> dict[int, int]:
        """Route one client upload to the owning shards (Eq. 4 + Eq. 5).

        The upload is split by class ownership; each shard folds its piece
        with one :meth:`GlobalCacheTable.merge_updates` scatter pass and
        accumulates the frequency vector masked to its owned rows.
        Entry-for-entry identical to a single server applying the same
        upload, because Eq. 4 rows are independent and each row's merge
        sees the same prior frequency state on its owning shard.

        Returns:
            ``{shard_id: entries merged}`` for the shards that received
            entries (frequency-only shards excluded) — the per-shard write
            fan-out the driver charges merge time for.
        """
        local_freq = np.asarray(local_freq, dtype=float)
        if local_freq.shape != (self.num_classes,):
            raise ValueError(
                f"frequency vector shape {local_freq.shape} != "
                f"({self.num_classes},)"
            )
        self._epoch += 1
        touched: dict[int, int] = {}
        if update_entries:
            ids, layers, vectors = unpack_update_entries(update_entries)
            owners = self.router.shard_of(ids)
            for shard_id in np.unique(owners):
                piece = owners == shard_id
                self.shards[shard_id].merge_updates(
                    ids[piece],
                    layers[piece],
                    vectors[piece],
                    local_freq[ids[piece]],
                    gamma,
                )
                touched[int(shard_id)] = int(piece.sum())
                # Stamp conservatively: rows the merge filtered out as
                # inactive are still stamped — a delta may over-ship an
                # unchanged row, never miss a changed one.
                self._entry_epoch[shard_id, ids[piece]] = self._epoch
        for shard_id, (shard, mask) in enumerate(
            zip(self.shards, self._owned_masks)
        ):
            shard.add_frequencies(np.where(mask, local_freq, 0.0))
            # Only rows with positive round frequency change value
            # (adding +0.0 is bit-identical for the non-negative Phi).
            self._freq_epoch[shard_id, mask & (local_freq > 0.0)] = self._epoch
        return touched

    def sync_into(
        self, replica: GlobalCacheTable, shards: list[int] | None = None
    ) -> None:
        """Copy authoritative owned rows into a replica table, in place.

        Args:
            replica: the table to refresh (a node's local serving copy).
            shards: which shards to pull from (default: all).  A node
                refreshes its *own* shard every round and the remote
                shards only at the coordinator's sync interval — bounded
                staleness for cross-shard rows, none for local ones.
        """
        if (
            replica.num_classes != self.num_classes
            or replica.num_layers != self.num_layers
            or replica.dim != self.dim
        ):
            raise ValueError("replica geometry does not match the sharded cache")
        for shard_id in range(self.num_shards) if shards is None else shards:
            rows = self.router.classes_of(shard_id)
            source = self.shards[shard_id]
            replica.entries[rows] = source.entries[rows]
            replica.filled[rows] = source.filled[rows]
            replica.class_freq[rows] = source.class_freq[rows]

    def snapshot_delta(
        self,
        shard_id: int,
        since_epoch: int,
        fallback_fraction: float = 0.5,
    ) -> "SnapshotDelta":
        """The rows of one shard a replica synced at ``since_epoch`` misses.

        Entry-dirty rows (entry-epoch stamp ``> since_epoch``) ship their
        full ``(L, d)`` centroid rows plus fill-mask rows; freq-dirty
        rows ship Phi scalars only.  When the replica has no usable base
        (``since_epoch < 0``) or the entry-dirty fraction of the owned
        rows exceeds ``fallback_fraction``, the delta degenerates to the
        full-snapshot fallback carrying every owned row.

        Applying the returned delta to a replica whose owned rows matched
        this shard at ``since_epoch`` reproduces
        :meth:`sync_into`'s result bit-for-bit: both paths assign the
        shard's current bytes, and stamps are written conservatively (a
        stamped-but-unchanged row re-ships its identical bytes; a changed
        row is always stamped).
        """
        from repro.store.delta import SnapshotDelta

        owned = self.router.classes_of(shard_id)
        source = self.shards[shard_id]
        entry_dirty = owned[self._entry_epoch[shard_id, owned] > since_epoch]
        freq_dirty = owned[self._freq_epoch[shard_id, owned] > since_epoch]
        full = (
            since_epoch < 0
            or entry_dirty.size > fallback_fraction * owned.size
        )
        if full:
            entry_dirty = owned
            freq_dirty = owned
        return SnapshotDelta(
            shard_id=shard_id,
            base_epoch=since_epoch,
            target_epoch=self._epoch,
            full=full,
            entry_rows=entry_dirty,
            entries=source.entries[entry_dirty],
            filled=source.filled[entry_dirty],
            freq_rows=freq_dirty,
            freqs=source.class_freq[freq_dirty],
        )

    def sync_delta_into(
        self,
        replica: GlobalCacheTable,
        shard_id: int,
        since_epoch: int,
        fallback_fraction: float = 0.5,
    ) -> "SnapshotDelta":
        """Catch a replica up on one shard by shipping only dirty rows.

        The delta-sync counterpart of ``sync_into(replica, [shard_id])``:
        bit-identical result, a fraction of the bytes when few owned rows
        changed since ``since_epoch``.  Returns the applied delta so the
        caller can account shipped bytes (:attr:`SnapshotDelta.nbytes`).
        """
        if (
            replica.num_classes != self.num_classes
            or replica.num_layers != self.num_layers
            or replica.dim != self.dim
        ):
            raise ValueError("replica geometry does not match the sharded cache")
        delta = self.snapshot_delta(
            shard_id, since_epoch, fallback_fraction=fallback_fraction
        )
        if contracts.ENABLED and not delta.full:
            # Value-level dirty rows (replica vs shard) must be covered
            # by the shipped delta — a changed row outside it would be a
            # silently missed write.
            owned = self.router.classes_of(shard_id)
            source = self.shards[shard_id]
            entries_differ = (
                replica.entries[owned] != source.entries[owned]
            ).any(axis=(1, 2))
            filled_differ = (
                replica.filled[owned] != source.filled[owned]
            ).any(axis=1)
            changed_entries = owned[entries_differ | filled_differ]
            changed_freqs = owned[
                replica.class_freq[owned] != source.class_freq[owned]
            ]
            stamped_entries = owned[
                self._entry_epoch[shard_id, owned] > since_epoch
            ]
            stamped_freqs = owned[
                self._freq_epoch[shard_id, owned] > since_epoch
            ]
            contracts.check_delta_apply(
                delta.entry_rows,
                delta.freq_rows,
                stamped_entries,
                stamped_freqs,
                changed_entry_rows=changed_entries,
                changed_freq_rows=changed_freqs,
            )
        delta.apply(replica)
        return delta

    def merged_table(self) -> GlobalCacheTable:
        """The equivalent single-server table (owned rows of every shard)."""
        merged = GlobalCacheTable(self.num_classes, self.num_layers, self.dim)
        self.sync_into(merged)
        return merged
