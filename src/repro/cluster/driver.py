"""Event-driven cluster driver: many clients against a sharded node fleet.

:class:`ClusterFramework` is the multi-node counterpart of
:class:`~repro.core.framework.CoCaFramework`.  It builds the identical
deployment (same seed derivation, same model geometry, same client
streams — a canonical framework is constructed internally), then splits
the global cache across N shards hosted on N
:class:`~repro.cluster.node.EdgeServerNode` replicas and drives the
protocol in virtual time:

1. each client's cache request arrives at its assigned node at the
   client's current virtual time and queues FCFS for the node CPU
   (service + contention per :class:`~repro.sim.network.ServerLoadModel`);
2. the client runs its round through the batched pipeline
   (:meth:`~repro.core.client.CoCaClient.run_round`) and its clock
   advances by the response latency plus the round's inference time;
3. after all clients finish, uploads are routed per shard through the
   one-pass Eq. 4 merge (:meth:`ShardedGlobalCache.apply_client_update`)
   and merge work is charged to the owning nodes' CPUs;
4. the coordinator refreshes replicas — local shard every round,
   cross-shard rows every ``sync_interval`` rounds.

Inference outcomes depend only on cache content, never on the virtual
clocks, so at ``sync_interval=1`` the cluster reproduces the
single-server :class:`CoCaFramework` run *exactly* (same records, same
merged table) while the virtual timeline shows the queueing relief that
sharding buys: a single node serializes every request, N nodes serialize
only a 1/N slice each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator, assign_clients
from repro.cluster.node import EdgeServerNode
from repro.cluster.sharding import ClassShardRouter, ShardedGlobalCache
from repro.core.server import GlobalCacheTable
from repro.core.client import CoCaClient, RoundReport
from repro.core.config import CoCaConfig
from repro.core.framework import CoCaFramework
from repro.data.datasets import DatasetSpec
from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsCollector, MetricsSummary
from repro.sim.network import ServerLoadModel


@dataclass
class ClusterRoundSummary:
    """Per-round cluster diagnostics."""

    round_index: int
    makespan_ms: float  # virtual time the round added to the run
    mean_response_wait_ms: float
    accuracy: float
    hit_ratio: float
    synced: bool  # whether a cross-shard sync ran at this boundary


@dataclass
class ClusterResult:
    """Outcome of a multi-round cluster run."""

    metrics: MetricsCollector
    rounds: list[ClusterRoundSummary]
    nodes: list[EdgeServerNode]
    coordinator: ClusterCoordinator
    assignment: np.ndarray
    clients: list[CoCaClient]
    measured_span_ms: float  # virtual makespan of the measured rounds
    measured_samples: int
    measured_client_rounds: int
    reports: list[RoundReport] = field(default_factory=list)

    def summary(self) -> MetricsSummary:
        return self.metrics.summary()

    @property
    def throughput_inferences_per_s(self) -> float:
        """Aggregate inferences completed per virtual second."""
        if self.measured_span_ms <= 0:
            return 0.0
        return 1e3 * self.measured_samples / self.measured_span_ms

    @property
    def throughput_rounds_per_s(self) -> float:
        """Aggregate client-rounds completed per virtual second."""
        if self.measured_span_ms <= 0:
            return 0.0
        return 1e3 * self.measured_client_rounds / self.measured_span_ms


class ClusterFramework:
    """A sharded multi-node CoCa deployment driven in virtual time.

    Args:
        dataset / model_name / num_clients / config / seed /
        non_iid_level / longtail_rho / enable_dca / budget_fraction:
            forwarded to the internal :class:`CoCaFramework`, so a
            cluster and a single-server run with equal parameters see
            byte-identical geometry, streams and initial tables.
        num_shards: shard (= node) count; 1 reproduces the single-server
            deployment under the same queueing model.
        sync_interval: rounds between cross-shard replica refreshes.
        assignment_policy: ``hash`` | ``region`` | ``least-loaded``.
        load: per-node latency model (service time, base network latency,
            contention); default :class:`ServerLoadModel`.
        merge_service_ms: node CPU time per merged upload piece.
        sync_service_ms: node CPU time per remote shard pulled at each
            cross-shard sync (free for a 1-shard cluster).
        shard_salt: seed of the class -> shard permutation.
    """

    def __init__(
        self,
        dataset: DatasetSpec,
        model_name: str = "resnet101",
        num_shards: int = 4,
        num_clients: int = 10,
        config: CoCaConfig | None = None,
        seed: int = 0,
        non_iid_level: float = 0.0,
        longtail_rho: float = 1.0,
        enable_dca: bool = True,
        budget_fraction: float | None = None,
        sync_interval: int = 1,
        assignment_policy: str = "hash",
        load: ServerLoadModel | None = None,
        merge_service_ms: float = 0.5,
        sync_service_ms: float = 2.0,
        shard_salt: int = 0,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.framework = CoCaFramework(
            dataset=dataset,
            model_name=model_name,
            num_clients=num_clients,
            config=config,
            seed=seed,
            non_iid_level=non_iid_level,
            longtail_rho=longtail_rho,
            enable_dca=enable_dca,
            budget_fraction=budget_fraction,
        )
        self.model = self.framework.model
        self.config = self.framework.config
        self.clients = self.framework.clients
        self.enable_dca = enable_dca
        self.load = load if load is not None else ServerLoadModel()

        canonical = self.framework.server
        self.router = ClassShardRouter(
            self.model.num_classes, num_shards, salt=shard_salt
        )
        self.sharded = ShardedGlobalCache(self.router, initial=canonical.table)
        self.nodes = [
            EdgeServerNode(
                node_id=shard_id,
                server=canonical.replicate(),
                load=self.load,
                merge_service_ms=merge_service_ms,
                sync_service_ms=sync_service_ms,
            )
            for shard_id in range(num_shards)
        ]
        self.coordinator = ClusterCoordinator(
            self.sharded, self.nodes, sync_interval=sync_interval
        )
        self.assignment = assign_clients(
            assignment_policy,
            num_clients,
            num_shards,
            sharded=self.sharded,
            client_distributions=self.framework.distributions,
        )
        for client_id, node_id in enumerate(self.assignment):
            self.nodes[node_id].assigned_clients.append(client_id)
            # Clients run sequentially in virtual time, so everyone served
            # by a node shares its probe-buffer pool: one workspace per
            # shard for the whole fleet run, not one per client.
            self.clients[client_id].batch_engine.set_workspace(
                self.nodes[node_id].workspace
            )
        self.client_clocks = [VirtualClock() for _ in range(num_clients)]
        self._last_round_synced = False
        self._last_round_wait_ms = 0.0

    @property
    def num_shards(self) -> int:
        return len(self.nodes)

    def virtual_now_ms(self) -> float:
        """The cluster-wide virtual frontier (latest clock in the system)."""
        frontier = max(clock.now_ms for clock in self.client_clocks)
        return max(frontier, max(node.clock.now_ms for node in self.nodes))

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_round(self, round_index: int = 0) -> list[RoundReport]:
        """Execute one protocol round across the fleet.

        Protocol state advances in client-id order — the same order as
        :meth:`CoCaFramework.run_round`, which is what makes the
        ``sync_interval=1`` cluster bit-for-bit reproducible against the
        single-server reference.  The node CPUs, however, serve work in
        *arrival* order (true FCFS): requests queue at each client's
        current virtual time and merges at each client's round-end time,
        regardless of client id.  The two orders can differ freely
        because cache allocation only reads the replica (frozen during a
        round) and the Eq. 4 shard content only depends on the upload
        order, never on when CPU time was charged.
        """
        # Cache requests queue FCFS at each client's current time.
        arrival_order = sorted(
            range(len(self.clients)),
            key=lambda cid: (self.client_clocks[cid].now_ms, cid),
        )
        timings = {}
        for client_id in arrival_order:
            node = self.nodes[self.assignment[client_id]]
            timings[client_id] = node.serve_request(
                self.client_clocks[client_id].now_ms
            )

        reports: list[RoundReport] = []
        round_ends: list[float] = []
        for client in self.clients:
            node = self.nodes[self.assignment[client.client_id]]
            clock = self.client_clocks[client.client_id]
            status = client.status()
            if self.enable_dca:
                cache = node.allocate(status)
            else:
                static = self.framework.static_allocation
                assert static is not None
                cache = node.build_cache(static.layer_classes)
            client.install_cache(cache)
            report = client.run_round()
            clock.advance_to(timings[client.client_id].response_ms)
            clock.advance(report.total_latency_ms)
            reports.append(report)
            round_ends.append(clock.now_ms)

        # Uploads fold into the shards in client order (the single-server
        # protocol's ordering); the merge CPU work queues on the
        # shard-owning nodes FCFS by upload arrival (round-end) time.
        gamma = self.config.gamma
        merge_pieces: list[tuple[float, int, int]] = []
        for report, end_ms in zip(reports, round_ends):
            touched = self.sharded.apply_client_update(
                report.update_entries, report.frequencies, gamma
            )
            merge_pieces.extend(
                (end_ms, shard_id, num_entries)
                for shard_id, num_entries in touched.items()
            )
        for end_ms, shard_id, num_entries in sorted(merge_pieces):
            self.nodes[shard_id].serve_merge(end_ms, num_entries)
        self._last_round_synced = self.coordinator.end_round()
        self._last_round_wait_ms = float(
            np.mean([t.wait_ms for t in timings.values()])
        ) if timings else 0.0
        return reports

    def run(self, num_rounds: int, warmup_rounds: int = 0) -> ClusterResult:
        """Run the protocol and aggregate metrics plus virtual timing.

        Args:
            num_rounds: measured rounds.
            warmup_rounds: leading rounds excluded from metrics and from
                the measured virtual span (cache adaptation).
        """
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        metrics = MetricsCollector()
        rounds: list[ClusterRoundSummary] = []
        all_reports: list[RoundReport] = []
        measured_samples = 0
        measured_client_rounds = 0
        measure_start_ms = None
        for r in range(warmup_rounds + num_rounds):
            if r == warmup_rounds:
                measure_start_ms = self.virtual_now_ms()
            span_before = self.virtual_now_ms()
            reports = self.run_round(r)
            if r < warmup_rounds:
                continue
            round_metrics = MetricsCollector()
            for report in reports:
                round_metrics.extend(report.records)
                metrics.extend(report.records)
                measured_samples += len(report.records)
            measured_client_rounds += len(reports)
            all_reports.extend(reports)
            summary = round_metrics.summary()
            rounds.append(
                ClusterRoundSummary(
                    round_index=r,
                    makespan_ms=self.virtual_now_ms() - span_before,
                    mean_response_wait_ms=self._last_round_wait_ms,
                    accuracy=summary.accuracy,
                    hit_ratio=summary.hit_ratio,
                    synced=self._last_round_synced,
                )
            )
        assert measure_start_ms is not None
        return ClusterResult(
            metrics=metrics,
            rounds=rounds,
            nodes=self.nodes,
            coordinator=self.coordinator,
            assignment=self.assignment.copy(),
            clients=self.clients,
            measured_span_ms=self.virtual_now_ms() - measure_start_ms,
            measured_samples=measured_samples,
            measured_client_rounds=measured_client_rounds,
            reports=all_reports,
        )

    def close(self) -> None:
        """Release every probe workspace of the fleet.

        Node workspaces are shared with the engines of the clients
        assigned to them, so both teardown paths meet at the same
        idempotent :meth:`~repro.core.cache.LookupWorkspace.close`.
        """
        for node in self.nodes:
            node.close()
        self.framework.close()

    def merged_table(self) -> GlobalCacheTable:
        """The cluster's equivalent single-server global table."""
        return self.sharded.merged_table()
